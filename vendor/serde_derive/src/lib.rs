//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds offline, so serialization is not wired to any real
//! format yet; `#[derive(Serialize, Deserialize)]` annotations in the source
//! are kept (they document intent and keep the door open for swapping in the
//! real serde) and expand to nothing here.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
