//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real serde cannot be fetched. Source files keep their
//! `#[derive(Serialize, Deserialize)]` annotations; here the derives expand
//! to nothing and the traits are satisfied by blanket impls, so any
//! `T: Serialize` bound that appears later keeps compiling until the real
//! crate is substituted back in.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (lifetime elided; no data
/// formats are wired up in the offline build).
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
