//! Offline stand-in for the parts of `rand` 0.9 this workspace uses.
//!
//! Provides [`rngs::StdRng`] (a small xoshiro256++ generator seeded through
//! SplitMix64, matching rand's `seed_from_u64` construction style), the
//! [`Rng`] extension trait with `random` / `random_range` / `random_bool`,
//! and [`SeedableRng`]. Statistical quality is more than sufficient for the
//! deterministic synthetic-data generation and simulations in this repo; the
//! stream differs from upstream rand, which no test depends on.

#![forbid(unsafe_code)]

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the uniform "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`]; the parameter `T` is the
/// produced element type (mirrors rand's `SampleRange<T>`, which lets
/// integer literals in ranges unify with the call site's expected type).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`f64` in `[0, 1)`,
    /// uniform integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let i = r.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = r.random_range(5..=5u32);
            assert_eq!(j, 5);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket {c}");
        }
    }
}
