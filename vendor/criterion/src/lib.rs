//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Runs each benchmark closure `sample_size` times after one warm-up
//! iteration and prints min/mean wall-clock times. No statistical analysis,
//! plotting, or baseline storage — just enough to keep `cargo bench`
//! meaningful in a network-less container while preserving the upstream
//! criterion API shape used by `crates/bench/benches/*`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`];
/// retained for API compatibility (all variants behave identically here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup cost amortized across a batch.
    SmallInput,
    /// Large inputs: one setup per iteration.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group; recorded for API
/// compatibility (the shim reports wall-clock only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

fn report(label: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = results.iter().min().expect("non-empty");
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    println!(
        "{label:<48} min {:>12?}  mean {:>12?}  (n={})",
        min,
        mean,
        results.len()
    );
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepts a throughput annotation (ignored by the shim's reporting).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&label, &b.results);
        self
    }

    /// Ends the group (upstream flushes reports here; we report eagerly).
    pub fn finish(self) {}
}

/// Top-level benchmark context.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.benchmark_group(&id).bench_function("", f);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
        let mut batched = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2usize, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 8);
        group.finish();
    }
}
