//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements random-input property testing without shrinking: a
//! [`Strategy`] produces values from a deterministic per-test RNG, the
//! [`proptest!`] macro runs each property for `ProptestConfig::cases`
//! seeds, and [`prop_assert!`]/[`prop_assert_eq!`] report the failing case.
//! Seeds are pure functions of the test name and case index, so failures
//! reproduce exactly; there is no persistence file and no shrinking (a
//! failing case prints its seed instead).

#![forbid(unsafe_code)]

use core::fmt;

/// Deterministic generator driving all strategies (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case; the stream depends only on the inputs.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        self.next_u64() % n
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (`cases` = inputs generated per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                (s + rng.below((e - s + 1) as u64) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);

/// String strategies: a pattern literal is interpreted loosely — `".*"`
/// produces arbitrary (possibly empty) text, `".+"` non-empty text; any
/// other pattern also produces non-empty text. Generated text mixes ASCII,
/// whitespace, and multi-byte codepoints to exercise UTF-8 handling.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const PALETTE: &[char] = &[
            'a', 'b', 'c', 'z', 'A', 'Q', '0', '9', ' ', ' ', '\t', '\n', '.', ',', '!', '-', '_',
            '(', ')', 'é', 'ß', 'λ', '中', '文', '🎈', '𝄞', '\u{0301}', '\u{200d}',
        ];
        let min = if *self == ".*" { 0 } else { 1 };
        let len = min + rng.below(48) as usize;
        (0..len)
            .map(|_| PALETTE[rng.below(PALETTE.len() as u64) as usize])
            .collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec()`].
    pub trait IntoLenRange {
        /// Resolves to `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from no options");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

/// Fails the enclosing property case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Declares property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every generated input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {case}: {e}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u32..10, crate::collection::vec(0usize..5, 1..4));
        let a = s.generate(&mut crate::TestRng::for_case("t", 3));
        let b = s.generate(&mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::TestRng::for_case("t", 4));
        // Not a hard guarantee for every seed pair, but these differ.
        assert!(a != c || s.generate(&mut crate::TestRng::for_case("t", 5)) != c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = crate::TestRng::for_case("strings", 1);
        let mut saw_empty = false;
        for _ in 0..200 {
            let s = ".+".generate(&mut rng);
            assert!(!s.is_empty());
            saw_empty |= ".*".generate(&mut rng).is_empty();
        }
        assert!(saw_empty, "'.*' should sometimes be empty");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(x in 0u8..100, v in prop::collection::vec(1usize..4, 2..6)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(b in prop::bool::ANY, pick in prop::sample::select(vec![2, 4, 8])) {
            prop_assert_ne!(b, !b);
            prop_assert!(pick % 2 == 0);
        }
    }
}
