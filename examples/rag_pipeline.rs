//! A FEVER-style RAG pipeline (paper T5): embed an evidence corpus, retrieve
//! top-k passages per claim through the vector index, build the claim ×
//! evidence table, and execute the verification query under both orderings.
//!
//! Shared popular evidence is what makes RAG tables reorderable: GGR hoists
//! the contexts common to adjacent claims to the front of each prompt.
//!
//! ```sh
//! cargo run --release --example rag_pipeline
//! ```

use llmqo::core::{FunctionalDeps, Ggr, OriginalOrder, Reorderer};
use llmqo::rag::{retrieve_contexts, Embedder};
use llmqo::relational::{LlmQuery, QueryExecutor, Schema, Table};
use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
};
use llmqo::tokenizer::Tokenizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An evidence corpus: 8 topics × 5 passages.
    let mut corpus = Vec::new();
    for topic in 0..8 {
        for p in 0..5 {
            corpus.push(format!(
                "evidence passage {p} about subject{topic}: {}",
                format!("subject{topic} facts and figures and context ").repeat(12)
            ));
        }
    }
    // 160 claims, popularity-skewed toward early topics.
    let claims: Vec<String> = (0..160)
        .map(|i| {
            let topic = (i * i) % 8;
            format!("claim {i}: subject{topic} set a record last year")
        })
        .collect();

    // Retrieval through the FAISS stand-in (k = 4, as the paper uses for FEVER).
    let embedder = Embedder::new(96);
    let retrieved = retrieve_contexts(&embedder, &corpus, &claims, 4);

    // Build the RAG table: claim + evidence1..4 in similarity order.
    let mut table = Table::new(Schema::of_strings(&[
        "claim",
        "evidence1",
        "evidence2",
        "evidence3",
        "evidence4",
    ]));
    for (claim, ctx) in claims.iter().zip(&retrieved) {
        let mut row = vec![claim.clone().into()];
        for k in 0..4 {
            row.push(corpus[ctx[k]].clone().into());
        }
        table.push_row(row)?;
    }

    let query = LlmQuery::rag(
        "fever-style",
        "Answer SUPPORTS if the evidence supports the claim, REFUTES if it refutes it, \
         or NOT ENOUGH INFO otherwise. Answer with only one of those labels.",
        vec![
            "claim".into(),
            "evidence1".into(),
            "evidence2".into(),
            "evidence3".into(),
            "evidence4".into(),
        ],
        vec![
            "SUPPORTS".into(),
            "REFUTES".into(),
            "NOT ENOUGH INFO".into(),
        ],
        3.0,
    )
    .with_key_field("claim");

    let engine = SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        EngineConfig::default(),
    );
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let labels = ["SUPPORTS", "REFUTES", "NOT ENOUGH INFO"];
    let truth = |row: usize| labels[row % 3].to_string();
    let fds = FunctionalDeps::empty(5);

    println!(
        "{} claims over {} evidence passages\n",
        claims.len(),
        corpus.len()
    );
    for solver in [&OriginalOrder as &dyn Reorderer, &Ggr::default()] {
        let out = executor.execute(&table, &query, solver, &fds, &truth)?;
        println!(
            "{:<10} job {:>7.1}s  PHR {:>5.1}%  (field-level {:>5.1}%)",
            out.report.solver,
            out.report.engine.job_completion_time_s,
            out.report.engine.prefix_hit_rate() * 100.0,
            out.report.field_phc.hit_rate() * 100.0,
        );
    }
    println!("\nGGR reorders the evidence fields per claim so shared passages form prefixes.");
    Ok(())
}
