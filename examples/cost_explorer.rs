//! Sweep prompt-cache hit rates against OpenAI and Anthropic pricing and
//! find the break-even points (paper §6.3, Table 4's analytical model).
//!
//! Notably, Anthropic's 1.25× cache-write premium makes caching a net *loss*
//! below ≈22% hit rate, while OpenAI's premium-free model always saves.
//!
//! ```sh
//! cargo run --release --example cost_explorer
//! ```

use llmqo::costmodel::Pricing;

fn main() {
    let providers = [Pricing::gpt4o_mini(), Pricing::claude35_sonnet()];
    println!(
        "{:<10} {:>14} {:>16}",
        "hit rate", "GPT-4o-mini", "Claude 3.5 Sonnet"
    );
    for pct in (0..=100).step_by(10) {
        let phr = pct as f64 / 100.0;
        let cells: Vec<String> = providers
            .iter()
            .map(|p| {
                let ratio = p.estimated_cost_ratio(phr);
                format!("{:>6.1}% of base", ratio * 100.0)
            })
            .collect();
        println!(
            "{:<10} {:>14} {:>16}",
            format!("{pct}%"),
            cells[0],
            cells[1]
        );
    }

    // Break-even hit rate for Anthropic: (write − input) / (write − read).
    let a = Pricing::claude35_sonnet();
    let breakeven = (a.write_per_mtok - a.input_per_mtok) / (a.write_per_mtok - a.cached_per_mtok);
    println!(
        "\nAnthropic caching only pays off above a {:.1}% hit rate (write premium).",
        breakeven * 100.0
    );

    // The paper's Table 2 hit rates, priced:
    println!("\nPaper Table 2 hit rates → estimated savings of GGR over original:");
    let rows = [
        ("Movies", 0.346, 0.857),
        ("Products", 0.267, 0.833),
        ("BIRD", 0.104, 0.848),
        ("PDMX", 0.118, 0.566),
        ("Beer", 0.499, 0.801),
        ("FEVER", 0.112, 0.674),
        ("SQuAD", 0.110, 0.697),
    ];
    for (name, orig, ggr) in rows {
        println!(
            "  {:<9} OpenAI {:>5.1}%   Anthropic {:>5.1}%",
            name,
            providers[0].estimated_savings(orig, ggr) * 100.0,
            providers[1].estimated_savings(orig, ggr) * 100.0,
        );
    }
}
