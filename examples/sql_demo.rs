//! Run the paper's SQL examples verbatim through the LLM-SQL front-end:
//! parse → compile to LLM query plans → GGR-reorder → simulate → results.
//!
//! ```sh
//! cargo run --release --example sql_demo
//! ```

use llmqo::core::Ggr;
use llmqo::datasets::{Dataset, DatasetId};
use llmqo::relational::{QueryExecutor, SqlRunner};
use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
};
use llmqo::tokenizer::Tokenizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down Movies benchmark dataset as the catalog.
    let ds = Dataset::generate_with_rows(DatasetId::Movies, 400);
    let engine = SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        EngineConfig::default(),
    );
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let solver = Ggr::default();
    let mut runner = SqlRunner::new(&executor, &solver);
    runner.register("movies", &ds.table, &ds.fds);

    // Ground truth provider shared by the statements below.
    let truth = |row: usize| {
        if row.is_multiple_of(3) {
            "Yes".to_string()
        } else {
            "No".to_string()
        }
    };

    // T1: the paper's kids-filter, §A.
    let sql = "SELECT movietitle FROM movies \
               WHERE LLM('Given the following fields, determine whether the movie is \
               suitable for kids. Answer ONLY with \"Yes\" or \"No\".', \
               movieinfo, reviewcontent, reviewtype, movietitle) = 'Yes'";
    let res = runner.run(sql, &truth)?;
    println!(
        "T1 filter: {} of {} movies pass; job {:.1}s at {:.0}% PHR",
        res.rows.len(),
        ds.table.nrows(),
        res.stages[0].report.engine.job_completion_time_s,
        res.stages[0].report.engine.prefix_hit_rate() * 100.0,
    );
    println!("  first rows: {:?}", &res.rows[..3.min(res.rows.len())]);

    // T2: projection with `*` expansion.
    let truth_proj = |row: usize| format!("Row {row} praised for pacing and score.");
    let res = runner.run(
        "SELECT LLM('Summarize the good qualities of this movie.', movies.*) \
         AS summary FROM movies LIMIT 2",
        &truth_proj,
    )?;
    println!("\nT2 projection ({}):", res.columns[0]);
    for row in &res.rows {
        println!("  {}", row[0]);
    }

    // T4: aggregation.
    let truth_score = |row: usize| ((row % 5) + 1).to_string();
    let res = runner.run(
        "SELECT AVG(LLM('Rate sentiment 1-5.', reviewcontent, movieinfo)) \
         AS AverageScore FROM movies",
        &truth_score,
    )?;
    println!(
        "\nT4 aggregation: AverageScore = {:.3}",
        res.aggregate.unwrap()
    );

    // SQL-aware optimizations: a conjunctive WHERE mixing a cheap relational
    // predicate with two LLM predicates, under a LIMIT. The optimizer pushes
    // `reviewtype = 'Fresh'` below both LLM operators, orders the LLM
    // filters by estimated cost/(1−selectivity), dedups identical prompts,
    // and evaluates lazily until 5 rows qualify.
    let sql = "SELECT movietitle FROM movies \
               WHERE LLM('Suitable for kids? Yes or No.', movieinfo, reviewcontent) = 'Yes' \
               AND reviewtype = 'Fresh' \
               AND LLM('Is this a top-critic Fresh review? Yes or No.', reviewtype, topcritic) = 'Yes' \
               LIMIT 5";
    println!("\nEXPLAIN of the optimized plan:\n{}", runner.explain(sql)?);
    let res = runner.run(sql, &truth)?;
    let calls: u64 = res.stages.iter().map(|s| s.report.opt.llm_calls).sum();
    let saved: u64 = res
        .stages
        .iter()
        .map(|s| s.report.opt.llm_calls_saved())
        .sum();
    println!(
        "optimized run: {} rows returned, {calls} LLM calls issued, {saved} avoided \
         (dedup + pushdown), {} prefill tokens saved",
        res.rows.len(),
        res.stages
            .iter()
            .map(|s| s.report.opt.prefill_tokens_saved)
            .sum::<u64>(),
    );
    Ok(())
}
