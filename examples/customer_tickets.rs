//! The paper's §1 motivating query, end to end:
//!
//! ```sql
//! SELECT user_id, request, support_response,
//!        LLM('Did {support_response} address {request}?',
//!            support_response, request) AS success
//! FROM customer_tickets
//! WHERE support_response <> NULL
//! ```
//!
//! Support macros answer most tickets, so `support_response` repeats heavily
//! — exactly the structure GGR turns into KV-cache hits. The example also
//! prices the job on OpenAI and Anthropic prompt-cache billing.
//!
//! ```sh
//! cargo run --release --example customer_tickets
//! ```

use llmqo::core::{FunctionalDeps, Ggr, OriginalOrder, Reorderer};
use llmqo::costmodel::{AnthropicCache, OpenAiCache, Pricing, ProviderCache, Usage};
use llmqo::relational::{encode_table, LlmQuery, QueryExecutor, Schema, Table};
use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
};
use llmqo::tokenizer::Tokenizer;

const MACROS: [&str; 6] = [
    "We are sorry for the inconvenience. A replacement unit has been dispatched and \
     should arrive within three to five business days. Your case stays open until you \
     confirm the replacement works.",
    "Thanks for reaching out! The behaviour you describe is controlled by the power \
     saving profile; please open Settings, choose Performance, and restart the device.",
    "Your refund has been processed back to the original payment method. Depending on \
     your bank it can take up to ten business days to appear on your statement.",
    "We have escalated your report to the engineering team with high priority and will \
     update this ticket as soon as a fix ships. Thank you for the detailed logs.",
    "The licence key has been reset; please sign out of all devices, wait five minutes, \
     and activate again using the key from your confirmation email.",
    "This model is no longer supported. As a goodwill gesture we have applied a 30% \
     discount code to your account valid for any current-generation product.",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // customer_tickets with non-null support responses.
    let mut table = Table::new(Schema::of_strings(&[
        "user_id",
        "request",
        "support_response",
    ]));
    let n = 400;
    for i in 0..n {
        table.push_row(vec![
            format!("u{:05}", i * 7 % 99_999).into(),
            format!(
                "ticket {i}: my device {} after the last update, what should I do?",
                ["won't boot", "overheats", "drains battery", "loses wifi"][i % 4]
            )
            .into(),
            MACROS[i % MACROS.len()].into(),
        ])?;
    }

    // Fields in natural SQL order: the unique ticket id leads, which is the
    // worst case for a fixed ordering (paper Fig. 1a) — GGR will move the
    // shared macro to the front instead.
    let query = LlmQuery::filter(
        "tickets-success",
        "Did the support response address the request? Answer ONLY 'Yes' or 'No'.",
        vec![
            "user_id".into(),
            "request".into(),
            "support_response".into(),
        ],
        vec!["Yes".into(), "No".into()],
        "Yes",
        2.0,
    );

    let engine = SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        EngineConfig::default(),
    );
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let truth = |row: usize| {
        if row % 5 != 4 {
            "Yes".into()
        } else {
            "No".into()
        }
    };
    let fds = FunctionalDeps::empty(3);

    println!("{n} tickets, {} support macros\n", MACROS.len());
    println!(
        "{:<12} {:>10} {:>8} {:>14} {:>14}",
        "ordering", "job time", "PHR", "GPT-4o-mini", "Claude 3.5"
    );
    for solver in [&OriginalOrder as &dyn Reorderer, &Ggr::default()] {
        let out = executor.execute(&table, &query, solver, &fds, &truth)?;

        // Price the same schedule on provider prompt caches.
        let encoded = encode_table(&Tokenizer::new(), &table, &query)?;
        let solution = solver.reorder(&encoded.reorder, &fds)?;
        // Small-prompt demo rules (production minimums are 1024 tokens): the
        // Anthropic breakpoint is placed just past instruction + macro.
        let mut openai = OpenAiCache::with_rules(64, 16);
        let mut anthropic = AnthropicCache::with_breakpoint(128);
        let mut usage_oa = Usage::default();
        let mut usage_an = Usage::default();
        for rp in &solution.plan.rows {
            let mut toks: Vec<u32> = encoded.instruction.to_vec();
            for &f in &rp.fields {
                let cell = encoded.reorder.cell(rp.row, f as usize);
                toks.extend_from_slice(&encoded.fragments[cell.value.as_u32() as usize]);
            }
            usage_oa.add(openai.process(&toks, 2));
            usage_an.add(anthropic.process(&toks, 2));
        }
        println!(
            "{:<12} {:>9.1}s {:>7.1}% {:>13.4}$ {:>13.4}$",
            out.report.solver,
            out.report.engine.job_completion_time_s,
            out.report.engine.prefix_hit_rate() * 100.0,
            usage_oa.cost(&Pricing::gpt4o_mini()),
            usage_an.cost(&Pricing::claude35_sonnet()),
        );
        assert_eq!(out.selected_rows.len(), n - n / 5, "semantics preserved");
    }
    println!(
        "\nGGR groups tickets answered by the same macro, so the long \
         support_response fragment leads each prompt and is cached across the group."
    );
    Ok(())
}
