//! Quickstart: reorder a small reviews⨝products table and watch the prefix
//! hit rate and simulated job time improve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use llmqo::core::{phc_of_plan, FunctionalDeps, Ggr, OriginalOrder, Reorderer};
use llmqo::relational::{LlmQuery, QueryExecutor, Schema, Table};
use llmqo::serve::{
    Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
};
use llmqo::tokenizer::Tokenizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A relational table: 200 reviews joined with 20 products.
    let mut table = Table::new(Schema::of_strings(&["review", "product", "rating"]));
    for i in 0..200 {
        table.push_row(vec![
            format!(
                "review number {i}: the anvil arrived {} days late but works",
                i % 7
            )
            .into(),
            format!(
                "Acme Anvil model {} — drop-forged steel, 10kg, lifetime warranty, \
                 suitable for blacksmithing and cartoon physics experiments",
                i % 20
            )
            .into(),
            ((i % 5) + 1).to_string().into(),
        ])?;
    }

    // 2. An LLM filter query over all three fields (paper T1).
    let query = LlmQuery::filter(
        "quickstart-filter",
        "Does the review express satisfaction? Answer ONLY 'Yes' or 'No'.",
        vec!["review".into(), "product".into(), "rating".into()],
        vec!["Yes".into(), "No".into()],
        "Yes",
        2.0,
    );

    // 3. A simulated Llama-3-8B serving stack on one L4 GPU.
    let engine = SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        EngineConfig::default(),
    );
    let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
    let truth = |row: usize| {
        if !row.is_multiple_of(3) {
            "Yes".into()
        } else {
            "No".into()
        }
    };
    let fds = FunctionalDeps::empty(3);

    // 4. Execute under the original ordering and under GGR.
    println!(
        "{:<12} {:>10} {:>8} {:>12}",
        "ordering", "job time", "PHR", "field PHC"
    );
    for solver in [&OriginalOrder as &dyn Reorderer, &Ggr::default()] {
        let out = executor.execute(&table, &query, solver, &fds, &truth)?;
        println!(
            "{:<12} {:>9.1}s {:>7.1}% {:>12}",
            out.report.solver,
            out.report.engine.job_completion_time_s,
            out.report.engine.prefix_hit_rate() * 100.0,
            out.report.field_phc.phc,
        );
        // Reordering never changes results:
        assert_eq!(out.selected_rows.len(), 133);
    }

    // 5. Inspect the schedule itself.
    let encoded = llmqo::relational::encode_table(&Tokenizer::new(), &table, &query)?;
    let solution = Ggr::default().reorder(&encoded.reorder, &fds)?;
    let report = phc_of_plan(&encoded.reorder, &solution.plan);
    println!(
        "\nGGR schedule: first row {:?} (shared product description leads), \
         field-level hit rate {:.1}%",
        solution.plan.rows[0],
        report.hit_rate() * 100.0
    );
    Ok(())
}
