//! Compare every solver — the exact OPHR oracle, GGR, and the fixed-order
//! baselines — on small random tables, and print how close the greedy
//! algorithm lands to the optimum (paper Appendix D.1 in miniature).
//!
//! ```sh
//! cargo run --release --example solver_playground [rows] [cols]
//! ```

use llmqo::core::{
    phc_of_plan, Cell, FunctionalDeps, Ggr, Ophr, OriginalOrder, ReorderTable, Reorderer,
    SortedFixed, StatFixed, ValueId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_table(rng: &mut StdRng, n: usize, m: usize) -> ReorderTable {
    let cols = (0..m).map(|c| format!("f{c}")).collect();
    let mut t = ReorderTable::new(cols).unwrap();
    for _ in 0..n {
        let row = (0..m)
            .map(|c| {
                // Column c draws from a pool whose size grows with c: early
                // columns duplicate heavily, late ones rarely.
                let pool = 2 + c * 3;
                let v = (c * 100 + rng.random_range(0..pool)) as u32;
                Cell::new(ValueId::from_raw(v), 1 + (v % 7))
            })
            .collect();
        t.push_row(row).unwrap();
    }
    t
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let mut rng = StdRng::seed_from_u64(2026);
    let fds = FunctionalDeps::empty(m);

    println!("random {n}×{m} tables, 5 seeds, PHC by solver (higher is better)\n");
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "seed", "original", "sorted-fixed", "stat-fixed", "ggr", "ophr(30s)"
    );
    let mut ggr_total = 0.0;
    let mut opt_total = 0.0;
    for seed in 0..5 {
        let table = random_table(&mut rng, n, m);
        let score = |s: &dyn Reorderer| -> String {
            match s.reorder(&table, &fds) {
                Ok(sol) => format!("{}", phc_of_plan(&table, &sol.plan).phc),
                Err(_) => "timeout".to_owned(),
            }
        };
        let ggr_sol = Ggr::default().reorder(&table, &fds).unwrap();
        let ggr_phc = phc_of_plan(&table, &ggr_sol.plan).phc;
        let ophr = Ophr::with_budget(Duration::from_secs(30)).reorder(&table, &fds);
        let opt_str = match &ophr {
            Ok(sol) => {
                let opt = phc_of_plan(&table, &sol.plan).phc;
                assert!(opt >= ggr_phc, "oracle beaten by greedy");
                ggr_total += ggr_phc as f64;
                opt_total += opt as f64;
                format!("{opt}")
            }
            Err(_) => "timeout".to_owned(),
        };
        println!(
            "{:<6} {:>10} {:>12} {:>10} {:>10} {:>12}",
            seed,
            score(&OriginalOrder),
            score(&SortedFixed),
            score(&StatFixed),
            ggr_phc,
            opt_str,
        );
    }
    if opt_total > 0.0 {
        println!(
            "\nGGR achieved {:.1}% of the optimal PHC across completed oracle runs.",
            100.0 * ggr_total / opt_total
        );
    }
}
