//! Sharded serving: route a GGR-reordered workload across engine replicas
//! and watch prefix-affinity routing preserve the hit rate that round-robin
//! dispatch destroys.
//!
//! ```sh
//! cargo run --release --example cluster_routing
//! ```

use llmqo::cluster::{
    tag_requests, ArrivalProcess, ClusterConfig, ClusterSim, LeastLoaded, PrefixAffinity,
    RoundRobin, Router,
};
use llmqo::core::{FunctionalDeps, Ggr, Reorderer};
use llmqo::relational::{encode_table, plan_requests, LlmQuery, Schema, Table};
use llmqo::serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine};
use llmqo::tokenizer::Tokenizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A reviews⨝products table: 600 rows over 75 products, so GGR groups
    //    rows into 75 shared-prefix families.
    let mut table = Table::new(Schema::of_strings(&["review", "product"]));
    for i in 0..600 {
        table.push_row(vec![
            format!("review {i}: arrived in {} pieces, assembly was wild", i % 9).into(),
            format!(
                "Acme Gadget {} — titanium chassis, self-winding mainspring, \
                 includes safety goggles and a 40-page manual",
                i % 75
            )
            .into(),
        ])?;
    }
    let query = LlmQuery::filter(
        "cluster-demo",
        "Is the review positive? Answer ONLY 'Yes' or 'No'.",
        vec!["product".into(), "review".into()],
        vec!["Yes".into(), "No".into()],
        "Yes",
        2.0,
    );

    // 2. GGR builds the shared-prefix schedule; the plan also yields each
    //    row's prefix identity for the router.
    let encoded = encode_table(&Tokenizer::new(), &table, &query)?;
    let solution = Ggr::default().reorder(&encoded.reorder, &FunctionalDeps::empty(2))?;
    let requests = plan_requests(&encoded, &solution.plan, &query);
    let keys = solution.plan.prefix_keys(&encoded.reorder, 1);
    let mut tagged = tag_requests(requests, &keys);
    ArrivalProcess::Poisson {
        rate_rps: 2000.0,
        seed: 42,
    }
    .assign(&mut tagged);

    // 3. Serve the same stream across 4 replicas under each policy.
    let engine = SimEngine::new(
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
        EngineConfig::default(),
    );
    let sim = ClusterSim::new(
        engine,
        ClusterConfig {
            replicas: 4,
            queue_cap: 64,
        },
    );
    for router in [
        &mut RoundRobin as &mut dyn Router,
        &mut LeastLoaded,
        &mut PrefixAffinity::default(),
        &mut PrefixAffinity::bounded(1.25),
    ] {
        let report = sim.run(router, &tagged)?;
        print!("{report}");
    }
    println!(
        "\nprefix-affinity keeps each product's rows on one replica, so its \
         description is prefilled once cluster-wide instead of once per replica."
    );
    Ok(())
}
