//! # llmqo — Optimizing LLM Queries in Relational Data Analytics Workloads
//!
//! Facade crate for the `llmqo` workspace, a from-scratch Rust reproduction
//! of the MLSys 2025 paper of the same name. It re-exports every subsystem
//! so examples and downstream users can depend on a single crate:
//!
//! * [`core`] — the paper's contribution: the PHC objective, the exact OPHR
//!   solver, the greedy GGR solver (Algorithm 1), and fixed-order baselines.
//! * [`cluster`] — sharded serving across N engine replicas with
//!   prefix-affinity routing, bounded queues, and cluster-level reports.
//! * [`relational`] — a columnar table engine with an `LLM(...)` operator
//!   supporting filter / projection / multi-invocation / aggregation / RAG
//!   queries, plus statistics and functional-dependency discovery.
//! * [`serve`] — a discrete-time LLM serving simulator with a paged KV cache
//!   and radix-tree prefix reuse (the vLLM/SGLang stand-in).
//! * [`datasets`] — synthetic reproductions of the paper's seven datasets
//!   and its 16-query benchmark suite.
//! * [`obs`] — observability: metrics registry, sim-time tracer, and the
//!   Prometheus / JSON / Chrome-trace exporters (no-op by default).
//! * [`rag`] — embedding + vector-index retrieval substrate.
//! * [`costmodel`] — OpenAI/Anthropic prompt-cache pricing simulators.
//! * [`tokenizer`] — the deterministic subword tokenizer used throughout.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! # Example
//!
//! ```
//! use llmqo::core::{FunctionalDeps, Ggr, Reorderer, TableBuilder, phc_of_plan};
//!
//! let mut b = TableBuilder::new(vec!["review".into(), "product".into()]);
//! b.push_row(&["great", "Acme Anvil — forged steel"]);
//! b.push_row(&["bad", "Acme Anvil — forged steel"]);
//! let (table, _) = b.finish();
//! let s = Ggr::default().reorder(&table, &FunctionalDeps::empty(2)).unwrap();
//! assert!(phc_of_plan(&table, &s.plan).phc > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use llmqo_cluster as cluster;
pub use llmqo_core as core;
pub use llmqo_costmodel as costmodel;
pub use llmqo_datasets as datasets;
pub use llmqo_obs as obs;
pub use llmqo_rag as rag;
pub use llmqo_relational as relational;
pub use llmqo_serve as serve;
pub use llmqo_tokenizer as tokenizer;
