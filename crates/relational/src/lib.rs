//! # llmqo-relational — a columnar table engine with an `LLM(...)` operator
//!
//! Stand-in for the paper's PySpark integration (§5): the analytics engine's
//! job is to (1) expose the full input table to the request-reordering
//! optimizer and (2) invoke the LLM once per row, mapping outputs back into
//! relational results. This crate provides exactly that contract:
//!
//! * [`Table`] / [`Schema`] / [`Value`] — columnar storage.
//! * [`LlmQuery`] — the paper's five query types (T1–T5) with Appendix C
//!   prompt templates.
//! * [`encode_table`] — lowers a table to the optimizer's
//!   [`ReorderTable`](llmqo_core::ReorderTable) under the JSON field
//!   encoding.
//! * [`QueryExecutor`] — runs a query end to end: reorder → serve → parse,
//!   producing a [`QueryOutput`] with results and an [`ExecutionReport`]
//!   (job completion time, prefix hit rate, solver time, optimizer
//!   savings).
//! * [`optimizer`](crate::OptimizerConfig) + [`SqlRunner`] — the paper's
//!   SQL-aware optimizations as a cost-based logical optimizer: statements
//!   compile to a [`LogicalPlan`], rewrite rules push cheap predicates
//!   below LLM operators and rank LLM filters by cost/(1−selectivity)
//!   (priced via `llmqo-costmodel`), and the batched physical executor adds
//!   exact request deduplication and lazy `LIMIT` evaluation — provably
//!   without changing results.
//! * [`adaptive`] — runtime re-optimization: a [`SelectivityTracker`]
//!   feeds observed per-filter pass rates (Beta-smoothed over the static
//!   prior) back into the ranking between batches, lazy-`LIMIT` batches
//!   aim at `ceil(remaining / observed_selectivity)`, and an
//!   [`AnswerCache`] on the executor short-circuits every repeated prompt
//!   across batches, operators, and successive queries.
//!
//! # Example: the SQL front-end
//!
//! [`SqlRunner`] is the top-level entry point — register tables, run
//! LLM-SQL, read rows and the per-operator reports:
//!
//! ```
//! use llmqo_core::{FunctionalDeps, Ggr};
//! use llmqo_relational::{QueryExecutor, Schema, SqlRunner, Table};
//! use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec,
//!                   OracleLlm, SimEngine};
//! use llmqo_tokenizer::Tokenizer;
//!
//! let mut table = Table::new(Schema::of_strings(&["review", "product"]));
//! for i in 0..10 {
//!     table.push_row(vec![
//!         format!("review text {i}").into(),
//!         format!("product {}", i / 5).into(),
//!     ]).unwrap();
//! }
//! let fds = FunctionalDeps::empty(2);
//! let engine = SimEngine::new(
//!     Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
//!     EngineConfig::default(),
//! );
//! let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
//! let solver = Ggr::default();
//! let mut runner = SqlRunner::new(&executor, &solver);
//! runner.register("reviews", &table, &fds);
//!
//! let truth = |row: usize| if row < 5 { "Yes".into() } else { "No".into() };
//! let res = runner
//!     .run("SELECT review FROM reviews WHERE LLM('good?', review) = 'Yes'", &truth)
//!     .unwrap();
//! assert_eq!(res.rows.len(), 5);
//! assert_eq!(res.stages[0].report.opt.llm_calls, 10);
//! ```
//!
//! # Example: the executor API
//!
//! ```
//! use llmqo_core::{FunctionalDeps, Ggr};
//! use llmqo_relational::{LlmQuery, QueryExecutor, Schema, Table};
//! use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec,
//!                   OracleLlm, SimEngine};
//! use llmqo_tokenizer::Tokenizer;
//!
//! let mut table = Table::new(Schema::of_strings(&["request", "support_response"]));
//! table.push_row(vec!["refund?".into(), "We processed your refund.".into()]).unwrap();
//! table.push_row(vec!["broken!".into(), "We processed your refund.".into()]).unwrap();
//!
//! let query = LlmQuery::filter(
//!     "tickets",
//!     "Did the support response address the request? Answer Yes or No.",
//!     vec!["support_response".into(), "request".into()],
//!     vec!["Yes".into(), "No".into()],
//!     "Yes",
//!     2.0,
//! );
//!
//! let engine = SimEngine::new(
//!     Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
//!     EngineConfig::default(),
//! );
//! let executor = QueryExecutor::new(&engine, &OracleLlm, Tokenizer::new());
//! let truth = |row: usize| if row == 0 { "Yes".into() } else { "No".into() };
//! let out = executor
//!     .execute(&table, &query, &Ggr::default(), &FunctionalDeps::empty(2), &truth)
//!     .unwrap();
//! assert_eq!(out.selected_rows, vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod adaptive;
mod exec;
mod optimizer;
mod pipeline;
mod prompt;
mod query;
mod schema;
mod sql;
mod table;
mod value;

pub use adaptive::{
    AnswerCache, AnswerCacheStats, CacheSnapshotEntry, CachedAnswer, SelectivityTracker,
};
pub use exec::{
    plan_requests, project_fds, ExecError, ExecOptions, ExecutionReport, QueryExecutor,
    QueryOutput, RowOutput, StatementCheckpoint, StatementFaults,
};
pub use optimizer::{
    annotate_estimates, estimate_llm_op, optimize_plan, CascadeConfig, CmpOp, LogicalOp,
    LogicalPlan, OptStats, OptimizerConfig, SqlPredicate,
};
pub use prompt::{encode_table, encode_table_rows, field_fragment, EncodedTable};
pub use query::{LlmQuery, QueryKind};
pub use schema::{DataType, Field, Schema};
pub use sql::{
    parse_sql, LlmCall, Projection, SqlDefaults, SqlError, SqlResult, SqlRunner, SqlStatement,
    WhereConjunct,
};
pub use table::{Table, TableError};
pub use value::Value;
