//! Prompt construction and table encoding (paper §5).
//!
//! The paper's `LLM` operator builds each request as a system prompt (which
//! embeds the user's query text) followed by the row's field values encoded
//! as JSON-style `"name": "value"` pairs — the field *name* is part of the
//! fragment, so equal values in different fields never alias in the cache.
//!
//! [`encode_table`] lowers a relational [`Table`] into the optimizer's
//! [`ReorderTable`]: each distinct `(field, value)` fragment is interned
//! once, tokenized once, and its token count becomes the cell length that
//! the PHC objective squares.

use crate::query::LlmQuery;
use crate::table::{Table, TableError};
use llmqo_core::{Cell, Interner, ReorderTable};
use llmqo_tokenizer::{TokenId, Tokenizer};
use std::sync::Arc;

/// A table lowered to the optimizer's representation plus everything needed
/// to build engine requests from a schedule.
#[derive(Debug, Clone)]
pub struct EncodedTable {
    /// The optimizer's view: interned cells with fragment token lengths.
    pub reorder: ReorderTable,
    /// Token stream of each interned fragment, indexed by `ValueId`.
    pub fragments: Vec<Arc<[TokenId]>>,
    /// Shared instruction prefix (system prompt + query + preamble).
    pub instruction: Arc<[TokenId]>,
    /// Indices of the used columns in the source table's schema.
    pub used_cols: Vec<usize>,
}

impl EncodedTable {
    /// Token length of the shared instruction prefix.
    pub fn instruction_len(&self) -> usize {
        self.instruction.len()
    }

    /// Total prompt tokens if every row were sent (instruction + fields).
    pub fn total_prompt_tokens(&self) -> u64 {
        self.reorder.total_tokens() + (self.instruction.len() * self.reorder.nrows()) as u64
    }
}

/// Serializes one field cell as the paper's JSON-style fragment.
pub fn field_fragment(name: &str, value: &str) -> String {
    format!("\"{name}\": \"{value}\", ")
}

/// Lowers `table` restricted to `query.fields` into an [`EncodedTable`].
///
/// # Errors
///
/// [`TableError::UnknownColumn`] if the query references a missing field.
pub fn encode_table(
    tokenizer: &Tokenizer,
    table: &Table,
    query: &LlmQuery,
) -> Result<EncodedTable, TableError> {
    encode_table_rows(tokenizer, table, query, None)
}

/// [`encode_table`] restricted to a row subset: encoded row `i` is source
/// row `rows[i]`. `None` encodes every row. This is what the batched
/// physical executor uses — a lazy-`LIMIT` batch or a post-filter survivor
/// set is encoded directly, without materializing a sub-[`Table`].
///
/// # Errors
///
/// [`TableError::UnknownColumn`] if the query references a missing field.
///
/// # Panics
///
/// Panics if an index in `rows` is out of bounds.
pub fn encode_table_rows(
    tokenizer: &Tokenizer,
    table: &Table,
    query: &LlmQuery,
    rows: Option<&[usize]>,
) -> Result<EncodedTable, TableError> {
    let used_cols = table.resolve_columns(&query.fields)?;
    let nrows = rows.map_or(table.nrows(), <[usize]>::len);
    let row_at = |i: usize| rows.map_or(i, |rs| rs[i]);
    let mut reorder = ReorderTable::new(query.fields.clone())
        .unwrap_or_else(|_| unreachable!("queries are validated to have at least one field"));
    // One up-front reservation sizes both the row-major store and the
    // column-major mirror the solvers scan.
    reorder.reserve_rows(nrows);
    let mut interner = Interner::new();
    let mut fragments: Vec<Arc<[TokenId]>> = Vec::new();

    let mut fragment_buf = String::new();
    for i in 0..nrows {
        let r = row_at(i);
        let mut row = Vec::with_capacity(used_cols.len());
        for (f, &c) in used_cols.iter().enumerate() {
            fragment_buf.clear();
            fragment_buf.push_str(&field_fragment(
                &query.fields[f],
                &table.value(r, c).to_string(),
            ));
            let before = interner.len();
            let id = interner.intern(&fragment_buf);
            if interner.len() > before {
                let toks = tokenizer.tokenize(&fragment_buf);
                fragments.push(Arc::from(toks.into_boxed_slice()));
            }
            let len = fragments[id.as_u32() as usize].len() as u32;
            row.push(Cell::new(id, len));
        }
        reorder
            .push_row(row)
            .unwrap_or_else(|_| unreachable!("row arity fixed by used_cols"));
    }

    let instruction_text = query.full_instruction();
    let instruction: Arc<[TokenId]> =
        Arc::from(tokenizer.tokenize(&instruction_text).into_boxed_slice());

    Ok(EncodedTable {
        reorder,
        fragments,
        instruction,
        used_cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{LlmQuery, QueryKind};
    use crate::schema::Schema;

    fn query(fields: &[&str]) -> LlmQuery {
        LlmQuery {
            name: "t".into(),
            kind: QueryKind::Filter,
            user_prompt: "Answer Yes or No.".into(),
            fields: fields.iter().map(|s| s.to_string()).collect(),
            label_space: vec!["Yes".into(), "No".into()],
            predicate_label: Some("Yes".into()),
            key_field: None,
            output_tokens_mean: 2.0,
        }
    }

    fn table() -> Table {
        let mut t = Table::new(Schema::of_strings(&["review", "title", "unused"]));
        t.push_row(vec!["good".into(), "Anvil".into(), "x".into()])
            .unwrap();
        t.push_row(vec!["bad".into(), "Anvil".into(), "y".into()])
            .unwrap();
        t
    }

    #[test]
    fn encodes_only_used_fields() {
        let tok = Tokenizer::new();
        let e = encode_table(&tok, &table(), &query(&["review", "title"])).unwrap();
        assert_eq!(e.reorder.ncols(), 2);
        assert_eq!(e.reorder.nrows(), 2);
        assert_eq!(e.used_cols, vec![0, 1]);
    }

    #[test]
    fn shared_values_share_ids_and_fragments() {
        let tok = Tokenizer::new();
        let e = encode_table(&tok, &table(), &query(&["review", "title"])).unwrap();
        let a = e.reorder.cell(0, 1);
        let b = e.reorder.cell(1, 1);
        assert_eq!(a.value, b.value);
        // Three distinct fragments: good, bad, Anvil.
        assert_eq!(e.fragments.len(), 3);
    }

    #[test]
    fn same_value_different_field_gets_different_id() {
        let tok = Tokenizer::new();
        let mut t = Table::new(Schema::of_strings(&["a", "b"]));
        t.push_row(vec!["same".into(), "same".into()]).unwrap();
        let e = encode_table(&tok, &t, &query(&["a", "b"])).unwrap();
        assert_ne!(e.reorder.cell(0, 0).value, e.reorder.cell(0, 1).value);
    }

    #[test]
    fn cell_len_is_fragment_token_count() {
        let tok = Tokenizer::new();
        let e = encode_table(&tok, &table(), &query(&["review"])).unwrap();
        let cell = e.reorder.cell(0, 0);
        let expected = tok.count(&field_fragment("review", "good"));
        assert_eq!(cell.len as usize, expected);
        assert_eq!(e.fragments[cell.value.as_u32() as usize].len(), expected);
    }

    #[test]
    fn instruction_is_shared_and_nonempty() {
        let tok = Tokenizer::new();
        let e = encode_table(&tok, &table(), &query(&["review"])).unwrap();
        assert!(e.instruction_len() > 4);
        assert!(e.total_prompt_tokens() > e.reorder.total_tokens());
    }

    #[test]
    fn encode_table_rows_takes_a_subset_in_order() {
        let tok = Tokenizer::new();
        let q = query(&["review", "title"]);
        let full = encode_table(&tok, &table(), &q).unwrap();
        let sub = encode_table_rows(&tok, &table(), &q, Some(&[1])).unwrap();
        assert_eq!(sub.reorder.nrows(), 1);
        // Subset row 0 is source row 1: fragments carry the same content.
        let f = |e: &EncodedTable, r: usize, c: usize| {
            e.fragments[e.reorder.cell(r, c).value.as_u32() as usize].clone()
        };
        assert_eq!(f(&sub, 0, 0), f(&full, 1, 0));
        assert_eq!(f(&sub, 0, 1), f(&full, 1, 1));
        assert_eq!(sub.instruction, full.instruction);
    }

    #[test]
    fn unknown_field_is_an_error() {
        let tok = Tokenizer::new();
        let err = encode_table(&tok, &table(), &query(&["nope"])).unwrap_err();
        assert!(matches!(err, TableError::UnknownColumn { .. }));
    }

    #[test]
    fn fragment_format_is_json_style() {
        assert_eq!(field_fragment("title", "Anvil"), "\"title\": \"Anvil\", ");
    }
}
