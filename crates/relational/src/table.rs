//! Columnar tables.

use crate::schema::{DataType, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from table construction and access.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A row's length differs from the schema's field count.
    ArityMismatch {
        /// Expected field count.
        expected: usize,
        /// Provided cell count.
        got: usize,
    },
    /// A cell's type does not match its column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        expected: DataType,
        /// Provided value's type name.
        got: &'static str,
    },
    /// A referenced column does not exist.
    UnknownColumn {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} cells, schema has {expected} fields")
            }
            TableError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column} expects {expected}, got {got}"),
            TableError::UnknownColumn { name } => write!(f, "unknown column {name}"),
        }
    }
}

impl std::error::Error for TableError {}

/// A columnar table: the relational substrate the `LLM(...)` operator runs
/// over.
///
/// # Examples
///
/// ```
/// use llmqo_relational::{Schema, Table, Value};
/// let mut t = Table::new(Schema::of_strings(&["review", "title"]));
/// t.push_row(vec!["great".into(), "Anvil".into()]).unwrap();
/// assert_eq!(t.nrows(), 1);
/// assert_eq!(t.value(0, 1), &Value::Str("Anvil".into()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.len()).map(|_| Vec::new()).collect();
        Table { schema, columns }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// [`TableError::ArityMismatch`] if the row length is wrong;
    /// [`TableError::TypeMismatch`] if a non-null cell does not match its
    /// column type.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        if row.len() != self.schema.len() {
            return Err(TableError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let field = self.schema.field(i);
            let ok = matches!(
                (field.dtype, v),
                (DataType::Str, Value::Str(_))
                    | (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_))
                    | (DataType::Float, Value::Int(_))
                    | (DataType::Bool, Value::Bool(_))
            ) || matches!(v, Value::Null);
            if !ok {
                return Err(TableError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype,
                    got: v.type_name(),
                });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.schema.len()
    }

    /// The value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// A whole column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn column(&self, col: usize) -> &[Value] {
        &self.columns[col]
    }

    /// Resolves column names to indices.
    ///
    /// # Errors
    ///
    /// [`TableError::UnknownColumn`] naming the first missing column.
    pub fn resolve_columns(&self, names: &[String]) -> Result<Vec<usize>, TableError> {
        names
            .iter()
            .map(|n| {
                self.schema
                    .index_of(n)
                    .ok_or_else(|| TableError::UnknownColumn { name: n.clone() })
            })
            .collect()
    }

    /// A new table containing only the given rows (in the given order) —
    /// used by multi-invocation queries to feed filtered rows onward.
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        let mut out = Table::new(self.schema.clone());
        for col in 0..self.ncols() {
            out.columns[col] = rows.iter().map(|&r| self.columns[col][r].clone()).collect();
        }
        out
    }

    /// The first `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let n = n.min(self.nrows());
        self.select_rows(&(0..n).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::of_strings(&["a", "b"]));
        t.push_row(vec!["x".into(), "y".into()]).unwrap();
        t.push_row(vec!["z".into(), "w".into()]).unwrap();
        t
    }

    #[test]
    fn push_and_access() {
        let t = sample();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.value(1, 0), &Value::Str("z".into()));
        assert_eq!(t.column(1).len(), 2);
    }

    #[test]
    fn arity_checked() {
        let mut t = sample();
        assert_eq!(
            t.push_row(vec!["only one".into()]),
            Err(TableError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn types_checked() {
        use crate::schema::Field;
        let mut t = Table::new(Schema::new(vec![Field::new("n", DataType::Int)]));
        assert!(t.push_row(vec![Value::Int(1)]).is_ok());
        assert!(t.push_row(vec![Value::Null]).is_ok());
        let err = t.push_row(vec![Value::Str("no".into())]).unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn ints_accepted_in_float_columns() {
        use crate::schema::Field;
        let mut t = Table::new(Schema::new(vec![Field::new("x", DataType::Float)]));
        assert!(t.push_row(vec![Value::Int(3)]).is_ok());
    }

    #[test]
    fn resolve_columns_by_name() {
        let t = sample();
        assert_eq!(
            t.resolve_columns(&["b".to_string(), "a".to_string()])
                .unwrap(),
            vec![1, 0]
        );
        assert!(matches!(
            t.resolve_columns(&["missing".to_string()]),
            Err(TableError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn select_rows_reorders_and_duplicates() {
        let t = sample();
        let s = t.select_rows(&[1, 0, 1]);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.value(0, 0), &Value::Str("z".into()));
        assert_eq!(s.value(2, 0), &Value::Str("z".into()));
    }

    #[test]
    fn head_clamps() {
        let t = sample();
        assert_eq!(t.head(1).nrows(), 1);
        assert_eq!(t.head(10).nrows(), 2);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(Schema::of_strings(&["a"]));
        assert_eq!(t.nrows(), 0);
        assert_eq!(t.head(3).nrows(), 0);
    }
}
