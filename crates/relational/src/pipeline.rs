//! Physical stage engines for pipelined, cluster-parallel SQL execution.
//!
//! Every LLM operator in a statement owns a [`StageEngine`]: either one
//! [`EngineSession`] (the classic relay) or a [`SessionGroup`] of `N`
//! replica sessions behind the cluster layer's [`PrefixAffinity`] router.
//! All stage engines of a statement live on one discrete-event timeline:
//! the SQL runner hands each batch's upstream completion instant to
//! [`StageEngine::advance_to`] before running it, so operator `j` prefills
//! batch `k + 1` while operator `j + 1` decodes batch `k` — overlap instead
//! of a relay — and fan-out spreads one operator's dedup-compacted batch
//! across replicas while rendezvous hashing on the reorder plan's prefix
//! keys keeps every shared-prefix group on one replica (the locality the
//! PR-2 solvers created and `fig_cluster` measures).
//!
//! Routing here reuses the cluster crate's router and snapshot types
//! directly: the statement-level fan-out is a small, arrival-free special
//! case of the sharded dispatcher (no admission queue, no backpressure —
//! replica queues are unbounded within a statement), so the same
//! [`ReplicaSnapshot`] contract applies.

use llmqo_cluster::{PrefixAffinity, ReplicaSnapshot, Router};
use llmqo_serve::{
    percentile, Completion, EngineError, EngineReport, EngineSession, SessionGroup, SimEngine,
    SimRequest,
};

/// Depth (leading scheduled fields) of the reorder-plan prefix keys used
/// for fan-out routing — the same fixed depth the cluster benches
/// (`fig_cluster`, `perf_trace`) tag requests with.
pub(crate) const PREFIX_KEY_DEPTH: usize = 1;

/// The engine a single LLM operator runs on: one session, or a routed
/// replica group. See the [module docs](self).
#[derive(Debug)]
pub(crate) enum StageEngine {
    /// The classic single-session stage (boxed: a session is two orders of
    /// magnitude bigger than the fan-out handle).
    Single(Box<EngineSession>),
    /// `N` replica sessions with prefix-affinity routing.
    Fanout(FanoutStage),
}

/// The fan-out variant's state: the replica group plus the routing
/// bookkeeping the dispatcher needs ([`ReplicaSnapshot::assigned`]).
#[derive(Debug)]
pub(crate) struct FanoutStage {
    group: SessionGroup,
    router: PrefixAffinity,
    assigned: Vec<usize>,
}

impl StageEngine {
    /// Opens a stage engine with `replicas` sessions (`<= 1` means the
    /// single-session form).
    pub fn open(engine: &SimEngine, replicas: usize) -> Result<Self, EngineError> {
        if replicas <= 1 {
            Ok(StageEngine::Single(Box::new(engine.session()?)))
        } else {
            Ok(StageEngine::Fanout(FanoutStage {
                group: SessionGroup::new(engine, replicas)?,
                router: PrefixAffinity::default(),
                assigned: vec![0; replicas],
            }))
        }
    }

    /// Number of replica sessions (1 for the single form).
    pub fn replicas(&self) -> usize {
        match self {
            StageEngine::Single(_) => 1,
            StageEngine::Fanout(f) => f.group.len(),
        }
    }

    /// Whether [`run_batch`](Self::run_batch) routes by prefix key (lets
    /// callers skip computing keys for the single form).
    pub fn wants_prefix_keys(&self) -> bool {
        matches!(self, StageEngine::Fanout(_))
    }

    /// The stage clock: when everything this stage has run so far is done
    /// (max replica clock for the fan-out form).
    pub fn clock(&self) -> f64 {
        match self {
            StageEngine::Single(s) => s.clock(),
            StageEngine::Fanout(f) => f.group.clock(),
        }
    }

    /// Fast-forwards idle (replica) sessions to `t` — the upstream
    /// operator's hand-off instant. Sessions already past `t` are
    /// untouched.
    pub fn advance_to(&mut self, t: f64) {
        match self {
            StageEngine::Single(s) => s.advance_to(t),
            StageEngine::Fanout(f) => f.group.advance_to(t),
        }
    }

    /// Runs one batch to completion and returns its completion records.
    ///
    /// For the fan-out form, `keys[i]` is request `i`'s reorder-plan prefix
    /// key; requests are placed replica by replica through the
    /// prefix-affinity router against live snapshots, then all replicas run
    /// concurrently on the simulated clock. The merge order is
    /// deterministic (replica index, then per-replica completion order);
    /// callers consume completions by request id, so no order beyond
    /// determinism is promised. The single form ignores `keys`.
    ///
    /// # Errors
    ///
    /// [`EngineError::RequestTooLarge`] if a request can never be admitted.
    pub fn run_batch(
        &mut self,
        requests: &[SimRequest],
        keys: &[u64],
    ) -> Result<Vec<Completion>, EngineError> {
        match self {
            StageEngine::Single(s) => Ok(s.run_batch(requests)?.to_vec()),
            StageEngine::Fanout(f) => {
                debug_assert_eq!(requests.len(), keys.len(), "one prefix key per request");
                for (req, &key) in requests.iter().zip(keys) {
                    let snapshots: Vec<ReplicaSnapshot> = (0..f.group.len())
                        .map(|i| {
                            let s = f.group.get(i);
                            ReplicaSnapshot {
                                index: i,
                                queued: s.queued(),
                                running: s.running(),
                                kv_blocks_in_use: s.kv_blocks_in_use(),
                                capacity_blocks: s.capacity_blocks(),
                                clock_s: s.clock(),
                                assigned: f.assigned[i],
                                alive: true,
                            }
                        })
                        .collect();
                    let choice = f.router.route(key, &snapshots).min(f.group.len() - 1);
                    f.group.enqueue_on(choice, req);
                    f.assigned[choice] += 1;
                }
                let drained = f.group.drain()?;
                Ok(drained.into_iter().flatten().collect())
            }
        }
    }

    /// Finalizes the stage into one [`EngineReport`].
    ///
    /// The fan-out merge: counts, tokens, steps, evictions, and attributed
    /// times are summed (total work done across the group);
    /// `job_completion_time_s` is the max replica clock (when the stage as
    /// a whole finished); peaks are the max over replicas (the hottest
    /// replica's high-water mark); latency/TTFT percentiles are recomputed
    /// over the merged per-request records.
    pub fn finish(self) -> EngineReport {
        match self {
            StageEngine::Single(s) => s.finish().report,
            StageEngine::Fanout(f) => {
                let reports = f.group.finish();
                let mut merged = EngineReport::default();
                let mut ttfts: Vec<f64> = Vec::new();
                let mut latencies: Vec<f64> = Vec::new();
                for sr in reports {
                    let r = sr.report;
                    merged.job_completion_time_s =
                        merged.job_completion_time_s.max(r.job_completion_time_s);
                    merged.prefill_time_s += r.prefill_time_s;
                    merged.decode_time_s += r.decode_time_s;
                    merged.overhead_time_s += r.overhead_time_s;
                    merged.total_prompt_tokens += r.total_prompt_tokens;
                    merged.cached_prompt_tokens += r.cached_prompt_tokens;
                    merged.computed_prompt_tokens += r.computed_prompt_tokens;
                    merged.total_output_tokens += r.total_output_tokens;
                    merged.steps += r.steps;
                    merged.peak_running = merged.peak_running.max(r.peak_running);
                    merged.peak_blocks = merged.peak_blocks.max(r.peak_blocks);
                    merged.evictions += r.evictions;
                    merged.completed += r.completed;
                    for c in &sr.completions {
                        ttfts.push(c.ttft_s);
                        latencies.push(c.finished_s - c.admitted_s);
                    }
                }
                ttfts.sort_by(f64::total_cmp);
                latencies.sort_by(f64::total_cmp);
                merged.ttft_p50_s = percentile(&ttfts, 0.50);
                merged.ttft_p99_s = percentile(&ttfts, 0.99);
                merged.latency_p50_s = percentile(&latencies, 0.50);
                merged.latency_p99_s = percentile(&latencies, 0.99);
                merged
            }
        }
    }
}
