//! Cell values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed relational cell value.
///
/// Values serialize into prompt fragments with [`fmt::Display`]; two cells
/// are "the same" for caching purposes iff their serialized text is equal
/// (the paper's exact-match assumption, §3.1).
///
/// # Examples
///
/// ```
/// use llmqo_relational::Value;
/// assert_eq!(Value::Str("Fresh".into()).to_string(), "Fresh");
/// assert_eq!(Value::Bool(true).to_string(), "true");
/// assert_eq!(Value::Null.to_string(), "null");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// UTF-8 text.
    Str(String),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// The contained string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Human-readable type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "str",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Null => "null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => f.write_str("null"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_semantics() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Str(String::new()).to_string(), "");
    }

    #[test]
    fn as_str_only_for_strings() {
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(1).as_str(), None);
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("a"), Value::Str("a".into()));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Float(0.0).type_name(), "float");
    }

    #[test]
    fn equal_text_means_equal_prompt_fragment() {
        // The exact-match caching identity is the serialized text.
        assert_eq!(Value::Int(5).to_string(), Value::Int(5).to_string());
        assert_ne!(
            Value::Int(5).to_string(),
            Value::Float(5.0).to_string().as_str().repeat(2)
        );
    }
}
