//! LLM query definitions (paper §6.1.2, Appendix A/C).
//!
//! A [`LlmQuery`] describes one `LLM(...)` invocation over a table: the
//! instruction prompt, the fields passed per row, the expected output shape
//! (label space and token length), and — for filters — which label keeps a
//! row. The paper's five query types map onto [`QueryKind`]; multi-LLM
//! invocation (T3) is a sequence of queries executed by
//! [`QueryExecutor::execute_multi`](crate::QueryExecutor::execute_multi).

use serde::{Deserialize, Serialize};

/// The paper's query taxonomy (§6.1.2). Multi-LLM invocation (T3) is
/// expressed as a chain of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// T1: `WHERE LLM(...) = label` — short categorical outputs.
    Filter,
    /// T2: `SELECT LLM(...)` — longer free-text outputs.
    Projection,
    /// T4: `AVG(LLM(...))` — numeric outputs folded into an aggregate.
    Aggregation,
    /// T5: retrieval-augmented generation over fetched contexts.
    Rag,
}

/// One LLM invocation over a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmQuery {
    /// Query name for reports (e.g. `"movies-filter"`).
    pub name: String,
    /// Query type.
    pub kind: QueryKind,
    /// The task instruction (the paper's per-dataset user prompts).
    pub user_prompt: String,
    /// Fields passed to the LLM, in schema order.
    pub fields: Vec<String>,
    /// Possible outputs for classification queries; empty for free text.
    pub label_space: Vec<String>,
    /// For filters: rows answering this label pass the predicate.
    pub predicate_label: Option<String>,
    /// The semantically key field (drives the accuracy study's positional
    /// sensitivity; e.g. FEVER's `claim`).
    pub key_field: Option<String>,
    /// Mean output length in tokens (paper Table 1's `output_avg`).
    pub output_tokens_mean: f64,
}

impl LlmQuery {
    /// Creates a filter query (T1).
    pub fn filter(
        name: impl Into<String>,
        user_prompt: impl Into<String>,
        fields: Vec<String>,
        label_space: Vec<String>,
        predicate_label: impl Into<String>,
        output_tokens_mean: f64,
    ) -> Self {
        LlmQuery {
            name: name.into(),
            kind: QueryKind::Filter,
            user_prompt: user_prompt.into(),
            fields,
            label_space,
            predicate_label: Some(predicate_label.into()),
            key_field: None,
            output_tokens_mean,
        }
    }

    /// Creates a projection query (T2).
    pub fn projection(
        name: impl Into<String>,
        user_prompt: impl Into<String>,
        fields: Vec<String>,
        output_tokens_mean: f64,
    ) -> Self {
        LlmQuery {
            name: name.into(),
            kind: QueryKind::Projection,
            user_prompt: user_prompt.into(),
            fields,
            label_space: Vec::new(),
            predicate_label: None,
            key_field: None,
            output_tokens_mean,
        }
    }

    /// Creates an aggregation query (T4) whose outputs are integers in
    /// `lo..=hi` (e.g. sentiment scores 1–5).
    pub fn aggregation(
        name: impl Into<String>,
        user_prompt: impl Into<String>,
        fields: Vec<String>,
        (lo, hi): (i64, i64),
        output_tokens_mean: f64,
    ) -> Self {
        LlmQuery {
            name: name.into(),
            kind: QueryKind::Aggregation,
            user_prompt: user_prompt.into(),
            fields,
            label_space: (lo..=hi).map(|v| v.to_string()).collect(),
            predicate_label: None,
            key_field: None,
            output_tokens_mean,
        }
    }

    /// Creates a RAG query (T5) over a question plus retrieved contexts.
    pub fn rag(
        name: impl Into<String>,
        user_prompt: impl Into<String>,
        fields: Vec<String>,
        label_space: Vec<String>,
        output_tokens_mean: f64,
    ) -> Self {
        LlmQuery {
            name: name.into(),
            kind: QueryKind::Rag,
            user_prompt: user_prompt.into(),
            fields,
            label_space,
            predicate_label: None,
            key_field: None,
            output_tokens_mean,
        }
    }

    /// Sets the semantically key field (builder style).
    pub fn with_key_field(mut self, field: impl Into<String>) -> Self {
        self.key_field = Some(field.into());
        self
    }

    /// The full instruction prefix shared by every row's request — the
    /// paper's system prompt (Appendix C) with the query text inlined.
    pub fn full_instruction(&self) -> String {
        format!(
            "You are a data analyst. Use the provided JSON data to answer the user \
             query based on the specified fields. Respond with only the answer, no \
             extra formatting.\nAnswer the below query:\n{}\nGiven the following data:\n",
            self.user_prompt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_constructor() {
        let q = LlmQuery::filter(
            "f",
            "Is it good?",
            vec!["review".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        );
        assert_eq!(q.kind, QueryKind::Filter);
        assert_eq!(q.predicate_label.as_deref(), Some("Yes"));
        assert!(q.full_instruction().contains("Is it good?"));
    }

    #[test]
    fn projection_has_free_text_output() {
        let q = LlmQuery::projection("p", "Summarize.", vec!["review".into()], 29.0);
        assert!(q.label_space.is_empty());
        assert!(q.predicate_label.is_none());
        assert_eq!(q.output_tokens_mean, 29.0);
    }

    #[test]
    fn aggregation_builds_label_space() {
        let q = LlmQuery::aggregation("a", "Rate 1-5.", vec!["review".into()], (1, 5), 2.0);
        assert_eq!(q.label_space, vec!["1", "2", "3", "4", "5"]);
    }

    #[test]
    fn key_field_builder() {
        let q = LlmQuery::rag(
            "r",
            "Answer SUPPORTS or REFUTES.",
            vec!["claim".into(), "evidence1".into()],
            vec!["SUPPORTS".into(), "REFUTES".into()],
            3.0,
        )
        .with_key_field("claim");
        assert_eq!(q.key_field.as_deref(), Some("claim"));
    }

    #[test]
    fn instruction_matches_appendix_c_shape() {
        let q = LlmQuery::projection("p", "QUERY TEXT", vec!["x".into()], 10.0);
        let inst = q.full_instruction();
        assert!(inst.starts_with("You are a data analyst."));
        assert!(inst.contains("QUERY TEXT"));
        assert!(inst.ends_with("Given the following data:\n"));
    }
}
