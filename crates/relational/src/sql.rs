//! A SQL front-end for LLM queries — the interface the paper's §1 examples
//! are written in:
//!
//! ```sql
//! SELECT movietitle FROM movies
//! WHERE LLM('Is this movie suitable for kids? Answer Yes or No.',
//!           movieinfo, reviewcontent, movietitle) = 'Yes'
//! ```
//!
//! The dialect covers the paper's workloads plus what its SQL-aware
//! optimizations need: `LLM(...)` calls in the projection (T2), `WHERE`
//! conjunctions mixing *several* `LLM(...)` predicates with cheap relational
//! predicates (`col = 'x'`, `col >= 10`, …), both at once (T3
//! multi-invocation), `AVG(LLM(...))` (T4), `LIMIT`, and `EXPLAIN`.
//!
//! Statements compile to a [`LogicalPlan`], pass through the cost-based
//! rewrite rules of the optimizer (see [`OptimizerConfig`]), and run on
//! [`SqlRunner`]'s
//! batched physical executor: cheap predicates run before LLM operators,
//! LLM predicates are ordered by estimated selectivity × per-row cost,
//! duplicate rows share engine requests, and `LIMIT` queries evaluate
//! lazily — stopping engine submission once enough rows qualify. With
//! [`OptimizerConfig::none`] the same executor reproduces the fixed
//! pre-optimizer pipeline, which is the differential oracle the integration
//! tests compare against.

use crate::adaptive::SelectivityTracker;
use crate::exec::{ExecError, ExecOptions, QueryExecutor, QueryOutput, StageOutcome};
use crate::optimizer::{
    annotate_estimates, estimate_llm_op, optimize_plan, CascadeConfig, CmpOp, LogicalOp,
    LogicalPlan, OptStats, OptimizerConfig, SqlPredicate,
};
use crate::pipeline::StageEngine;
use crate::query::LlmQuery;
use crate::table::{Table, TableError};
use llmqo_core::{FunctionalDeps, Reorderer};
use llmqo_costmodel::{CascadePlan, Pricing, TierPosterior};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors from parsing or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// The statement did not lex/parse.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// The referenced table is not registered.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// Execution failed downstream.
    Exec(ExecError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SqlError::UnknownTable { name } => write!(f, "unknown table {name}"),
            SqlError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ExecError> for SqlError {
    fn from(e: ExecError) -> Self {
        SqlError::Exec(e)
    }
}

/// One `LLM('prompt', field, …)` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlmCall {
    /// The instruction text.
    pub prompt: String,
    /// Referenced fields; `*` expands to the table's full schema.
    pub fields: Vec<String>,
    /// Whether `*` was used.
    pub star: bool,
}

/// What the SELECT list asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// Plain columns only.
    Columns(Vec<String>),
    /// A projection LLM call (optionally aliased).
    Llm {
        /// The call.
        call: LlmCall,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// `AVG(LLM(...))` aggregation.
    AvgLlm {
        /// The call.
        call: LlmCall,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// One conjunct of a `WHERE` clause. Conjuncts are combined with `AND`; the
/// optimizer is free to reorder them because row filters commute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhereConjunct {
    /// `LLM(...) = 'label'` (or `<>`).
    Llm {
        /// The call.
        call: LlmCall,
        /// The compared label.
        label: String,
        /// Whether the comparison is `<>`.
        negated: bool,
    },
    /// A cheap relational predicate.
    Sql(SqlPredicate),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlStatement {
    /// The SELECT list.
    pub projection: Projection,
    /// Source table name.
    pub table: String,
    /// `WHERE` conjuncts, in written order (empty when there is no `WHERE`).
    pub where_clause: Vec<WhereConjunct>,
    /// Optional `LIMIT n`.
    pub limit: Option<usize>,
    /// Whether the statement was prefixed with `EXPLAIN`.
    pub explain: bool,
    /// Whether the statement was prefixed with `EXPLAIN ANALYZE` (execute,
    /// then render the plan annotated with measured per-operator stats).
    pub analyze: bool,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    /// Numeric literal, kept verbatim (`LIMIT` wants an integer, predicates
    /// may compare decimals).
    Number(String),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '*' => {
                out.push((Tok::Star, i));
                i += 1;
            }
            '=' => {
                out.push((Tok::Eq, i));
                i += 1;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'>') => {
                    out.push((Tok::Neq, i));
                    i += 2;
                }
                Some(&b'=') => {
                    out.push((Tok::Le, i));
                    i += 2;
                }
                _ => {
                    out.push((Tok::Lt, i));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ge, i));
                    i += 2;
                } else {
                    out.push((Tok::Gt, i));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => break,
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                        None => {
                            return Err(SqlError::Parse {
                                message: "unterminated string literal".into(),
                                offset: i,
                            })
                        }
                    }
                }
                out.push((Tok::Str(s), i));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // Optional decimal part: `3.5` is one literal; `3.x` is not.
                if bytes.get(i) == Some(&b'.')
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                out.push((Tok::Number(input[start..i].to_string()), start));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' || ch == '.' || ch == '/' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(input[start..i].to_string()), start));
            }
            _ => {
                return Err(SqlError::Parse {
                    message: format!("unexpected character {c:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, o)| *o)
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected {kw}")))
            }
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse_llm_call(&mut self) -> Result<LlmCall, SqlError> {
        self.expect_keyword("LLM")?;
        match self.next() {
            Some(Tok::LParen) => {}
            _ => return Err(self.err("expected '(' after LLM")),
        }
        let prompt = match self.next() {
            Some(Tok::Str(s)) => s,
            _ => return Err(self.err("expected prompt string literal")),
        };
        let mut fields = Vec::new();
        let mut star = false;
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.next();
            match self.next() {
                Some(Tok::Ident(f)) => {
                    // `t.*` references arrive as an ident with a trailing dot
                    // then a star token; `t.field` stays a plain ident whose
                    // table qualifier we strip.
                    if let Some(stripped) = f.strip_suffix('.') {
                        let _ = stripped;
                        match self.next() {
                            Some(Tok::Star) => star = true,
                            _ => return Err(self.err("expected '*' after qualifier")),
                        }
                    } else {
                        let name = f.rsplit('.').next().unwrap_or(&f).to_string();
                        fields.push(name);
                    }
                }
                Some(Tok::Star) => star = true,
                _ => return Err(self.err("expected field reference")),
            }
        }
        match self.next() {
            Some(Tok::RParen) => {}
            _ => return Err(self.err("expected ')' closing LLM call")),
        }
        Ok(LlmCall {
            prompt,
            fields,
            star,
        })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.is_keyword("AS") {
            self.next();
            match self.next() {
                Some(Tok::Ident(a)) => Ok(Some(a)),
                _ => Err(self.err("expected alias after AS")),
            }
        } else {
            Ok(None)
        }
    }

    fn parse_cmp(&mut self) -> Result<CmpOp, SqlError> {
        match self.next() {
            Some(Tok::Eq) => Ok(CmpOp::Eq),
            Some(Tok::Neq) => Ok(CmpOp::Ne),
            Some(Tok::Lt) => Ok(CmpOp::Lt),
            Some(Tok::Le) => Ok(CmpOp::Le),
            Some(Tok::Gt) => Ok(CmpOp::Gt),
            Some(Tok::Ge) => Ok(CmpOp::Ge),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected comparison operator"))
            }
        }
    }

    fn parse_where_conjunct(&mut self) -> Result<WhereConjunct, SqlError> {
        if self.is_keyword("LLM") {
            let call = self.parse_llm_call()?;
            let negated = match self.next() {
                Some(Tok::Eq) => false,
                Some(Tok::Neq) => true,
                _ => return Err(self.err("expected '=' or '<>' after LLM predicate")),
            };
            let label = match self.next() {
                Some(Tok::Str(s)) => s,
                _ => return Err(self.err("expected label string literal")),
            };
            Ok(WhereConjunct::Llm {
                call,
                label,
                negated,
            })
        } else {
            let column = match self.next() {
                Some(Tok::Ident(c)) => c.rsplit('.').next().unwrap_or(&c).to_string(),
                _ => return Err(self.err("expected LLM call or column name")),
            };
            let op = self.parse_cmp()?;
            let literal = match self.next() {
                Some(Tok::Str(s)) => s,
                Some(Tok::Number(n)) => n,
                _ => return Err(self.err("expected literal after comparison")),
            };
            Ok(WhereConjunct::Sql(SqlPredicate {
                column,
                op,
                literal,
            }))
        }
    }

    fn parse(&mut self) -> Result<SqlStatement, SqlError> {
        let explain = if self.is_keyword("EXPLAIN") {
            self.next();
            true
        } else {
            false
        };
        let analyze = if explain && self.is_keyword("ANALYZE") {
            self.next();
            true
        } else {
            false
        };
        self.expect_keyword("SELECT")?;
        let projection = if self.is_keyword("LLM") {
            let call = self.parse_llm_call()?;
            let alias = self.parse_alias()?;
            Projection::Llm { call, alias }
        } else if self.is_keyword("AVG") {
            self.next();
            match self.next() {
                Some(Tok::LParen) => {}
                _ => return Err(self.err("expected '(' after AVG")),
            }
            let call = self.parse_llm_call()?;
            match self.next() {
                Some(Tok::RParen) => {}
                _ => return Err(self.err("expected ')' closing AVG")),
            }
            let alias = self.parse_alias()?;
            Projection::AvgLlm { call, alias }
        } else {
            let mut cols = Vec::new();
            loop {
                match self.next() {
                    Some(Tok::Ident(c)) => {
                        cols.push(c.rsplit('.').next().unwrap_or(&c).to_string())
                    }
                    Some(Tok::Star) => cols.push("*".to_string()),
                    _ => return Err(self.err("expected column name")),
                }
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
            Projection::Columns(cols)
        };

        self.expect_keyword("FROM")?;
        let table = match self.next() {
            Some(Tok::Ident(t)) => t,
            _ => return Err(self.err("expected table name")),
        };

        let mut where_clause = Vec::new();
        if self.is_keyword("WHERE") {
            self.next();
            loop {
                where_clause.push(self.parse_where_conjunct()?);
                if self.is_keyword("AND") {
                    self.next();
                } else {
                    break;
                }
            }
        }

        let mut limit = None;
        if self.is_keyword("LIMIT") {
            self.next();
            match self.next() {
                Some(Tok::Number(raw)) => match raw.parse::<usize>() {
                    Ok(n) => limit = Some(n),
                    Err(_) => return Err(self.err("expected integer row count after LIMIT")),
                },
                _ => return Err(self.err("expected row count after LIMIT")),
            }
        }
        if self.peek().is_some() {
            return Err(self.err("unexpected trailing tokens"));
        }
        Ok(SqlStatement {
            projection,
            table,
            where_clause,
            limit,
            explain,
            analyze,
        })
    }
}

/// Parses one statement of the LLM-SQL dialect.
///
/// # Errors
///
/// [`SqlError::Parse`] with the byte offset of the first offending token.
///
/// # Examples
///
/// ```
/// let stmt = llmqo_relational::parse_sql(
///     "SELECT movietitle FROM movies \
///      WHERE genres = 'Comedy' \
///      AND LLM('Suitable for kids?', movieinfo, reviewcontent) = 'Yes' \
///      LIMIT 10",
/// ).unwrap();
/// assert_eq!(stmt.table, "movies");
/// assert_eq!(stmt.where_clause.len(), 2);
/// ```
pub fn parse_sql(input: &str) -> Result<SqlStatement, SqlError> {
    let toks = lex(input)?;
    Parser { toks, pos: 0 }.parse()
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Result of running one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows (stringified values, row-major), in original row order.
    /// For `EXPLAIN` statements: the plan rendering, one line per row.
    pub rows: Vec<Vec<String>>,
    /// The aggregate, for `AVG(LLM(...))` statements.
    pub aggregate: Option<f64>,
    /// Per-LLM-operator execution outputs, in *final* execution order
    /// (adaptive re-ranking may have moved operators mid-query).
    pub stages: Vec<QueryOutput>,
    /// Human-readable optimizer events: static rewrites plus runtime
    /// adaptive decisions (re-ranks, batch-size aims).
    pub notes: Vec<String>,
}

/// Per-plan-node measurements collected while `execute_plan` runs, consumed
/// by the `EXPLAIN ANALYZE` rendering.
struct AnalyzeData {
    /// `(rows offered, rows produced)` per plan-op index, summed over
    /// batches. The `Limit` node holds the materialized count before and
    /// after truncation.
    node_rows: Vec<(u64, u64)>,
    /// Plan-op index → index into [`SqlResult::stages`] for LLM operators.
    stage_of: Vec<Option<usize>>,
    /// How many leading entries of [`SqlResult::notes`] are optimizer
    /// rewrites; the rest were appended at runtime in schedule order.
    rewrite_notes: usize,
    /// Per-plan-op instant (shared statement timeline) the operator's stage
    /// finished its last micro-batch. Populated only under pipelined
    /// execution; drives the per-node overlap columns.
    stage_done_s: Vec<f64>,
    /// Statement makespan on the shared timeline (max final stage clock).
    /// `None` when the statement ran as the classic relay.
    pipeline_makespan_s: Option<f64>,
}

/// Defaults applied when compiling SQL to [`LlmQuery`] plans (SQL carries no
/// label spaces or output-length hints).
#[derive(Debug, Clone)]
pub struct SqlDefaults {
    /// Labels assumed for filter predicates when only the compared label is
    /// known; the compared label is always inserted.
    pub filter_labels: Vec<String>,
    /// Mean output tokens for projection calls.
    pub projection_output_tokens: f64,
    /// Mean output tokens for filter calls.
    pub filter_output_tokens: f64,
    /// Score range for `AVG(LLM(...))`.
    pub aggregation_range: (i64, i64),
}

impl Default for SqlDefaults {
    fn default() -> Self {
        SqlDefaults {
            filter_labels: vec!["Yes".into(), "No".into()],
            projection_output_tokens: 32.0,
            filter_output_tokens: 2.0,
            aggregation_range: (1, 5),
        }
    }
}

/// Executes LLM-SQL statements against registered tables through a
/// [`QueryExecutor`] and a [`Reorderer`], applying the cost-based logical
/// optimizer (see [`OptimizerConfig`]) before execution. Construct with
/// every optimization on (the default) or tune via
/// [`with_optimizer`](SqlRunner::with_optimizer);
/// [`OptimizerConfig::none`] reproduces the unoptimized pipeline.
pub struct SqlRunner<'a> {
    executor: &'a QueryExecutor<'a>,
    reorderer: &'a dyn Reorderer,
    defaults: SqlDefaults,
    opt: OptimizerConfig,
    pricing: Pricing,
    catalog: HashMap<String, (&'a Table, &'a FunctionalDeps)>,
    /// Learned tier posteriors per operator (keyed by query name):
    /// escalation and cheap-vs-expensive agreement rates, carried across
    /// statements so cascade pricing sharpens with observations. Empty —
    /// and never touched — when cascades are off.
    tier_posteriors: RefCell<HashMap<String, TierPosterior>>,
}

impl<'a> fmt::Debug for SqlRunner<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SqlRunner")
            .field("tables", &self.catalog.keys().collect::<Vec<_>>())
            .field("optimizer", &self.opt)
            .finish_non_exhaustive()
    }
}

impl<'a> SqlRunner<'a> {
    /// Creates a runner with every optimization enabled.
    pub fn new(executor: &'a QueryExecutor<'a>, reorderer: &'a dyn Reorderer) -> Self {
        SqlRunner {
            executor,
            reorderer,
            defaults: SqlDefaults::default(),
            opt: OptimizerConfig::default(),
            pricing: Pricing::gpt4o_mini(),
            catalog: HashMap::new(),
            tier_posteriors: RefCell::new(HashMap::new()),
        }
    }

    /// Overrides compilation defaults.
    pub fn with_defaults(mut self, defaults: SqlDefaults) -> Self {
        self.defaults = defaults;
        self
    }

    /// Selects which optimizations run ([`OptimizerConfig::none`] is the
    /// differential oracle).
    pub fn with_optimizer(mut self, opt: OptimizerConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Sets the price schedule the cost-based rules rank LLM operators with.
    pub fn with_pricing(mut self, pricing: Pricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Registers a table under `name`.
    pub fn register(&mut self, name: impl Into<String>, table: &'a Table, fds: &'a FunctionalDeps) {
        self.catalog.insert(name.into(), (table, fds));
    }

    /// Snapshots the executor's answer cache as a
    /// [`StatementCheckpoint`](crate::StatementCheckpoint): the LLM work
    /// every statement run so far has already paid for. Take one after a
    /// statement dies mid-flight and
    /// [`restore`](SqlRunner::restore) it into a fresh runner's executor —
    /// the re-run statement answers checkpointed prompts from the cache
    /// (byte-identical rows) and only re-issues the unfinished tail.
    pub fn checkpoint(&self) -> crate::StatementCheckpoint {
        self.executor.checkpoint()
    }

    /// Merges a [`checkpoint`](SqlRunner::checkpoint) into the executor's
    /// answer cache (existing entries win).
    pub fn restore(&self, checkpoint: &crate::StatementCheckpoint) {
        self.executor.restore(checkpoint);
    }

    /// Expands an `LLM(...)` call's field list. Star (and empty) calls
    /// expand to the whole schema; when the caller supplies the statement's
    /// referenced-column set, the expansion is pruned to it — fields no part
    /// of the statement ever reads are provably ignored by the SELECT list,
    /// so dropping them from the prompt (and therefore from the dedup key
    /// and the solver's [`ReorderTable`](llmqo_core::ReorderTable) view)
    /// cannot change results. Explicit field lists are never touched, and a
    /// pruning that would leave the call with no fields falls back to the
    /// full expansion (an LLM call must read at least one field).
    fn resolve_fields(
        &self,
        call: &LlmCall,
        table: &Table,
        referenced: Option<&HashSet<String>>,
    ) -> Vec<String> {
        if call.star || call.fields.is_empty() {
            let all: Vec<String> = table
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            if let Some(refs) = referenced {
                let pruned: Vec<String> =
                    all.iter().filter(|c| refs.contains(*c)).cloned().collect();
                if !pruned.is_empty() {
                    return pruned;
                }
            }
            all
        } else {
            call.fields.clone()
        }
    }

    /// The set of columns the statement references anywhere — SELECT list,
    /// cheap predicates, and explicit LLM field lists. Returns `None` (no
    /// pruning) when [`OptimizerConfig::prune_fields`] is off or when the
    /// projection itself reads every column (`SELECT *`, or a star LLM
    /// projection), since then nothing is provably ignored. Star `LLM`
    /// calls in `WHERE` contribute nothing: they are the prune targets.
    fn statement_columns(&self, stmt: &SqlStatement) -> Option<HashSet<String>> {
        if !self.opt.prune_fields {
            return None;
        }
        let mut cols = HashSet::new();
        match &stmt.projection {
            Projection::Columns(c) => {
                if c.iter().any(|c| c == "*") {
                    return None;
                }
                cols.extend(c.iter().cloned());
            }
            Projection::Llm { call, .. } | Projection::AvgLlm { call, .. } => {
                if call.star || call.fields.is_empty() {
                    return None;
                }
                cols.extend(call.fields.iter().cloned());
            }
        }
        for conj in &stmt.where_clause {
            match conj {
                WhereConjunct::Sql(pred) => {
                    cols.insert(pred.column.clone());
                }
                WhereConjunct::Llm { call, .. } => {
                    cols.extend(call.fields.iter().cloned());
                }
            }
        }
        Some(cols)
    }

    /// Compiles a parsed statement to its (unoptimized) logical plan, plus
    /// projection-pruning rewrite notes (see
    /// [`resolve_fields`](Self::resolve_fields)).
    fn build_plan(&self, stmt: &SqlStatement, table: &Table) -> (LogicalPlan, Vec<String>) {
        let referenced = self.statement_columns(stmt);
        let nfields = table.schema().names().len();
        let mut notes = Vec::new();
        let mut resolve = |call: &LlmCall, name: &str| -> Vec<String> {
            let fields = self.resolve_fields(call, table, referenced.as_ref());
            if (call.star || call.fields.is_empty()) && fields.len() < nfields {
                notes.push(format!(
                    "prune {name}: star expansion narrowed {nfields} → {} field(s) \
                     (columns the statement never reads are dropped from the \
                     prompt, dedup key, and reorder view)",
                    fields.len(),
                ));
            }
            fields
        };
        let mut ops = vec![LogicalOp::Scan {
            table: stmt.table.clone(),
        }];
        let mut llm_ordinal = 0usize;
        for conj in &stmt.where_clause {
            match conj {
                WhereConjunct::Sql(pred) => ops.push(LogicalOp::SqlFilter { pred: pred.clone() }),
                WhereConjunct::Llm {
                    call,
                    label,
                    negated,
                } => {
                    llm_ordinal += 1;
                    let name = if llm_ordinal == 1 {
                        format!("sql-where-{}", stmt.table)
                    } else {
                        format!("sql-where-{}-{llm_ordinal}", stmt.table)
                    };
                    let mut labels = self.defaults.filter_labels.clone();
                    if !labels.contains(label) {
                        labels.insert(0, label.clone());
                    }
                    let query = LlmQuery::filter(
                        name.clone(),
                        call.prompt.clone(),
                        resolve(call, &name),
                        labels,
                        label.clone(),
                        self.defaults.filter_output_tokens,
                    );
                    ops.push(LogicalOp::LlmFilter {
                        query,
                        negated: *negated,
                        est: None,
                    });
                }
            }
        }
        match &stmt.projection {
            Projection::Columns(cols) => {
                let columns: Vec<String> = if cols.iter().any(|c| c == "*") {
                    table
                        .schema()
                        .names()
                        .iter()
                        .map(|s| s.to_string())
                        .collect()
                } else {
                    cols.clone()
                };
                ops.push(LogicalOp::Project { columns });
            }
            Projection::Llm { call, alias } => {
                let name = format!("sql-select-{}", stmt.table);
                let query = LlmQuery::projection(
                    name.clone(),
                    call.prompt.clone(),
                    resolve(call, &name),
                    self.defaults.projection_output_tokens,
                );
                ops.push(LogicalOp::LlmProject {
                    query,
                    alias: alias.clone().unwrap_or_else(|| "llm".to_string()),
                });
            }
            Projection::AvgLlm { call, alias } => {
                let name = format!("sql-avg-{}", stmt.table);
                let query = LlmQuery::aggregation(
                    name.clone(),
                    call.prompt.clone(),
                    resolve(call, &name),
                    self.defaults.aggregation_range,
                    self.defaults.filter_output_tokens,
                );
                ops.push(LogicalOp::LlmAggregate {
                    query,
                    alias: alias.clone().unwrap_or_else(|| "avg".to_string()),
                });
            }
        }
        if let Some(n) = stmt.limit {
            ops.push(LogicalOp::Limit { n });
        }
        (LogicalPlan { ops }, notes)
    }

    /// Builds, annotates, and optimizes the plan for a parsed statement.
    /// Returned notes are rewrites: pruning events first, then the cost-based
    /// rules' events.
    fn plan_for(&self, stmt: &SqlStatement) -> Result<(LogicalPlan, Vec<String>), SqlError> {
        let &(table, _fds) =
            self.catalog
                .get(&stmt.table)
                .ok_or_else(|| SqlError::UnknownTable {
                    name: stmt.table.clone(),
                })?;
        let (mut plan, mut notes) = self.build_plan(stmt, table);
        annotate_estimates(&mut plan, table, self.executor.tokenizer());
        let (plan, opt_notes) = optimize_plan(&plan, &self.opt, &self.pricing);
        notes.extend(opt_notes);
        Ok((plan, notes))
    }

    /// Renders the optimized plan for `sql` without executing anything —
    /// the `EXPLAIN` entry point usable without a truth provider.
    ///
    /// # Errors
    ///
    /// [`SqlError`] on parse or catalog failure.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        let stmt = parse_sql(sql)?;
        let (plan, notes) = self.plan_for(&stmt)?;
        let mut out = plan.explain();
        out.push_str(&format!(
            "-- optimizer: dedup {}, reorder {}, lazy limit {}, adaptive {}, \
             answer cache {} (pricing: {})\n",
            on_off(self.opt.dedup),
            on_off(self.opt.reorder),
            on_off(self.opt.lazy_limit),
            on_off(self.opt.adaptive),
            on_off(self.opt.answer_cache),
            self.pricing.name,
        ));
        out.push_str(&self.faults_footer());
        out.push_str(&self.pipeline_footer(None));
        out.push_str(&self.cascade_footer(None));
        for note in &notes {
            out.push_str(&format!("-- rewrite: {note}\n"));
        }
        Ok(out)
    }

    /// The `-- pipeline:` footer line, or empty when pipelined execution is
    /// off (so classic-relay EXPLAIN output is unchanged). `EXPLAIN ANALYZE`
    /// passes the measured statement makespan.
    fn pipeline_footer(&self, makespan_s: Option<f64>) -> String {
        if !self.opt.pipeline {
            return String::new();
        }
        let measured = makespan_s.map_or(String::new(), |m| format!(", makespan {m:.2}s"));
        format!(
            "-- pipeline: replicas {}, micro-batch {} rows{measured}\n",
            self.opt.pipeline_replicas.max(1),
            self.opt.pipeline_batch_rows.max(1),
        )
    }

    /// The `-- faults:` footer line, or empty when no fault injection is
    /// configured (so fault-free EXPLAIN output is unchanged).
    fn faults_footer(&self) -> String {
        let Some(fa) = self.opt.faults else {
            return String::new();
        };
        format!(
            "-- faults: error rate {} ppm, budget {} attempt(s), {} (seed {})\n",
            fa.error_ppm,
            fa.max_attempts.max(1),
            if fa.partial_results {
                "partial results"
            } else {
                "strict"
            },
            fa.seed,
        )
    }

    /// The `-- cascade:` footer line, or empty when cascades are off (so
    /// single-tier EXPLAIN output stays byte-identical). `EXPLAIN ANALYZE`
    /// passes the statement's measured per-tier dollar ledger.
    fn cascade_footer(&self, measured: Option<(f64, f64)>) -> String {
        let Some(cc) = self.opt.cascade else {
            return String::new();
        };
        let p = cc.plan;
        let measured = measured.map_or(String::new(), |(cheap, esc)| {
            format!(", measured ${cheap:.4} cheap + ${esc:.4} expensive")
        });
        format!(
            "-- cascade: escalate below {:.2} (seed {}), cheap ${}/M in ${}/M out \
             (base acc {:.2}), expensive ${}/M in ${}/M out, pricing {}, \
             time weight {}{measured}\n",
            p.escalate_below,
            p.seed,
            p.cheap.input_per_mtok,
            p.cheap.output_per_mtok,
            p.cheap.base_accuracy,
            p.expensive.input_per_mtok,
            p.expensive.output_per_mtok,
            if cc.auto { "auto" } else { "always" },
            cc.time_weight,
        )
    }

    /// The tier posterior pricing one operator's cascade, registered on
    /// first use with the plan's own priors: the escalation prior is the
    /// threshold itself (confidence is uniform), the agreement prior the
    /// cheap tier's base accuracy.
    fn tier_posterior(&self, cc: &CascadeConfig, name: &str) -> TierPosterior {
        *self
            .tier_posteriors
            .borrow_mut()
            .entry(name.to_owned())
            .or_insert_with(|| {
                TierPosterior::new(
                    cc.plan.escalate_below,
                    cc.plan.cheap.base_accuracy,
                    self.opt.adaptive_prior_strength,
                )
            })
    }

    /// Folds one batch's observed escalation split into the operator's tier
    /// posterior (a no-op until [`tier_posterior`](Self::tier_posterior)
    /// registered it).
    fn observe_tier(&self, name: &str, opt: &OptStats) {
        if let Some(p) = self.tier_posteriors.borrow_mut().get_mut(name) {
            p.observe(
                opt.rows_escalated,
                opt.rows_cheap + opt.rows_escalated,
                opt.tier_agreements,
            );
        }
    }

    /// Parses and executes `sql`, supplying ground truth per row via `truth`.
    /// `EXPLAIN`-prefixed statements return the plan rendering as rows
    /// instead of executing; `EXPLAIN ANALYZE` executes the statement and
    /// returns the plan annotated with measured per-operator statistics
    /// (rows in/out, LLM calls, dedup/cache savings, re-ranks, sim-time),
    /// with the executed stages and notes attached to the result.
    ///
    /// # Errors
    ///
    /// [`SqlError`] on parse, catalog, or execution failure.
    pub fn run(&self, sql: &str, truth: &dyn Fn(usize) -> String) -> Result<SqlResult, SqlError> {
        let stmt = parse_sql(sql)?;
        if stmt.explain && !stmt.analyze {
            let text = self.explain(sql)?;
            return Ok(SqlResult {
                columns: vec!["plan".into()],
                rows: text.lines().map(|l| vec![l.to_string()]).collect(),
                aggregate: None,
                stages: Vec::new(),
                notes: Vec::new(),
            });
        }
        let &(table, fds) =
            self.catalog
                .get(&stmt.table)
                .ok_or_else(|| SqlError::UnknownTable {
                    name: stmt.table.clone(),
                })?;
        let (plan, notes) = self.plan_for(&stmt)?;
        let (result, data) = self.execute_plan(&plan, notes, table, fds, truth)?;
        if stmt.analyze {
            let text = self.render_analyze(&plan, &result, &data);
            return Ok(SqlResult {
                columns: vec!["plan".into()],
                rows: text.lines().map(|l| vec![l.to_string()]).collect(),
                aggregate: result.aggregate,
                stages: result.stages,
                notes: result.notes,
            });
        }
        Ok(result)
    }

    /// Renders the executed plan with per-node measurements plus the
    /// optimizer footer — the `EXPLAIN ANALYZE` output. Runtime notes
    /// (adaptive re-ranks, batch resizing) follow the `-- rewrite:` lines
    /// as `-- runtime:` lines, verbatim and in schedule order.
    fn render_analyze(&self, plan: &LogicalPlan, result: &SqlResult, data: &AnalyzeData) -> String {
        let mut out = plan.explain_with(|idx, op| {
            let (rows_in, rows_out) = data.node_rows[idx];
            Some(match op {
                LogicalOp::Scan { .. } => format!("(rows {rows_out})"),
                LogicalOp::LlmFilter { .. }
                | LogicalOp::LlmProject { .. }
                | LogicalOp::LlmAggregate { .. } => {
                    let report = data.stage_of[idx].map(|s| &result.stages[s].report);
                    let opt = report.map(|r| r.opt).unwrap_or_default();
                    let sim_s = report.map_or(0.0, |r| r.engine.job_completion_time_s);
                    // Failure columns appear only when fault injection
                    // actually bit, so fault-free renderings are unchanged.
                    let faults = if opt.llm_retries > 0 || opt.rows_failed > 0 {
                        format!(
                            ", retries {}, rows failed {}",
                            opt.llm_retries, opt.rows_failed
                        )
                    } else {
                        String::new()
                    };
                    // Overlap columns appear only under pipelined execution,
                    // so classic-relay renderings are unchanged: `busy` is
                    // the stage's attributed engine time, `done` the instant
                    // on the shared statement timeline its last micro-batch
                    // finished. `done − busy` is time spent waiting on
                    // upstream operators — overlap the pipeline bought.
                    let overlap = if data.pipeline_makespan_s.is_some() {
                        let busy = report.map_or(0.0, |r| {
                            r.engine.prefill_time_s
                                + r.engine.decode_time_s
                                + r.engine.overhead_time_s
                        });
                        format!(", busy {busy:.2}s, done {:.2}s", data.stage_done_s[idx])
                    } else {
                        String::new()
                    };
                    // Tier-split columns appear only when a cascade actually
                    // labeled rows here, so single-tier renderings are
                    // unchanged.
                    let tiers = match self.opt.cascade {
                        Some(cc) if opt.rows_cheap + opt.rows_escalated > 0 => {
                            let cheap_cost = cc.plan.cheap.cost(
                                opt.cheap_prompt_tokens as f64,
                                opt.cheap_output_tokens as f64,
                            );
                            let esc_cost = cc
                                .plan
                                .expensive
                                .cost(opt.esc_prompt_tokens as f64, opt.esc_output_tokens as f64);
                            format!(
                                ", rows cheap {} / escalated {}, \
                                 ${cheap_cost:.4} cheap + ${esc_cost:.4} expensive",
                                opt.rows_cheap, opt.rows_escalated,
                            )
                        }
                        _ => String::new(),
                    };
                    format!(
                        "(rows {rows_in} → {rows_out}, llm calls {}, dedup saved {}, \
                         cache saved {}, re-ranks {}, skipped {}{faults}{tiers}, \
                         sim {sim_s:.2}s{overlap})",
                        opt.llm_calls,
                        opt.rows_deduped,
                        opt.cache_hits,
                        opt.reranks,
                        opt.rows_skipped,
                    )
                }
                _ => format!("(rows {rows_in} → {rows_out})"),
            })
        });
        out.push_str(&format!(
            "-- optimizer: dedup {}, reorder {}, lazy limit {}, adaptive {}, \
             answer cache {} (pricing: {})\n",
            on_off(self.opt.dedup),
            on_off(self.opt.reorder),
            on_off(self.opt.lazy_limit),
            on_off(self.opt.adaptive),
            on_off(self.opt.answer_cache),
            self.pricing.name,
        ));
        out.push_str(&self.faults_footer());
        out.push_str(&self.pipeline_footer(data.pipeline_makespan_s));
        let measured = self.opt.cascade.map(|cc| {
            let (mut cheap, mut esc) = (0.0f64, 0.0f64);
            for s in &result.stages {
                cheap += cc.plan.cheap.cost(
                    s.report.opt.cheap_prompt_tokens as f64,
                    s.report.opt.cheap_output_tokens as f64,
                );
                esc += cc.plan.expensive.cost(
                    s.report.opt.esc_prompt_tokens as f64,
                    s.report.opt.esc_output_tokens as f64,
                );
            }
            (cheap, esc)
        });
        out.push_str(&self.cascade_footer(measured));
        for note in &result.notes[..data.rewrite_notes] {
            out.push_str(&format!("-- rewrite: {note}\n"));
        }
        for note in &result.notes[data.rewrite_notes..] {
            out.push_str(&format!("-- runtime: {note}\n"));
        }
        out
    }

    /// The physical interpreter: runs the optimized operator chain with
    /// per-operator engine sessions, exact dedup, the session answer cache,
    /// and batched (lazy `LIMIT` / adaptive pilot) execution. With
    /// [`OptimizerConfig::adaptive`] on, observed per-filter pass rates are
    /// folded into a [`SelectivityTracker`] batch by batch; between batches
    /// the remaining LLM filters are re-ranked by posterior
    /// cost/(1−selectivity) and lazy-`LIMIT` batches are sized at
    /// `ceil(remaining / observed_pipeline_selectivity)` (doubling only as
    /// fallback).
    fn execute_plan(
        &self,
        plan: &LogicalPlan,
        mut notes: Vec<String>,
        table: &Table,
        fds: &FunctionalDeps,
        truth: &dyn Fn(usize) -> String,
    ) -> Result<(SqlResult, AnalyzeData), SqlError> {
        let ops = &plan.ops;
        let mut data = AnalyzeData {
            node_rows: vec![(0, 0); ops.len()],
            stage_of: vec![None; ops.len()],
            rewrite_notes: notes.len(),
            stage_done_s: vec![0.0; ops.len()],
            pipeline_makespan_s: None,
        };
        let limit = plan.limit();
        let has_agg = ops
            .iter()
            .any(|op| matches!(op, LogicalOp::LlmAggregate { .. }));
        let n_llm_filters = ops
            .iter()
            .filter(|op| matches!(op, LogicalOp::LlmFilter { .. }))
            .count();
        // Lazy LIMIT applies when a limit exists, results stream row by row
        // (aggregation blocks), and stopping early actually saves LLM work.
        let lazy = self.opt.lazy_limit && limit.is_some() && !has_agg && plan.llm_ops() > 0;
        let adaptive = self.opt.adaptive;
        // Without a LIMIT there is nothing to stop early — but a statement
        // with several LLM filters still profits from *pilot batching*: run
        // the first batch under the static order, observe real pass rates,
        // and evaluate the remaining rows under the corrected order. Pilot
        // batching requires the answer cache: dedup groups only within one
        // batch, so without the cache, splitting a duplicate-heavy
        // statement into batches would re-issue each distinct prompt once
        // per batch instead of once per statement.
        let pilot =
            adaptive && self.opt.reorder && self.opt.answer_cache && !lazy && n_llm_filters >= 2;
        // Pipelined execution slices the statement into fixed micro-batches
        // and chains each batch's hand-off instant through the operator
        // stages on one shared timeline, so operator j prefills batch k+1
        // while operator j+1 decodes batch k (see [`crate::pipeline`]).
        let pipelined = self.opt.pipeline && plan.llm_ops() > 0;
        let batching = lazy || pilot || pipelined;

        // Model-tier cascade: decide per LLM operator whether the cascade
        // runs. In auto mode each operator is priced from its learned tier
        // posterior — expected cascade cost `cheap + esc_rate × expensive`
        // per row against the expensive tier alone — and the decision is
        // recorded as a runtime note; otherwise every operator cascades.
        let mut cascade_for: Vec<Option<CascadePlan>> = vec![None; ops.len()];
        if let Some(cc) = self.opt.cascade {
            for (idx, op) in ops.iter().enumerate() {
                let query = match op {
                    LogicalOp::LlmFilter { query, .. }
                    | LogicalOp::LlmProject { query, .. }
                    | LogicalOp::LlmAggregate { query, .. } => query,
                    _ => continue,
                };
                let post = self.tier_posterior(&cc, &query.name);
                if !cc.auto {
                    cascade_for[idx] = Some(cc.plan);
                    continue;
                }
                let est = match op {
                    LogicalOp::LlmFilter { est: Some(e), .. } => *e,
                    _ => estimate_llm_op(table, self.executor.tokenizer(), query, false),
                };
                let esc_rate = post.escalation_rate();
                let cascade_cost = cc.plan.expected_per_row_cost(
                    est.prompt_tokens_per_row,
                    est.output_tokens_per_row,
                    esc_rate,
                );
                let single_cost = cc
                    .plan
                    .single_tier_per_row_cost(est.prompt_tokens_per_row, est.output_tokens_per_row);
                let wins = cascade_cost < single_cost;
                if wins {
                    cascade_for[idx] = Some(cc.plan);
                }
                notes.push(format!(
                    "cascade pricing for {}: cascade ${cascade_cost:.6}/row \
                     (esc rate {esc_rate:.2}, {} obs) vs single-tier \
                     ${single_cost:.6}/row → {}",
                    query.name,
                    post.observations(),
                    if wins { "cascade" } else { "single tier" },
                ));
            }
        }

        // One stage engine and one accumulated outcome per LLM operator,
        // indexed by *plan* position — stable across adaptive re-ranking,
        // which permutes only the execution schedule below. Stages persist
        // across batches so later batches reuse the prefixes earlier ones
        // computed. Operators running a cascade get a second, expensive-tier
        // stage engine their escalated representatives replay on.
        let mut sessions: Vec<Option<StageEngine>> = (0..ops.len()).map(|_| None).collect();
        let mut esc_sessions: Vec<Option<StageEngine>> = (0..ops.len()).map(|_| None).collect();
        let mut outcomes: Vec<Option<StageOutcome>> = vec![None; ops.len()];

        // Leading cheap predicates narrow the candidate set before any
        // batching — with the reorder rule on, that is all of them.
        let mut candidates: Vec<usize> = (0..table.nrows()).collect();
        data.node_rows[0] = (candidates.len() as u64, candidates.len() as u64);
        let mut first_heavy = 1;
        while first_heavy < ops.len() {
            if let LogicalOp::SqlFilter { pred } = &ops[first_heavy] {
                let offered = candidates.len() as u64;
                candidates = filter_sql(table, &candidates, pred)?;
                data.node_rows[first_heavy] = (offered, candidates.len() as u64);
                first_heavy += 1;
            } else {
                break;
            }
        }

        // The execution schedule: remaining plan-op indices in execution
        // order. Adaptive re-ranking permutes the LlmFilter entries among
        // the slots they occupy; everything else stays put.
        let mut exec_order: Vec<usize> = (first_heavy..ops.len()).collect();

        // Seed the tracker with the optimizer's static priors: per LLM
        // filter, and their product as the pipeline prior for batch sizing.
        let mut tracker = SelectivityTracker::new(self.opt.adaptive_prior_strength);
        if adaptive {
            let mut pipeline_prior = 1.0;
            for (idx, op) in ops.iter().enumerate() {
                if let LogicalOp::LlmFilter { est, .. } = op {
                    let prior = est.map_or(0.5, |e| e.selectivity);
                    tracker.register(idx, prior);
                    pipeline_prior *= prior;
                }
            }
            tracker.register_pipeline(pipeline_prior);
        }

        // Emitted result rows: original index plus the LLM projection text
        // when the SELECT list is an LLM call.
        let mut emitted: Vec<(usize, Option<String>)> = Vec::new();
        let mut start = 0usize;
        let mut batch_no = 0u32;
        let mut batch_size = if lazy {
            self.opt.lazy_batch_min.max(limit.unwrap_or(0)).max(1)
        } else if pilot {
            self.opt.lazy_batch_min.max(1)
        } else if pipelined {
            self.opt.pipeline_batch_rows.max(1)
        } else {
            candidates.len()
        };
        // An already-satisfied limit (e.g. LIMIT 0) issues no batch at all.
        while start < candidates.len() && !(lazy && limit.is_some_and(|k| emitted.len() >= k)) {
            let end = if batching {
                (start + batch_size).min(candidates.len())
            } else {
                candidates.len()
            };
            let emitted_before = emitted.len();
            let mut rows: Vec<usize> = candidates[start..end].to_vec();
            // Pipelined hand-off chaining: each batch's rows exist at scan
            // time 0; every LLM operator fast-forwards to the instant the
            // previous operator released this batch (`ready`), and its own
            // stage clock serializes successive batches — producing the
            // staggered, overlapping schedule. The classic relay keeps each
            // stage on its independent zero-based timeline (`ready` unused).
            let mut ready = 0.0f64;
            for &idx in &exec_order {
                let node_offered = rows.len() as u64;
                match &ops[idx] {
                    LogicalOp::Scan { .. } => unreachable!("scan is always ops[0]"),
                    LogicalOp::SqlFilter { pred } => {
                        rows = filter_sql(table, &rows, pred)?;
                    }
                    LogicalOp::LlmFilter { query, negated, .. } => {
                        let out = self.run_stage_batch(
                            &mut sessions[idx],
                            &mut esc_sessions[idx],
                            table,
                            &rows,
                            query,
                            fds,
                            truth,
                            pipelined.then_some(ready),
                            cascade_for[idx],
                        )?;
                        if pipelined {
                            ready = sessions[idx].as_ref().map_or(ready, |s| s.clock());
                            data.stage_done_s[idx] = ready;
                        }
                        if cascade_for[idx].is_some() {
                            self.observe_tier(&query.name, &out.opt);
                        }
                        self.note_failed_rows(query, &out, &mut notes);
                        let label = query.predicate_label.as_deref().unwrap_or_else(|| {
                            unreachable!("filter queries carry a predicate label")
                        });
                        let offered = rows.len() as u64;
                        rows = out
                            .outputs
                            .iter()
                            .filter(|o| (o.text == label) != *negated)
                            .map(|o| o.row)
                            .collect();
                        if adaptive {
                            tracker.observe(idx, rows.len() as u64, offered);
                        }
                        accumulate(&mut outcomes[idx], out);
                    }
                    LogicalOp::LlmProject { query, .. } => {
                        let out = self.run_stage_batch(
                            &mut sessions[idx],
                            &mut esc_sessions[idx],
                            table,
                            &rows,
                            query,
                            fds,
                            truth,
                            pipelined.then_some(ready),
                            cascade_for[idx],
                        )?;
                        if pipelined {
                            ready = sessions[idx].as_ref().map_or(ready, |s| s.clock());
                            data.stage_done_s[idx] = ready;
                        }
                        if cascade_for[idx].is_some() {
                            self.observe_tier(&query.name, &out.opt);
                        }
                        self.note_failed_rows(query, &out, &mut notes);
                        for o in &out.outputs {
                            emitted.push((o.row, Some(o.text.clone())));
                        }
                        accumulate(&mut outcomes[idx], out);
                    }
                    LogicalOp::LlmAggregate { query, .. } => {
                        let out = self.run_stage_batch(
                            &mut sessions[idx],
                            &mut esc_sessions[idx],
                            table,
                            &rows,
                            query,
                            fds,
                            truth,
                            pipelined.then_some(ready),
                            cascade_for[idx],
                        )?;
                        if pipelined {
                            ready = sessions[idx].as_ref().map_or(ready, |s| s.clock());
                            data.stage_done_s[idx] = ready;
                        }
                        if cascade_for[idx].is_some() {
                            self.observe_tier(&query.name, &out.opt);
                        }
                        self.note_failed_rows(query, &out, &mut notes);
                        accumulate(&mut outcomes[idx], out);
                    }
                    LogicalOp::Project { .. } => {
                        emitted.extend(rows.iter().map(|&r| (r, None)));
                    }
                    LogicalOp::Limit { .. } => {}
                }
                data.node_rows[idx].0 += node_offered;
                data.node_rows[idx].1 += rows.len() as u64;
            }
            batch_no += 1;
            if adaptive {
                tracker.observe_pipeline(
                    (emitted.len() - emitted_before) as u64,
                    (end - start) as u64,
                );
            }
            start = end;
            if !batching {
                break;
            }
            // Mid-query re-ranking is the runtime refinement of the static
            // reorder rule — a config that disables reordering keeps the
            // written LLM-predicate order, adaptively sized batches or not.
            if adaptive && self.opt.reorder && start < candidates.len() {
                self.rerank_schedule(
                    ops,
                    &tracker,
                    &mut exec_order,
                    &mut outcomes,
                    batch_no,
                    &mut notes,
                    &cascade_for,
                    &sessions,
                );
            }
            // Size the next batch: aim at the limit through the observed
            // pipeline selectivity, falling back to doubling until the
            // pipeline has data (and always, when adaptivity is off).
            let aimed = if lazy && adaptive {
                let remaining = limit
                    .unwrap_or_else(|| unreachable!("lazy requires a limit"))
                    .saturating_sub(emitted.len());
                tracker.next_batch_size(
                    remaining,
                    self.opt.lazy_batch_min,
                    candidates.len() - start,
                )
            } else {
                None
            };
            match aimed {
                Some(n) => {
                    if n != batch_size {
                        notes.push(format!(
                            "adaptive batch sizing after batch {batch_no}: {n} rows \
                             (pipeline selectivity {:.3})",
                            tracker.pipeline_selectivity().unwrap_or(0.0),
                        ));
                        if llmqo_obs::enabled() {
                            llmqo_obs::registry()
                                .counter("sql.adaptive_batch_resizes")
                                .inc();
                        }
                    }
                    batch_size = n;
                }
                // Lazy/pilot batches double until the tracker has data;
                // pure pipelined execution keeps its fixed micro-batch so
                // the stages stay overlapped end to end.
                None if pipelined && !lazy && !pilot => {}
                None => batch_size *= 2,
            }
        }

        // LIMIT-early-stop savings: candidates the scan never reached are
        // attributed to the first LLM operator in final execution order, so
        // `rows_in + rows_skipped` reconciles with full materialization.
        if start < candidates.len() {
            let skipped = (candidates.len() - start) as u64;
            if let Some(&idx) = exec_order.iter().find(|&&i| {
                matches!(
                    ops[i],
                    LogicalOp::LlmFilter { .. }
                        | LogicalOp::LlmProject { .. }
                        | LogicalOp::LlmAggregate { .. }
                )
            }) {
                outcomes[idx]
                    .get_or_insert_with(StageOutcome::default)
                    .opt
                    .rows_skipped += skipped;
            }
        }

        // Statement makespan under pipelined execution: all stages share
        // one timeline, so the statement is done when the slowest stage is.
        if pipelined {
            let makespan = sessions
                .iter()
                .flatten()
                .chain(esc_sessions.iter().flatten())
                .map(StageEngine::clock)
                .fold(0.0, f64::max);
            data.pipeline_makespan_s = Some(makespan);
            let replicas = sessions
                .iter()
                .flatten()
                .map(StageEngine::replicas)
                .max()
                .unwrap_or(1);
            notes.push(format!(
                "pipelined execution: {batch_no} micro-batch(es), {replicas} \
                 replica(s) per stage, statement makespan {makespan:.2}s",
            ));
        }

        // Finalize per-operator stages in final execution order.
        let mut stages = Vec::new();
        let mut aggregate = None;
        for &idx in &exec_order {
            let query = match &ops[idx] {
                LogicalOp::LlmFilter { query, .. }
                | LogicalOp::LlmProject { query, .. }
                | LogicalOp::LlmAggregate { query, .. } => query,
                _ => continue,
            };
            let outcome = outcomes[idx].take().unwrap_or_default();
            let engine = sessions[idx]
                .take()
                .map(StageEngine::finish)
                .unwrap_or_default();
            // The expensive tier's serving volume is already in the tier
            // fields of the outcome's `OptStats`; the stage report's engine
            // section covers the cheap tier (the session every row ran on).
            if let Some(esc) = esc_sessions[idx].take() {
                esc.finish();
            }
            let stage = outcome.into_query_output(query, self.reorderer.name(), engine);
            if matches!(ops[idx], LogicalOp::LlmAggregate { .. }) {
                aggregate = stage.aggregate;
            }
            data.stage_of[idx] = Some(stages.len());
            stages.push(stage);
        }

        // Materialize the SELECT list.
        let (columns, mut rows) = match ops
            .iter()
            .find(|op| {
                matches!(
                    op,
                    LogicalOp::Project { .. }
                        | LogicalOp::LlmProject { .. }
                        | LogicalOp::LlmAggregate { .. }
                )
            })
            .unwrap_or_else(|| unreachable!("plans always carry a projection operator"))
        {
            LogicalOp::Project { columns } => {
                let idxs = table
                    .resolve_columns(columns)
                    .map_err(|e| SqlError::Exec(ExecError::Table(e)))?;
                let rows: Vec<Vec<String>> = emitted
                    .iter()
                    .map(|&(r, _)| {
                        idxs.iter()
                            .map(|&c| table.value(r, c).to_string())
                            .collect()
                    })
                    .collect();
                (columns.clone(), rows)
            }
            LogicalOp::LlmProject { alias, .. } => (
                vec![alias.clone()],
                emitted
                    .iter()
                    .map(|(_, text)| {
                        vec![text
                            .clone()
                            .unwrap_or_else(|| unreachable!("LLM projection emits text"))]
                    })
                    .collect(),
            ),
            LogicalOp::LlmAggregate { alias, .. } => (
                vec![alias.clone()],
                vec![vec![aggregate.map_or("null".into(), |a| format!("{a:.3}"))]],
            ),
            _ => unreachable!("find matched projection operators only"),
        };
        let before_limit = rows.len() as u64;
        if let Some(n) = limit {
            rows.truncate(n);
        }
        // The Limit node's true in/out is the materialized row count before
        // and after truncation, not the pass-through counts the batch loop
        // accumulated for it.
        if let Some(pos) = ops
            .iter()
            .position(|op| matches!(op, LogicalOp::Limit { .. }))
        {
            data.node_rows[pos] = (before_limit, rows.len() as u64);
        }
        Ok((
            SqlResult {
                columns,
                rows,
                aggregate,
                stages,
                notes,
            },
            data,
        ))
    }

    /// Re-runs the cost/(1−selectivity) ranking over the schedule's LLM
    /// filters with posterior selectivities, permuting them among the slots
    /// they occupy when the observed order diverges from the current one.
    /// Sorting is stable, so equal-rank filters keep their position; each
    /// moved operator's [`OptStats::reranks`](crate::OptStats) is bumped
    /// and a human-readable note records the event.
    ///
    /// With a cascade configured, each operator's dollar rank is folded
    /// with what execution has actually shown: the cascade's expected
    /// cost ratio (posterior escalation rate), the *observed* dedup factor
    /// (issued requests per offered row — duplicate-heavy operators are
    /// cheaper per row than their estimate), and the operator's simulated
    /// step-time weighted at [`CascadeConfig::time_weight`] dollars per
    /// second — the $-cost/JCT pareto knob. With `cascade: None` the rank
    /// is the pure-dollar PR-5 rule, unchanged.
    #[allow(clippy::too_many_arguments)]
    fn rerank_schedule(
        &self,
        ops: &[LogicalOp],
        tracker: &SelectivityTracker,
        exec_order: &mut [usize],
        outcomes: &mut [Option<StageOutcome>],
        batch_no: u32,
        notes: &mut Vec<String>,
        cascade_for: &[Option<CascadePlan>],
        sessions: &[Option<StageEngine>],
    ) {
        let slots: Vec<usize> = (0..exec_order.len())
            .filter(|&s| matches!(ops[exec_order[s]], LogicalOp::LlmFilter { .. }))
            .collect();
        if slots.len() < 2 {
            return;
        }
        // (rank multiplier, additive time term) per plan op — identity
        // unless a cascade is configured.
        let mut adjust: Vec<(f64, f64)> = vec![(1.0, 0.0); ops.len()];
        if let Some(cc) = self.opt.cascade {
            for &s in &slots {
                let idx = exec_order[s];
                let LogicalOp::LlmFilter {
                    est: Some(e),
                    query,
                    ..
                } = &ops[idx]
                else {
                    continue;
                };
                let mut factor = 1.0;
                if cascade_for[idx].is_some() {
                    let single = cc
                        .plan
                        .single_tier_per_row_cost(e.prompt_tokens_per_row, e.output_tokens_per_row);
                    if single > 0.0 {
                        let esc_rate = self
                            .tier_posteriors
                            .borrow()
                            .get(&query.name)
                            .map_or(cc.plan.escalate_below, TierPosterior::escalation_rate);
                        factor *= cc.plan.expected_per_row_cost(
                            e.prompt_tokens_per_row,
                            e.output_tokens_per_row,
                            esc_rate,
                        ) / single;
                    }
                }
                let mut time_term = 0.0;
                if let Some(o) = &outcomes[idx] {
                    let offered = o.opt.rows_in.saturating_sub(o.opt.cache_hits).max(1);
                    factor *= o.opt.llm_calls as f64 / offered as f64;
                    if cc.time_weight > 0.0 {
                        if let Some(sess) = &sessions[idx] {
                            time_term = cc.time_weight * sess.clock() / o.opt.rows_in.max(1) as f64;
                        }
                    }
                }
                adjust[idx] = (factor, time_term);
            }
        }
        let rank_of = |idx: usize| -> f64 {
            match &ops[idx] {
                LogicalOp::LlmFilter { est, .. } => {
                    let posterior = tracker.selectivity(idx);
                    let base = match (est, posterior) {
                        (Some(e), Some(s)) => e.with_selectivity(s).rank(&self.pricing),
                        (Some(e), None) => e.rank(&self.pricing),
                        (None, _) => return f64::INFINITY,
                    };
                    base * adjust[idx].0 + adjust[idx].1
                }
                _ => unreachable!("slots hold LLM filters only"),
            }
        };
        let mut ranked: Vec<usize> = slots.iter().map(|&s| exec_order[s]).collect();
        ranked.sort_by(|&a, &b| rank_of(a).total_cmp(&rank_of(b)));
        let current: Vec<usize> = slots.iter().map(|&s| exec_order[s]).collect();
        if ranked == current {
            return;
        }
        let describe = |order: &[usize]| -> String {
            order
                .iter()
                .map(|&idx| match &ops[idx] {
                    LogicalOp::LlmFilter { query, .. } => format!(
                        "{} (sel {:.2})",
                        query.name,
                        tracker.selectivity(idx).unwrap_or(f64::NAN)
                    ),
                    _ => unreachable!("slots hold LLM filters only"),
                })
                .collect::<Vec<_>>()
                .join("; ")
        };
        notes.push(format!(
            "adaptive re-rank after batch {batch_no}: [{}] → [{}]",
            describe(&current),
            describe(&ranked),
        ));
        if llmqo_obs::enabled() {
            llmqo_obs::registry().counter("sql.adaptive_reranks").inc();
        }
        for (&slot, &idx) in slots.iter().zip(&ranked) {
            if exec_order[slot] != idx {
                outcomes[idx]
                    .get_or_insert_with(StageOutcome::default)
                    .opt
                    .reranks += 1;
            }
            exec_order[slot] = idx;
        }
    }

    /// Appends the partial-result degradation note for one operator batch:
    /// which original rows exhausted the fault retry budget and were
    /// excluded. Rendered verbatim as a `-- runtime:` line by
    /// `EXPLAIN ANALYZE`.
    fn note_failed_rows(&self, query: &LlmQuery, out: &StageOutcome, notes: &mut Vec<String>) {
        if out.failed_rows.is_empty() {
            return;
        }
        let budget = self.opt.faults.map_or(1, |f| f.max_attempts.max(1));
        notes.push(format!(
            "degraded {}: rows {:?} failed after {budget} attempt(s) each; \
             excluded from results (partial-result mode)",
            query.name, out.failed_rows,
        ));
        if llmqo_obs::enabled() {
            llmqo_obs::registry()
                .counter("sql.rows_failed")
                .add(out.failed_rows.len() as u64);
        }
    }

    /// Runs one LLM operator over one batch of rows, opening the operator's
    /// stage engine on first use (a replica group when pipelined fan-out is
    /// configured, a single session otherwise). `ready` is the shared-
    /// timeline instant the batch became available — `Some` only under
    /// pipelined execution, where idle stages fast-forward to it before
    /// running. When `cascade` is set, an escalation stage engine is opened
    /// alongside the cheap-tier session (same replica fan-out) and rows
    /// whose cheap-tier confidence falls below the threshold replay there.
    #[allow(clippy::too_many_arguments)]
    fn run_stage_batch(
        &self,
        session: &mut Option<StageEngine>,
        esc_session: &mut Option<StageEngine>,
        table: &Table,
        rows: &[usize],
        query: &LlmQuery,
        fds: &FunctionalDeps,
        truth: &dyn Fn(usize) -> String,
        ready: Option<f64>,
        cascade: Option<CascadePlan>,
    ) -> Result<StageOutcome, SqlError> {
        let replicas = if self.opt.pipeline {
            self.opt.pipeline_replicas.max(1)
        } else {
            1
        };
        if session.is_none() {
            *session = Some(
                StageEngine::open(self.executor.engine(), replicas).map_err(ExecError::Engine)?,
            );
        }
        if cascade.is_some() && esc_session.is_none() {
            *esc_session = Some(
                StageEngine::open(self.executor.engine(), replicas).map_err(ExecError::Engine)?,
            );
        }
        let session = match session.as_mut() {
            Some(s) => s,
            None => unreachable!("session created above"),
        };
        if let Some(t) = ready {
            session.advance_to(t);
        }
        let started_s = session.clock();
        let out = self.executor.run_llm_rows(
            session,
            esc_session.as_mut(),
            table,
            rows,
            query,
            self.reorderer,
            fds,
            truth,
            ExecOptions {
                dedup: self.opt.dedup,
                answer_cache: self.opt.answer_cache,
                faults: self.opt.faults,
                cascade,
            },
        )?;
        if llmqo_obs::enabled() {
            // Executor phase span on the SQL lane: one span per operator
            // batch, on the operator's own session timeline.
            llmqo_obs::tracer().complete(
                0,
                0,
                &format!("op.{}", query.name),
                "executor",
                started_s,
                session.clock() - started_s,
                &[
                    ("rows", llmqo_obs::ArgValue::from(rows.len())),
                    ("llm_calls", llmqo_obs::ArgValue::from(out.opt.llm_calls)),
                ],
            );
            llmqo_obs::registry().counter("sql.stage_batches").inc();
            llmqo_obs::registry()
                .counter("sql.llm_calls")
                .add(out.opt.llm_calls);
            if out.opt.rows_cheap + out.opt.rows_escalated > 0 {
                llmqo_obs::registry()
                    .counter("sql.cascade_rows_cheap")
                    .add(out.opt.rows_cheap);
                llmqo_obs::registry()
                    .counter("sql.cascade_rows_escalated")
                    .add(out.opt.rows_escalated);
            }
        }
        Ok(out)
    }
}

fn on_off(flag: bool) -> &'static str {
    if flag {
        "on"
    } else {
        "off"
    }
}

/// Applies a cheap predicate to a row set, preserving order.
fn filter_sql(table: &Table, rows: &[usize], pred: &SqlPredicate) -> Result<Vec<usize>, SqlError> {
    let col = table.schema().index_of(&pred.column).ok_or_else(|| {
        SqlError::Exec(ExecError::Table(TableError::UnknownColumn {
            name: pred.column.clone(),
        }))
    })?;
    Ok(rows
        .iter()
        .copied()
        .filter(|&r| pred.eval(table.value(r, col)))
        .collect())
}

/// Folds a batch outcome into an operator's accumulator.
fn accumulate(slot: &mut Option<StageOutcome>, out: StageOutcome) {
    match slot {
        Some(acc) => acc.absorb(out),
        None => *slot = Some(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use llmqo_core::Ggr;
    use llmqo_serve::{
        Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
    };
    use llmqo_tokenizer::Tokenizer;

    #[test]
    fn parses_filter_statement() {
        let stmt = parse_sql(
            "SELECT movietitle FROM movies \
             WHERE LLM('kids?', movieinfo, reviewcontent) = 'Yes'",
        )
        .unwrap();
        assert_eq!(stmt.table, "movies");
        assert_eq!(
            stmt.projection,
            Projection::Columns(vec!["movietitle".into()])
        );
        assert!(!stmt.explain);
        match &stmt.where_clause[..] {
            [WhereConjunct::Llm {
                call,
                label,
                negated,
            }] => {
                assert_eq!(call.prompt, "kids?");
                assert_eq!(call.fields, vec!["movieinfo", "reviewcontent"]);
                assert_eq!(label, "Yes");
                assert!(!negated);
            }
            other => panic!("unexpected where clause {other:?}"),
        }
    }

    #[test]
    fn parses_projection_with_star_and_alias() {
        let stmt = parse_sql("SELECT LLM('Summarize: ', pr.*) AS summary FROM pr").unwrap();
        match stmt.projection {
            Projection::Llm { call, alias } => {
                assert!(call.star);
                assert_eq!(alias.as_deref(), Some("summary"));
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn parses_aggregation() {
        let stmt =
            parse_sql("SELECT AVG(LLM('Rate 1-5', reviewcontent)) AS score FROM movies").unwrap();
        assert!(matches!(stmt.projection, Projection::AvgLlm { .. }));
    }

    #[test]
    fn parses_negated_predicate_and_limit() {
        let stmt =
            parse_sql("SELECT * FROM t WHERE LLM('sentiment', review) <> 'NEGATIVE' LIMIT 5")
                .unwrap();
        assert!(matches!(
            stmt.where_clause[0],
            WhereConjunct::Llm { negated: true, .. }
        ));
        assert_eq!(stmt.limit, Some(5));
    }

    #[test]
    fn parses_conjunctions_of_sql_and_llm_predicates() {
        let stmt = parse_sql(
            "SELECT a FROM t WHERE LLM('x?', a) = 'Yes' AND b = 'k' \
             AND score >= 3.5 AND LLM('y?', b) <> 'No' AND n < 10",
        )
        .unwrap();
        assert_eq!(stmt.where_clause.len(), 5);
        assert!(matches!(
            &stmt.where_clause[1],
            WhereConjunct::Sql(SqlPredicate { column, op: CmpOp::Eq, literal })
                if column == "b" && literal == "k"
        ));
        assert!(matches!(
            &stmt.where_clause[2],
            WhereConjunct::Sql(SqlPredicate { op: CmpOp::Ge, literal, .. }) if literal == "3.5"
        ));
        assert!(matches!(
            &stmt.where_clause[3],
            WhereConjunct::Llm { negated: true, .. }
        ));
        assert!(matches!(
            &stmt.where_clause[4],
            WhereConjunct::Sql(SqlPredicate { op: CmpOp::Lt, .. })
        ));
    }

    #[test]
    fn parses_explain_prefix() {
        let stmt = parse_sql("EXPLAIN SELECT a FROM t LIMIT 2").unwrap();
        assert!(stmt.explain);
        assert_eq!(stmt.limit, Some(2));
    }

    #[test]
    fn string_escapes_and_case_insensitive_keywords() {
        let stmt = parse_sql("select llm('it''s fine', a) from t").unwrap();
        match stmt.projection {
            Projection::Llm { call, .. } => assert_eq!(call.prompt, "it's fine"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qualified_field_names_are_stripped() {
        let stmt = parse_sql("SELECT LLM('x', r.review, p.title) FROM rp").unwrap();
        match stmt.projection {
            Projection::Llm { call, .. } => {
                assert_eq!(call.fields, vec!["review", "title"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse_sql("SELECT FROM t").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        assert!(!err.to_string().is_empty());
        assert!(parse_sql("SELECT a FROM t WHERE LLM('x' a) = 'Y'").is_err());
        assert!(parse_sql("SELECT a FROM t trailing garbage = ").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE LLM('unterminated) = 'Y'").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE b = ").is_err());
        assert!(parse_sql("SELECT a FROM t LIMIT 3.5").is_err());
    }

    fn fixture() -> (Table, FunctionalDeps) {
        let mut t = Table::new(Schema::of_strings(&["review", "product"]));
        for i in 0..30 {
            t.push_row(vec![
                format!("review {i} with details").into(),
                format!("product {}", i / 10).into(),
            ])
            .unwrap();
        }
        (t, FunctionalDeps::empty(2))
    }

    fn engine() -> SimEngine {
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        )
    }

    #[test]
    fn runs_filter_statement_end_to_end() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("tickets", &table, &fds);
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let res = runner
            .run(
                "SELECT review FROM tickets WHERE LLM('good?', review, product) = 'Yes'",
                &truth,
            )
            .unwrap();
        assert_eq!(res.columns, vec!["review"]);
        assert_eq!(res.rows.len(), 15);
        assert!(res.rows[0][0].starts_with("review 0"));
        assert_eq!(res.stages.len(), 1);
    }

    #[test]
    fn runs_projection_over_filtered_rows() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        // Oracle truth: filter keeps rows < 10; projection echoes summaries.
        let truth = |row: usize| {
            if row < 10 {
                "Yes".to_string()
            } else {
                "No".to_string()
            }
        };
        let res = runner
            .run(
                "SELECT LLM('summarize', review, product) AS s FROM t \
                 WHERE LLM('keep?', review) = 'Yes'",
                &truth,
            )
            .unwrap();
        // Stage 2 ran over the 10 selected rows; truths are "Yes" because
        // the oracle echoes the (filter-style) truth function.
        assert_eq!(res.columns, vec!["s"]);
        assert_eq!(res.rows.len(), 10);
        assert_eq!(res.stages.len(), 2);
    }

    #[test]
    fn runs_aggregation() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |row: usize| ((row % 5) + 1).to_string();
        let res = runner
            .run(
                "SELECT AVG(LLM('rate', review, product)) AS score FROM t",
                &truth,
            )
            .unwrap();
        assert_eq!(res.aggregate, Some(3.0));
        assert_eq!(res.rows, vec![vec!["3.000".to_string()]]);
    }

    #[test]
    fn aggregation_respects_where_clause() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |row: usize| ((row % 5) + 1).to_string();
        let res = runner
            .run(
                "SELECT AVG(LLM('rate', review)) AS score FROM t \
                 WHERE product = 'product 0'",
                &truth,
            )
            .unwrap();
        // Rows 0..10 → truths 1,2,3,4,5,1,2,3,4,5 → average 3.
        assert_eq!(res.aggregate, Some(3.0));
        assert_eq!(res.stages.len(), 1);
        assert_eq!(res.stages[0].report.opt.rows_in, 10);
    }

    #[test]
    fn negated_filter_complements() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |row: usize| if row < 12 { "Yes".into() } else { "No".into() };
        let res = runner
            .run(
                "SELECT review FROM t WHERE LLM('keep?', review) <> 'Yes'",
                &truth,
            )
            .unwrap();
        assert_eq!(res.rows.len(), 18);
    }

    #[test]
    fn limit_truncates() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |_: usize| "Yes".to_string();
        let res = runner.run("SELECT * FROM t LIMIT 3", &truth).unwrap();
        assert_eq!(res.rows.len(), 3);
        assert_eq!(res.columns.len(), 2);
    }

    #[test]
    fn unknown_table_is_reported() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |_: usize| String::new();
        assert!(matches!(
            runner.run("SELECT a FROM missing", &truth),
            Err(SqlError::UnknownTable { .. })
        ));
    }

    #[test]
    fn unknown_predicate_column_is_reported() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |_: usize| String::new();
        assert!(matches!(
            runner.run("SELECT review FROM t WHERE nope = 'x'", &truth),
            Err(SqlError::Exec(ExecError::Table(
                TableError::UnknownColumn { .. }
            )))
        ));
    }

    #[test]
    fn sql_predicates_run_before_llm_filters() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        // Written with the LLM predicate first: the optimizer must still
        // evaluate the cheap predicate first, so the LLM stage sees only the
        // 10 'product 1' rows.
        let sql = "SELECT review FROM t \
                   WHERE LLM('good?', review) = 'Yes' AND product = 'product 1'";
        let run_with = |opt: OptimizerConfig| {
            let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
            runner.register("t", &table, &fds);
            runner.run(sql, &truth).unwrap()
        };
        let optimized = run_with(OptimizerConfig::all());
        let oracle = run_with(OptimizerConfig::none());
        assert_eq!(
            optimized.rows, oracle.rows,
            "pushdown must not change results"
        );
        assert_eq!(optimized.rows.len(), 5);
        assert_eq!(optimized.stages[0].report.opt.rows_in, 10, "pushed down");
        assert_eq!(oracle.stages[0].report.opt.rows_in, 30, "written order");
    }

    #[test]
    fn llm_filters_are_ordered_by_estimated_rank() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |_: usize| "Yes".to_string();
        // Same selectivity prior (Yes/No); the product-only call serializes
        // fewer tokens per row, so it must run first despite being written
        // second.
        let res = runner
            .run(
                "SELECT review FROM t \
                 WHERE LLM('long review check?', review, product) = 'Yes' \
                 AND LLM('short?', product) = 'Yes'",
                &truth,
            )
            .unwrap();
        assert_eq!(res.stages.len(), 2);
        assert_eq!(res.stages[0].report.query, "sql-where-t-2", "cheap first");
        assert_eq!(res.stages[1].report.query, "sql-where-t");
        // Both filters pass everything under this truth; results are all rows.
        assert_eq!(res.rows.len(), 30);
    }

    #[test]
    fn dedup_shares_engine_requests_for_duplicate_rows() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let truth = |row: usize| if row < 15 { "Yes".into() } else { "No".into() };
        // Filter over `product` only: 3 distinct values across 30 rows.
        let sql = "SELECT review FROM t WHERE LLM('cheap?', product) = 'Yes'";
        let run_with = |opt: OptimizerConfig| {
            let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
            runner.register("t", &table, &fds);
            runner.run(sql, &truth).unwrap()
        };
        let optimized = run_with(OptimizerConfig::all());
        let oracle = run_with(OptimizerConfig::none());
        assert_eq!(optimized.rows, oracle.rows, "dedup must not change results");
        let opt = optimized.stages[0].report.opt;
        assert_eq!(opt.llm_calls, 3, "one request per distinct product");
        assert_eq!(opt.rows_deduped, 27);
        assert!(opt.prefill_tokens_saved > 0);
        assert_eq!(oracle.stages[0].report.opt.llm_calls, 30);
        assert_eq!(optimized.stages[0].report.engine.completed, 3);
    }

    #[test]
    fn lazy_limit_issues_fewer_engine_requests() {
        let mut t = Table::new(Schema::of_strings(&["review"]));
        for i in 0..200 {
            t.push_row(vec![format!("review number {i} body").into()])
                .unwrap();
        }
        let fds = FunctionalDeps::empty(1);
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let sql = "SELECT review FROM t WHERE LLM('keep?', review) = 'Yes' LIMIT 3";
        let run_with = |opt: OptimizerConfig| {
            let mut runner = SqlRunner::new(&executor, &solver).with_optimizer(opt);
            runner.register("t", &t, &fds);
            runner.run(sql, &truth).unwrap()
        };
        let optimized = run_with(OptimizerConfig::all());
        let oracle = run_with(OptimizerConfig::none());
        assert_eq!(
            optimized.rows, oracle.rows,
            "lazy LIMIT must not change results"
        );
        assert_eq!(optimized.rows.len(), 3);
        let (lazy, full) = (optimized.stages[0].report.opt, oracle.stages[0].report.opt);
        assert_eq!(full.llm_calls, 200, "oracle materializes everything");
        assert!(
            lazy.llm_calls < full.llm_calls,
            "lazy {} should be < full {}",
            lazy.llm_calls,
            full.llm_calls
        );
        assert!(lazy.batches >= 1);
    }

    #[test]
    fn lazy_limit_zero_issues_no_requests() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |_: usize| "Yes".to_string();
        let res = runner
            .run(
                "SELECT review FROM t WHERE LLM('keep?', review) = 'Yes' LIMIT 0",
                &truth,
            )
            .unwrap();
        assert!(res.rows.is_empty());
        assert_eq!(res.stages.len(), 1);
        assert_eq!(res.stages[0].report.opt.llm_calls, 0);
        assert_eq!(res.stages[0].report.engine.completed, 0);
    }

    #[test]
    fn explain_renders_optimized_plan() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let text = runner
            .explain(
                "SELECT review FROM t \
                 WHERE LLM('good?', review) = 'Yes' AND product = 'product 2' LIMIT 4",
            )
            .unwrap();
        let sql_pos = text.find("SqlFilter product = 'product 2'").unwrap();
        let llm_pos = text.find("LlmFilter sql-where-t").unwrap();
        assert!(
            llm_pos < sql_pos,
            "SQL predicate renders below the LLM op:\n{text}"
        );
        assert!(text.contains("Limit 4"));
        assert!(text.contains("Scan t"));
        assert!(text.contains("-- optimizer: dedup on, reorder on, lazy limit on"));
        assert!(text.contains("-- rewrite: reordered WHERE"));
        // The EXPLAIN statement form returns the same text as rows.
        let truth = |_: usize| String::new();
        let res = runner
            .run(
                "EXPLAIN SELECT review FROM t WHERE LLM('good?', review) = 'Yes'",
                &truth,
            )
            .unwrap();
        assert_eq!(res.columns, vec!["plan"]);
        assert!(res.stages.is_empty());
        assert!(res.rows.iter().any(|r| r[0].contains("Scan t")));
    }

    #[test]
    fn parses_explain_analyze_prefix() {
        let stmt = parse_sql("EXPLAIN ANALYZE SELECT review FROM t LIMIT 2").unwrap();
        assert!(stmt.explain);
        assert!(stmt.analyze);
        let plain = parse_sql("EXPLAIN SELECT review FROM t LIMIT 2").unwrap();
        assert!(plain.explain);
        assert!(!plain.analyze);
        // ANALYZE without EXPLAIN is just an unexpected keyword.
        assert!(parse_sql("ANALYZE SELECT review FROM t").is_err());
    }

    #[test]
    fn explain_analyze_reports_measured_stats() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let res = runner
            .run(
                "EXPLAIN ANALYZE SELECT review FROM t \
                 WHERE LLM('good?', review) = 'Yes' AND product = 'product 1' LIMIT 4",
                &truth,
            )
            .unwrap();
        assert_eq!(res.columns, vec!["plan"]);
        let text: String = res
            .rows
            .iter()
            .map(|r| r[0].as_str())
            .collect::<Vec<_>>()
            .join("\n");
        // Exact per-node row accounting: 30 scanned, the cheap predicate
        // keeps product-1's ten rows, the LLM filter passes the even half.
        assert!(text.contains("Scan t  (rows 30)"), "{text}");
        assert!(
            text.contains("SqlFilter product = 'product 1'  (rows 30 → 10)"),
            "{text}"
        );
        let llm_line = res
            .rows
            .iter()
            .map(|r| r[0].as_str())
            .find(|l| l.contains("LlmFilter"))
            .expect("LLM filter line");
        for field in [
            "llm calls",
            "dedup saved",
            "cache saved",
            "re-ranks",
            "skipped",
            "sim ",
        ] {
            assert!(llm_line.contains(field), "missing `{field}` in {llm_line}");
        }
        // The Limit node reports materialized rows before → after truncation.
        let limit_line = res
            .rows
            .iter()
            .map(|r| r[0].as_str())
            .find(|l| l.contains("Limit 4"))
            .expect("limit line");
        assert!(limit_line.ends_with("→ 4)"), "{limit_line}");
        assert!(text.contains("-- optimizer: dedup on, reorder on, lazy limit on"));
        assert!(text.contains("-- rewrite: reordered WHERE"));
        // Unlike plain EXPLAIN, the statement really executed.
        assert_eq!(res.stages.len(), 1);
        assert!(res.stages[0].report.opt.llm_calls > 0);
        assert!(res.stages[0].report.engine.job_completion_time_s > 0.0);
    }

    /// Golden footer contract: `SqlResult::notes` adaptive events render in
    /// `EXPLAIN ANALYZE` output in schedule order with stable wording —
    /// `-- rewrite:` lines first (static optimizer), then one `-- runtime:`
    /// line per runtime note, verbatim and in the order they fired.
    #[test]
    fn explain_analyze_runtime_notes_follow_schedule_order() {
        let mut table = Table::new(Schema::of_strings(&["review", "note"]));
        for i in 0..400 {
            table
                .push_row(vec![
                    format!("a longer review body with several unique words number {i}").into(),
                    format!("note {i}").into(),
                ])
                .unwrap();
        }
        let fds = FunctionalDeps::empty(2);
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        // Skewed truth flips the pilot order mid-query (see the adaptive
        // differential suite), so runtime notes are guaranteed to fire.
        let truth = |row: usize| {
            if row.is_multiple_of(20) {
                "Yes".to_string()
            } else {
                "No".to_string()
            }
        };
        let res = runner
            .run(
                "EXPLAIN ANALYZE SELECT note FROM t \
                 WHERE LLM('is the note recent?', note) <> 'Yes' \
                 AND LLM('is the review glowing?', review) = 'Yes'",
                &truth,
            )
            .unwrap();
        let lines: Vec<&str> = res.rows.iter().map(|r| r[0].as_str()).collect();
        let runtime_lines: Vec<&str> = lines
            .iter()
            .copied()
            .filter(|l| l.starts_with("-- runtime: "))
            .collect();
        assert!(
            runtime_lines
                .iter()
                .any(|l| l.starts_with("-- runtime: adaptive re-rank after batch ")),
            "expected a re-rank runtime note, got: {lines:?}"
        );
        // Every runtime note appears exactly once, verbatim, in schedule
        // order (`res.notes` order, after the rewrite prefix).
        let runtime_notes: Vec<&str> = res
            .notes
            .iter()
            .map(String::as_str)
            .filter(|n| n.starts_with("adaptive"))
            .collect();
        assert_eq!(
            runtime_lines,
            runtime_notes
                .iter()
                .map(|n| format!("-- runtime: {n}"))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
            "runtime footer must mirror notes in schedule order"
        );
        // Rewrite lines all precede runtime lines.
        let last_rewrite = lines
            .iter()
            .rposition(|l| l.starts_with("-- rewrite: "))
            .unwrap_or(0);
        let first_runtime = lines
            .iter()
            .position(|l| l.starts_with("-- runtime: "))
            .expect("runtime notes present");
        assert!(last_rewrite < first_runtime, "{lines:?}");
    }
}
