//! A SQL front-end for LLM queries — the interface the paper's §1 examples
//! are written in:
//!
//! ```sql
//! SELECT movietitle FROM movies
//! WHERE LLM('Is this movie suitable for kids? Answer Yes or No.',
//!           movieinfo, reviewcontent, movietitle) = 'Yes'
//! ```
//!
//! The dialect covers exactly what the paper's workloads need: `LLM(...)`
//! calls in the projection (T2), in the `WHERE` clause (T1), both at once
//! (T3 multi-invocation), and inside `AVG(...)` (T4). Statements compile to
//! [`LlmQuery`] plans and run through [`SqlRunner`] with any
//! [`Reorderer`] — so an analyst's query string goes through the same
//! reorder-then-serve pipeline as the programmatic API.

use crate::exec::{ExecError, QueryExecutor, QueryOutput};
use crate::query::LlmQuery;
use crate::table::Table;
use llmqo_core::{FunctionalDeps, Reorderer};
use std::collections::HashMap;
use std::fmt;

/// Errors from parsing or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// The statement did not lex/parse.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// The referenced table is not registered.
    UnknownTable {
        /// The missing table name.
        name: String,
    },
    /// Execution failed downstream.
    Exec(ExecError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SqlError::UnknownTable { name } => write!(f, "unknown table {name}"),
            SqlError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ExecError> for SqlError {
    fn from(e: ExecError) -> Self {
        SqlError::Exec(e)
    }
}

/// One `LLM('prompt', field, …)` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlmCall {
    /// The instruction text.
    pub prompt: String,
    /// Referenced fields; `*` expands to the table's full schema.
    pub fields: Vec<String>,
    /// Whether `*` was used.
    pub star: bool,
}

/// What the SELECT list asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    /// Plain columns only.
    Columns(Vec<String>),
    /// A projection LLM call (optionally aliased).
    Llm {
        /// The call.
        call: LlmCall,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// `AVG(LLM(...))` aggregation.
    AvgLlm {
        /// The call.
        call: LlmCall,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlStatement {
    /// The SELECT list.
    pub projection: Projection,
    /// Source table name.
    pub table: String,
    /// `WHERE LLM(...) = 'label'` predicate, with the comparison label and
    /// whether the comparison is negated (`<>`).
    pub filter: Option<(LlmCall, String, bool)>,
    /// Optional `LIMIT n`.
    pub limit: Option<usize>,
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    Number(usize),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Neq,
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '*' => {
                out.push((Tok::Star, i));
                i += 1;
            }
            '=' => {
                out.push((Tok::Eq, i));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Neq, i));
                    i += 2;
                } else {
                    return Err(SqlError::Parse {
                        message: "expected '<>'".into(),
                        offset: i,
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => break,
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                        None => {
                            return Err(SqlError::Parse {
                                message: "unterminated string literal".into(),
                                offset: i,
                            })
                        }
                    }
                }
                out.push((Tok::Str(s), i));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: usize = input[start..i].parse().map_err(|_| SqlError::Parse {
                    message: "number out of range".into(),
                    offset: start,
                })?;
                out.push((Tok::Number(n), start));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' || ch == '.' || ch == '/' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(input[start..i].to_string()), start));
            }
            _ => {
                return Err(SqlError::Parse {
                    message: format!("unexpected character {c:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, o)| *o)
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected {kw}")))
            }
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse_llm_call(&mut self) -> Result<LlmCall, SqlError> {
        self.expect_keyword("LLM")?;
        match self.next() {
            Some(Tok::LParen) => {}
            _ => return Err(self.err("expected '(' after LLM")),
        }
        let prompt = match self.next() {
            Some(Tok::Str(s)) => s,
            _ => return Err(self.err("expected prompt string literal")),
        };
        let mut fields = Vec::new();
        let mut star = false;
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.next();
            match self.next() {
                Some(Tok::Ident(f)) => {
                    // `t.*` references arrive as an ident with a trailing dot
                    // then a star token; `t.field` stays a plain ident whose
                    // table qualifier we strip.
                    if let Some(stripped) = f.strip_suffix('.') {
                        let _ = stripped;
                        match self.next() {
                            Some(Tok::Star) => star = true,
                            _ => return Err(self.err("expected '*' after qualifier")),
                        }
                    } else {
                        let name = f.rsplit('.').next().unwrap_or(&f).to_string();
                        fields.push(name);
                    }
                }
                Some(Tok::Star) => star = true,
                _ => return Err(self.err("expected field reference")),
            }
        }
        match self.next() {
            Some(Tok::RParen) => {}
            _ => return Err(self.err("expected ')' closing LLM call")),
        }
        Ok(LlmCall {
            prompt,
            fields,
            star,
        })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.is_keyword("AS") {
            self.next();
            match self.next() {
                Some(Tok::Ident(a)) => Ok(Some(a)),
                _ => Err(self.err("expected alias after AS")),
            }
        } else {
            Ok(None)
        }
    }

    fn parse(&mut self) -> Result<SqlStatement, SqlError> {
        self.expect_keyword("SELECT")?;
        let projection = if self.is_keyword("LLM") {
            let call = self.parse_llm_call()?;
            let alias = self.parse_alias()?;
            Projection::Llm { call, alias }
        } else if self.is_keyword("AVG") {
            self.next();
            match self.next() {
                Some(Tok::LParen) => {}
                _ => return Err(self.err("expected '(' after AVG")),
            }
            let call = self.parse_llm_call()?;
            match self.next() {
                Some(Tok::RParen) => {}
                _ => return Err(self.err("expected ')' closing AVG")),
            }
            let alias = self.parse_alias()?;
            Projection::AvgLlm { call, alias }
        } else {
            let mut cols = Vec::new();
            loop {
                match self.next() {
                    Some(Tok::Ident(c)) => {
                        cols.push(c.rsplit('.').next().unwrap_or(&c).to_string())
                    }
                    Some(Tok::Star) => cols.push("*".to_string()),
                    _ => return Err(self.err("expected column name")),
                }
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.next();
                } else {
                    break;
                }
            }
            Projection::Columns(cols)
        };

        self.expect_keyword("FROM")?;
        let table = match self.next() {
            Some(Tok::Ident(t)) => t,
            _ => return Err(self.err("expected table name")),
        };

        let mut filter = None;
        if self.is_keyword("WHERE") {
            self.next();
            let call = self.parse_llm_call()?;
            let negated = match self.next() {
                Some(Tok::Eq) => false,
                Some(Tok::Neq) => true,
                _ => return Err(self.err("expected '=' or '<>' after LLM predicate")),
            };
            let label = match self.next() {
                Some(Tok::Str(s)) => s,
                _ => return Err(self.err("expected label string literal")),
            };
            filter = Some((call, label, negated));
        }

        let mut limit = None;
        if self.is_keyword("LIMIT") {
            self.next();
            match self.next() {
                Some(Tok::Number(n)) => limit = Some(n),
                _ => return Err(self.err("expected row count after LIMIT")),
            }
        }
        if self.peek().is_some() {
            return Err(self.err("unexpected trailing tokens"));
        }
        Ok(SqlStatement {
            projection,
            table,
            filter,
            limit,
        })
    }
}

/// Parses one statement of the LLM-SQL dialect.
///
/// # Errors
///
/// [`SqlError::Parse`] with the byte offset of the first offending token.
///
/// # Examples
///
/// ```
/// let stmt = llmqo_relational::parse_sql(
///     "SELECT movietitle FROM movies \
///      WHERE LLM('Suitable for kids?', movieinfo, reviewcontent) = 'Yes'",
/// ).unwrap();
/// assert_eq!(stmt.table, "movies");
/// assert!(stmt.filter.is_some());
/// ```
pub fn parse_sql(input: &str) -> Result<SqlStatement, SqlError> {
    let toks = lex(input)?;
    Parser { toks, pos: 0 }.parse()
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Result of running one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows (stringified values, row-major), in original row order.
    pub rows: Vec<Vec<String>>,
    /// The aggregate, for `AVG(LLM(...))` statements.
    pub aggregate: Option<f64>,
    /// Per-stage execution outputs (1 for T1/T2/T4, 2 for T3).
    pub stages: Vec<QueryOutput>,
}

/// Defaults applied when compiling SQL to [`LlmQuery`] plans (SQL carries no
/// label spaces or output-length hints).
#[derive(Debug, Clone)]
pub struct SqlDefaults {
    /// Labels assumed for filter predicates when only the compared label is
    /// known; the compared label is always inserted.
    pub filter_labels: Vec<String>,
    /// Mean output tokens for projection calls.
    pub projection_output_tokens: f64,
    /// Mean output tokens for filter calls.
    pub filter_output_tokens: f64,
    /// Score range for `AVG(LLM(...))`.
    pub aggregation_range: (i64, i64),
}

impl Default for SqlDefaults {
    fn default() -> Self {
        SqlDefaults {
            filter_labels: vec!["Yes".into(), "No".into()],
            projection_output_tokens: 32.0,
            filter_output_tokens: 2.0,
            aggregation_range: (1, 5),
        }
    }
}

/// Executes LLM-SQL statements against registered tables through a
/// [`QueryExecutor`] and a [`Reorderer`].
pub struct SqlRunner<'a> {
    executor: &'a QueryExecutor<'a>,
    reorderer: &'a dyn Reorderer,
    defaults: SqlDefaults,
    catalog: HashMap<String, (&'a Table, &'a FunctionalDeps)>,
}

impl<'a> fmt::Debug for SqlRunner<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SqlRunner")
            .field("tables", &self.catalog.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl<'a> SqlRunner<'a> {
    /// Creates a runner.
    pub fn new(executor: &'a QueryExecutor<'a>, reorderer: &'a dyn Reorderer) -> Self {
        SqlRunner {
            executor,
            reorderer,
            defaults: SqlDefaults::default(),
            catalog: HashMap::new(),
        }
    }

    /// Overrides compilation defaults.
    pub fn with_defaults(mut self, defaults: SqlDefaults) -> Self {
        self.defaults = defaults;
        self
    }

    /// Registers a table under `name`.
    pub fn register(&mut self, name: impl Into<String>, table: &'a Table, fds: &'a FunctionalDeps) {
        self.catalog.insert(name.into(), (table, fds));
    }

    fn resolve_fields(&self, call: &LlmCall, table: &Table) -> Vec<String> {
        if call.star || call.fields.is_empty() {
            table
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            call.fields.clone()
        }
    }

    /// Parses and executes `sql`, supplying ground truth per row via `truth`.
    ///
    /// # Errors
    ///
    /// [`SqlError`] on parse, catalog, or execution failure.
    pub fn run(&self, sql: &str, truth: &dyn Fn(usize) -> String) -> Result<SqlResult, SqlError> {
        let stmt = parse_sql(sql)?;
        let &(table, fds) =
            self.catalog
                .get(&stmt.table)
                .ok_or_else(|| SqlError::UnknownTable {
                    name: stmt.table.clone(),
                })?;

        let mut stages: Vec<QueryOutput> = Vec::new();

        // WHERE stage (if any) narrows the row set.
        let mut selected: Option<Vec<usize>> = None;
        if let Some((call, label, negated)) = &stmt.filter {
            let mut labels = self.defaults.filter_labels.clone();
            if !labels.contains(label) {
                labels.insert(0, label.clone());
            }
            let query = LlmQuery::filter(
                format!("sql-where-{}", stmt.table),
                call.prompt.clone(),
                self.resolve_fields(call, table),
                labels,
                label.clone(),
                self.defaults.filter_output_tokens,
            );
            let out = self
                .executor
                .execute(table, &query, self.reorderer, fds, truth)?;
            let mut rows: Vec<usize> = if *negated {
                let keep: std::collections::HashSet<usize> =
                    out.selected_rows.iter().copied().collect();
                (0..table.nrows()).filter(|r| !keep.contains(r)).collect()
            } else {
                out.selected_rows.clone()
            };
            rows.sort_unstable();
            selected = Some(rows);
            stages.push(out);
        }

        // Projection stage.
        let (columns, rows, aggregate) = match &stmt.projection {
            Projection::Columns(cols) => {
                let names: Vec<String> = if cols.iter().any(|c| c == "*") {
                    table
                        .schema()
                        .names()
                        .iter()
                        .map(|s| s.to_string())
                        .collect()
                } else {
                    cols.clone()
                };
                let idx = table
                    .resolve_columns(&names)
                    .map_err(|e| SqlError::Exec(ExecError::Table(e)))?;
                let row_ids: Vec<usize> = selected.unwrap_or_else(|| (0..table.nrows()).collect());
                let rows: Vec<Vec<String>> = row_ids
                    .iter()
                    .map(|&r| idx.iter().map(|&c| table.value(r, c).to_string()).collect())
                    .collect();
                (names, rows, None)
            }
            Projection::Llm { call, alias } => {
                let name = alias.clone().unwrap_or_else(|| "llm".to_string());
                let query = LlmQuery::projection(
                    format!("sql-select-{}", stmt.table),
                    call.prompt.clone(),
                    self.resolve_fields(call, table),
                    self.defaults.projection_output_tokens,
                );
                let (work_table, row_map): (Table, Vec<usize>) = match &selected {
                    Some(rows) => (table.select_rows(rows), rows.clone()),
                    None => (table.clone(), (0..table.nrows()).collect()),
                };
                let mapped_truth = |local: usize| truth(row_map[local]);
                let out = self.executor.execute(
                    &work_table,
                    &query,
                    self.reorderer,
                    fds,
                    &mapped_truth,
                )?;
                let rows = out.outputs.iter().map(|o| vec![o.text.clone()]).collect();
                stages.push(out);
                (vec![name], rows, None)
            }
            Projection::AvgLlm { call, alias } => {
                let name = alias.clone().unwrap_or_else(|| "avg".to_string());
                let (lo, hi) = self.defaults.aggregation_range;
                let query = LlmQuery::aggregation(
                    format!("sql-avg-{}", stmt.table),
                    call.prompt.clone(),
                    self.resolve_fields(call, table),
                    (lo, hi),
                    self.defaults.filter_output_tokens,
                );
                let out = self
                    .executor
                    .execute(table, &query, self.reorderer, fds, truth)?;
                let agg = out.aggregate;
                stages.push(out);
                (
                    vec![name],
                    vec![vec![agg.map_or("null".into(), |a| format!("{a:.3}"))]],
                    agg,
                )
            }
        };

        let mut rows = rows;
        if let Some(n) = stmt.limit {
            rows.truncate(n);
        }
        Ok(SqlResult {
            columns,
            rows,
            aggregate,
            stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use llmqo_core::Ggr;
    use llmqo_serve::{
        Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm, SimEngine,
    };
    use llmqo_tokenizer::Tokenizer;

    #[test]
    fn parses_filter_statement() {
        let stmt = parse_sql(
            "SELECT movietitle FROM movies \
             WHERE LLM('kids?', movieinfo, reviewcontent) = 'Yes'",
        )
        .unwrap();
        assert_eq!(stmt.table, "movies");
        assert_eq!(
            stmt.projection,
            Projection::Columns(vec!["movietitle".into()])
        );
        let (call, label, negated) = stmt.filter.unwrap();
        assert_eq!(call.prompt, "kids?");
        assert_eq!(call.fields, vec!["movieinfo", "reviewcontent"]);
        assert_eq!(label, "Yes");
        assert!(!negated);
    }

    #[test]
    fn parses_projection_with_star_and_alias() {
        let stmt = parse_sql("SELECT LLM('Summarize: ', pr.*) AS summary FROM pr").unwrap();
        match stmt.projection {
            Projection::Llm { call, alias } => {
                assert!(call.star);
                assert_eq!(alias.as_deref(), Some("summary"));
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn parses_aggregation() {
        let stmt =
            parse_sql("SELECT AVG(LLM('Rate 1-5', reviewcontent)) AS score FROM movies").unwrap();
        assert!(matches!(stmt.projection, Projection::AvgLlm { .. }));
    }

    #[test]
    fn parses_negated_predicate_and_limit() {
        let stmt =
            parse_sql("SELECT * FROM t WHERE LLM('sentiment', review) <> 'NEGATIVE' LIMIT 5")
                .unwrap();
        assert!(stmt.filter.unwrap().2);
        assert_eq!(stmt.limit, Some(5));
    }

    #[test]
    fn string_escapes_and_case_insensitive_keywords() {
        let stmt = parse_sql("select llm('it''s fine', a) from t").unwrap();
        match stmt.projection {
            Projection::Llm { call, .. } => assert_eq!(call.prompt, "it's fine"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qualified_field_names_are_stripped() {
        let stmt = parse_sql("SELECT LLM('x', r.review, p.title) FROM rp").unwrap();
        match stmt.projection {
            Projection::Llm { call, .. } => {
                assert_eq!(call.fields, vec!["review", "title"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse_sql("SELECT FROM t").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        assert!(!err.to_string().is_empty());
        assert!(parse_sql("SELECT a FROM t WHERE LLM('x' a) = 'Y'").is_err());
        assert!(parse_sql("SELECT a FROM t trailing garbage").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE LLM('unterminated) = 'Y'").is_err());
    }

    fn fixture() -> (Table, FunctionalDeps) {
        let mut t = Table::new(Schema::of_strings(&["review", "product"]));
        for i in 0..30 {
            t.push_row(vec![
                format!("review {i} with details").into(),
                format!("product {}", i / 10).into(),
            ])
            .unwrap();
        }
        (t, FunctionalDeps::empty(2))
    }

    fn engine() -> SimEngine {
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        )
    }

    #[test]
    fn runs_filter_statement_end_to_end() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("tickets", &table, &fds);
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let res = runner
            .run(
                "SELECT review FROM tickets WHERE LLM('good?', review, product) = 'Yes'",
                &truth,
            )
            .unwrap();
        assert_eq!(res.columns, vec!["review"]);
        assert_eq!(res.rows.len(), 15);
        assert!(res.rows[0][0].starts_with("review 0"));
        assert_eq!(res.stages.len(), 1);
    }

    #[test]
    fn runs_projection_over_filtered_rows() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        // Oracle truth: filter keeps rows < 10; projection echoes summaries.
        let truth = |row: usize| {
            if row < 10 {
                "Yes".to_string()
            } else {
                "No".to_string()
            }
        };
        let res = runner
            .run(
                "SELECT LLM('summarize', review, product) AS s FROM t \
                 WHERE LLM('keep?', review) = 'Yes'",
                &truth,
            )
            .unwrap();
        // Stage 2 ran over the 10 selected rows; truths are "Yes" because
        // the oracle echoes the (filter-style) truth function.
        assert_eq!(res.columns, vec!["s"]);
        assert_eq!(res.rows.len(), 10);
        assert_eq!(res.stages.len(), 2);
    }

    #[test]
    fn runs_aggregation() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |row: usize| ((row % 5) + 1).to_string();
        let res = runner
            .run(
                "SELECT AVG(LLM('rate', review, product)) AS score FROM t",
                &truth,
            )
            .unwrap();
        assert_eq!(res.aggregate, Some(3.0));
        assert_eq!(res.rows, vec![vec!["3.000".to_string()]]);
    }

    #[test]
    fn negated_filter_complements() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |row: usize| if row < 12 { "Yes".into() } else { "No".into() };
        let res = runner
            .run(
                "SELECT review FROM t WHERE LLM('keep?', review) <> 'Yes'",
                &truth,
            )
            .unwrap();
        assert_eq!(res.rows.len(), 18);
    }

    #[test]
    fn limit_truncates() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |_: usize| "Yes".to_string();
        let res = runner.run("SELECT * FROM t LIMIT 3", &truth).unwrap();
        assert_eq!(res.rows.len(), 3);
        assert_eq!(res.columns.len(), 2);
    }

    #[test]
    fn unknown_table_is_reported() {
        let (table, fds) = fixture();
        let eng = engine();
        let executor = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let solver = Ggr::default();
        let mut runner = SqlRunner::new(&executor, &solver);
        runner.register("t", &table, &fds);
        let truth = |_: usize| String::new();
        assert!(matches!(
            runner.run("SELECT a FROM missing", &truth),
            Err(SqlError::UnknownTable { .. })
        ));
    }
}
