//! Cost-based logical query optimizer for the LLM-SQL layer.
//!
//! The source paper's end-to-end wins come from two optimizer families:
//! prefix-sharing request reordering (the `llmqo-core` solvers) and the
//! *SQL-aware* optimizations of its "Optimizing LLM invocations" section —
//! exact request **deduplication**, **operator reordering** (cheap SQL
//! predicates before expensive LLM operators, LLM predicates ordered by
//! estimated selectivity × per-row cost), and `LIMIT`-driven **lazy
//! evaluation** that stops issuing LLM requests once enough rows qualify.
//! Related work ("Research Challenges in Relational Database Management
//! Systems for LLM Queries") argues these belong in a real cost-based
//! optimizer inside the DBMS rather than at ad-hoc call sites; this module
//! is that optimizer.
//!
//! A parsed [`SqlStatement`](crate::SqlStatement) compiles to a linear
//! [`LogicalPlan`] — `Scan` at the bottom, then `WHERE` conjuncts
//! ([`LogicalOp::SqlFilter`] / [`LogicalOp::LlmFilter`]), the projection
//! operator, and an optional `Limit`. [`optimize_plan`] applies the rewrite
//! rules under an [`OptimizerConfig`]; the physical executor in
//! [`SqlRunner`](crate::SqlRunner) interprets the optimized plan with
//! deduplicated, batched execution. With every optimization disabled
//! ([`OptimizerConfig::none`]) the physical executor reproduces the
//! pre-optimizer pipeline byte for byte — the differential oracle the
//! integration tests check against.
//!
//! LLM operator costs are priced through `llmqo-costmodel`'s
//! [`LlmOpEstimate`]: filters are sequenced by ascending
//! `per-row cost / (1 − selectivity)`, the order that minimizes expected
//! spend for a conjunction evaluated left to right.

use crate::query::LlmQuery;
use crate::table::Table;
use crate::value::Value;
use llmqo_costmodel::{CascadePlan, LlmOpEstimate, Pricing};
use llmqo_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------
// Cheap SQL predicates
// ---------------------------------------------------------------------------

/// Comparison operator of a plain (non-LLM) SQL predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A cheap relational predicate: `column <op> literal`. Costs nothing
/// compared to an LLM invocation, which is why the optimizer always pushes
/// these below LLM operators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SqlPredicate {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand literal (string or numeric, as written).
    pub literal: String,
}

impl SqlPredicate {
    /// Evaluates the predicate on one cell value. Comparisons are numeric
    /// when both sides parse as numbers, lexicographic on the rendered value
    /// otherwise; `NULL` satisfies nothing.
    pub fn eval(&self, value: &Value) -> bool {
        if matches!(value, Value::Null) {
            return false;
        }
        let rendered = value.to_string();
        let ord = match (rendered.parse::<f64>(), self.literal.parse::<f64>()) {
            (Ok(a), Ok(b)) => a.partial_cmp(&b),
            _ => Some(rendered.as_str().cmp(self.literal.as_str())),
        };
        let Some(ord) = ord else { return false };
        match self.op {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

impl fmt::Display for SqlPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} '{}'", self.column, self.op, self.literal)
    }
}

// ---------------------------------------------------------------------------
// Logical plan
// ---------------------------------------------------------------------------

/// One operator of a [`LogicalPlan`]. Plans are linear chains: `ops[0]` is
/// always a [`Scan`](LogicalOp::Scan); each operator consumes the rows its
/// predecessor produced.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    /// Read the source table.
    Scan {
        /// Registered table name.
        table: String,
    },
    /// Filter rows with a cheap relational predicate.
    SqlFilter {
        /// The predicate.
        pred: SqlPredicate,
    },
    /// Filter rows with an LLM predicate (`LLM(...) = label`, possibly
    /// negated). `est` is the optimizer's cost/selectivity estimate, filled
    /// in by [`annotate_estimates`].
    LlmFilter {
        /// The compiled per-row query.
        query: LlmQuery,
        /// Whether the comparison is `<>`.
        negated: bool,
        /// Cost-model estimate used for ordering (if annotated).
        est: Option<LlmOpEstimate>,
    },
    /// Produce one LLM output column per row (`SELECT LLM(...)`).
    LlmProject {
        /// The compiled per-row query.
        query: LlmQuery,
        /// Output column name.
        alias: String,
    },
    /// Fold per-row LLM outputs into an average (`SELECT AVG(LLM(...))`).
    LlmAggregate {
        /// The compiled per-row query.
        query: LlmQuery,
        /// Output column name.
        alias: String,
    },
    /// Project plain columns.
    Project {
        /// Output column names (`*` already expanded by the compiler).
        columns: Vec<String>,
    },
    /// Keep only the first `n` result rows (original row order).
    Limit {
        /// Row budget.
        n: usize,
    },
}

impl LogicalOp {
    fn label(&self) -> String {
        match self {
            LogicalOp::Scan { table } => format!("Scan {table}"),
            LogicalOp::SqlFilter { pred } => format!("SqlFilter {pred}"),
            LogicalOp::LlmFilter {
                query,
                negated,
                est,
            } => {
                let cmp = if *negated { "<>" } else { "=" };
                let label = query.predicate_label.as_deref().unwrap_or("?");
                let mut s = format!("LlmFilter {} {cmp} '{label}'", query.name);
                if let Some(e) = est {
                    s.push_str(&format!(
                        " (sel {:.2}, {:.0} tok/row)",
                        e.selectivity, e.prompt_tokens_per_row
                    ));
                }
                s
            }
            LogicalOp::LlmProject { query, alias } => {
                format!("LlmProject {} AS {alias}", query.name)
            }
            LogicalOp::LlmAggregate { query, alias } => {
                format!("LlmAggregate avg({}) AS {alias}", query.name)
            }
            LogicalOp::Project { columns } => format!("Project [{}]", columns.join(", ")),
            LogicalOp::Limit { n } => format!("Limit {n}"),
        }
    }
}

/// A linear operator chain compiled from one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// Operators, bottom (scan) first.
    pub ops: Vec<LogicalOp>,
}

impl LogicalPlan {
    /// Number of LLM-invoking operators in the plan.
    pub fn llm_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    LogicalOp::LlmFilter { .. }
                        | LogicalOp::LlmProject { .. }
                        | LogicalOp::LlmAggregate { .. }
                )
            })
            .count()
    }

    /// The `LIMIT` budget, if the plan has one.
    pub fn limit(&self) -> Option<usize> {
        self.ops.iter().find_map(|op| match op {
            LogicalOp::Limit { n } => Some(*n),
            _ => None,
        })
    }

    /// `EXPLAIN`-style rendering: top operator first, scan at the bottom,
    /// one tree edge per level.
    pub fn explain(&self) -> String {
        self.explain_with(|_, _| None)
    }

    /// [`explain`](Self::explain) with a per-node annotation hook: `annotate`
    /// receives each operator's plan index (bottom-up, scan = 0) and may
    /// return extra text appended to the operator's line — how
    /// `EXPLAIN ANALYZE` attaches measured statistics to the same rendering.
    pub fn explain_with<F>(&self, annotate: F) -> String
    where
        F: Fn(usize, &LogicalOp) -> Option<String>,
    {
        let mut out = String::new();
        for (depth, op) in self.ops.iter().rev().enumerate() {
            if depth > 0 {
                out.push_str(&"   ".repeat(depth - 1));
                out.push_str("└─ ");
            }
            out.push_str(&op.label());
            if let Some(extra) = annotate(self.ops.len() - 1 - depth, op) {
                out.push_str("  ");
                out.push_str(&extra);
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

/// Model-tier cascade execution for a statement's LLM operators (see
/// [`CascadePlan`]): run every row on the cheap tier first, escalate rows
/// whose deterministic confidence falls below the plan's threshold to the
/// expensive tier on a second stage engine.
///
/// Off by default everywhere ([`OptimizerConfig::cascade`] is `None` in
/// every constructor) — single-tier execution stays the differential
/// oracle, and the `escalate_below ≥ 1` endpoint of an enabled cascade is
/// byte-identical to it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeConfig {
    /// The two tiers and the escalation threshold.
    pub plan: CascadePlan,
    /// Pareto knob closing the $-cost/JCT gap: dollars one simulated second
    /// of statement time is worth when re-ranking LLM filters. `0.0` ranks
    /// purely by dollars (the paper's objective); larger values let a
    /// faster-but-pricier order win.
    pub time_weight: f64,
    /// When `true`, the runner prices single-tier vs cascade per operator
    /// from the learned [`TierPosterior`](llmqo_costmodel::TierPosterior)s
    /// (expected cascade cost `cheap + esc_rate × expensive` vs the
    /// expensive tier alone) and runs the cascade only where it wins,
    /// recording the decision in the plan notes.
    pub auto: bool,
}

impl CascadeConfig {
    /// A cascade that always runs under `plan` — no per-operator pricing,
    /// pure-dollar ranking.
    pub fn new(plan: CascadePlan) -> Self {
        CascadeConfig {
            plan,
            time_weight: 0.0,
            auto: false,
        }
    }

    /// A cascade the runner prices per operator from the tier posteriors.
    pub fn auto(plan: CascadePlan) -> Self {
        CascadeConfig {
            plan,
            time_weight: 0.0,
            auto: true,
        }
    }
}

/// Which rewrite rules and physical optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Exact request deduplication: rows with identical projected field
    /// values share one engine request per batch.
    pub dedup: bool,
    /// Operator reordering: SQL predicates below LLM predicates, LLM
    /// predicates by ascending cost/(1−selectivity) rank.
    pub reorder: bool,
    /// `LIMIT`-driven lazy evaluation: issue LLM requests in growing batches
    /// and stop once the limit is satisfied.
    pub lazy_limit: bool,
    /// Smallest lazy batch (rows); without adaptive sizing, batches double
    /// from here until the limit is met.
    pub lazy_batch_min: usize,
    /// Adaptive runtime re-optimization: track observed LLM-filter pass
    /// rates batch by batch (Beta-smoothed over the static prior), re-rank
    /// remaining LLM filters between batches, size lazy-`LIMIT` batches at
    /// `ceil(remaining / observed_pipeline_selectivity)` (doubling only as
    /// fallback), and — when [`answer_cache`](OptimizerConfig::answer_cache)
    /// is also on, which preserves cross-batch request sharing — run
    /// multi-LLM-filter statements in growing pilot batches even without a
    /// `LIMIT` so a mis-ranked order is corrected after the first batch.
    /// See [`crate::SelectivityTracker`].
    pub adaptive: bool,
    /// Session-scoped exact answer cache: a prompt (instruction +
    /// serialized projected fields) ever submitted on this executor is
    /// never submitted again — across batches, operators, and successive
    /// queries. See [`crate::AnswerCache`].
    pub answer_cache: bool,
    /// Pseudo-observation weight of the static prior in each adaptive
    /// posterior (see [`crate::adaptive::DEFAULT_PRIOR_STRENGTH`]).
    pub adaptive_prior_strength: f64,
    /// Deterministic per-statement fault injection and graceful
    /// degradation (see [`StatementFaults`](crate::StatementFaults)).
    /// `None` (the default everywhere) and `Some` with a zero `error_ppm`
    /// are byte-identical to fault-free execution.
    pub faults: Option<crate::StatementFaults>,
    /// Pipelined physical execution: run the statement in micro-batches of
    /// [`pipeline_batch_rows`](OptimizerConfig::pipeline_batch_rows) with
    /// every LLM operator on its own stage engine over one shared
    /// discrete-event clock, so operator `j` prefills batch `k + 1` while
    /// operator `j + 1` decodes batch `k`. Result rows are byte-identical
    /// to sequential execution (labeling never depends on engine timing);
    /// only the simulated schedule — and therefore the statement's
    /// job-completion time — changes. Off by default: the sequential relay
    /// stays the timing oracle the differential suites and golden
    /// `EXPLAIN ANALYZE` outputs pin.
    pub pipeline: bool,
    /// Replica sessions per LLM operator (fan-out). `1` keeps each stage on
    /// one engine session; `N > 1` routes each stage's dedup-compacted
    /// batches across `N` replicas with the cluster layer's prefix-affinity
    /// router, preserving reorder-plan locality. Independent of
    /// [`pipeline`](OptimizerConfig::pipeline) (fan-out without
    /// micro-batching is legal), but they compound: pipelined + fanned-out
    /// is the cluster-parallel mode.
    pub pipeline_replicas: usize,
    /// Micro-batch size (rows) when [`pipeline`](OptimizerConfig::pipeline)
    /// is on and neither lazy-`LIMIT` nor pilot batching already dictates a
    /// schedule. Smaller batches overlap more at higher per-batch overhead.
    pub pipeline_batch_rows: usize,
    /// SELECT-list projection pruning: LLM calls whose field list came from
    /// a `*` expansion drop columns that neither the SELECT list nor any
    /// other clause of the statement references, shrinking prompts, dedup
    /// keys, and the reorder solver's view. Only applied to queries without
    /// a key field (always true for SQL-compiled queries), where the
    /// labeler's positional input is the constant `0.5` — so pruning
    /// provably cannot change any row's label.
    pub prune_fields: bool,
    /// Model-tier cascade execution (see [`CascadeConfig`]). `None` (the
    /// default everywhere) is single-tier oracle mode; the differential
    /// suites pin that a `Some` plan with `escalate_below ≥ 1` stays
    /// byte-identical to it.
    pub cascade: Option<CascadeConfig>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::all()
    }
}

impl OptimizerConfig {
    /// Every optimization on (the default).
    pub fn all() -> Self {
        OptimizerConfig {
            dedup: true,
            reorder: true,
            lazy_limit: true,
            lazy_batch_min: 32,
            adaptive: true,
            answer_cache: true,
            adaptive_prior_strength: crate::adaptive::DEFAULT_PRIOR_STRENGTH,
            faults: None,
            pipeline: false,
            pipeline_replicas: 1,
            pipeline_batch_rows: 512,
            prune_fields: true,
            cascade: None,
        }
    }

    /// Every optimization off — the differential oracle: the physical
    /// executor then reproduces the fixed pre-optimizer pipeline.
    pub fn none() -> Self {
        OptimizerConfig {
            dedup: false,
            reorder: false,
            lazy_limit: false,
            lazy_batch_min: 32,
            adaptive: false,
            answer_cache: false,
            adaptive_prior_strength: crate::adaptive::DEFAULT_PRIOR_STRENGTH,
            faults: None,
            pipeline: false,
            pipeline_replicas: 1,
            pipeline_batch_rows: 512,
            prune_fields: false,
            cascade: None,
        }
    }

    /// The PR-3 static optimizer: every rewrite on but no runtime feedback
    /// and no answer cache — the baseline the adaptive layer is measured
    /// against (`table_adaptive`) and differentially tested against.
    pub fn static_only() -> Self {
        OptimizerConfig {
            adaptive: false,
            answer_cache: false,
            ..OptimizerConfig::all()
        }
    }

    /// The cluster-parallel mode: [`all`](OptimizerConfig::all) plus
    /// pipelined micro-batching and `replicas`-way fan-out per LLM
    /// operator (`replicas` is clamped to at least 1).
    pub fn pipelined(replicas: usize) -> Self {
        OptimizerConfig {
            pipeline: true,
            pipeline_replicas: replicas.max(1),
            ..OptimizerConfig::all()
        }
    }

    /// Model-tier cascade mode: [`all`](OptimizerConfig::all) plus cascade
    /// execution under `cascade`.
    pub fn cascaded(cascade: CascadeConfig) -> Self {
        OptimizerConfig {
            cascade: Some(cascade),
            ..OptimizerConfig::all()
        }
    }
}

/// Fills each [`LogicalOp::LlmFilter`]'s cost estimate from the catalog
/// table: prompt tokens are the instruction prefix plus the mean serialized
/// field length over a deterministic row sample; selectivity is a uniform
/// prior over the query's label space (complemented for `<>`).
pub fn annotate_estimates(plan: &mut LogicalPlan, table: &Table, tokenizer: &Tokenizer) {
    for op in &mut plan.ops {
        if let LogicalOp::LlmFilter {
            query,
            negated,
            est,
        } = op
        {
            *est = Some(estimate_llm_op(table, tokenizer, query, *negated));
        }
    }
}

/// Cost-model estimate for one LLM operator over `table` (see
/// [`annotate_estimates`]). Exposed for benchmarks and EXPLAIN consumers.
pub fn estimate_llm_op(
    table: &Table,
    tokenizer: &Tokenizer,
    query: &LlmQuery,
    negated: bool,
) -> LlmOpEstimate {
    const SAMPLE: usize = 64;
    let instruction = tokenizer.count(&query.full_instruction()) as f64;
    let cols = table.resolve_columns(&query.fields).unwrap_or_default();
    let n = table.nrows();
    let mut field_tokens = 0usize;
    let mut sampled = 0usize;
    if n > 0 && !cols.is_empty() {
        let stride = n.div_ceil(SAMPLE);
        let mut r = 0;
        while r < n {
            for (f, &c) in cols.iter().enumerate() {
                field_tokens += tokenizer.count(&crate::prompt::field_fragment(
                    &query.fields[f],
                    &table.value(r, c).to_string(),
                ));
            }
            sampled += 1;
            r += stride;
        }
    }
    let per_row_fields = if sampled == 0 {
        0.0
    } else {
        field_tokens as f64 / sampled as f64
    };
    let labels = query.label_space.len().max(1) as f64;
    let pass = 1.0 / labels;
    LlmOpEstimate::new(
        instruction + per_row_fields,
        query.output_tokens_mean,
        if negated { 1.0 - pass } else { pass },
    )
}

/// Applies the rewrite rules to `plan` under `config`, returning the
/// optimized plan and human-readable notes describing each rewrite (for
/// EXPLAIN output). Only the `WHERE` segment is mobile: SQL predicates move
/// below every LLM predicate (they are free by comparison and commute as
/// row filters), and LLM predicates sort by ascending
/// [`LlmOpEstimate::rank`]. Both moves are stable, so equal-rank operators
/// keep their written order.
pub fn optimize_plan(
    plan: &LogicalPlan,
    config: &OptimizerConfig,
    pricing: &Pricing,
) -> (LogicalPlan, Vec<String>) {
    let mut notes = Vec::new();
    if !config.reorder {
        return (plan.clone(), notes);
    }
    // The mobile segment: the maximal run of filter operators after Scan.
    let start = 1; // ops[0] is Scan
    let end = plan
        .ops
        .iter()
        .position(|op| {
            !matches!(
                op,
                LogicalOp::Scan { .. } | LogicalOp::SqlFilter { .. } | LogicalOp::LlmFilter { .. }
            )
        })
        .unwrap_or(plan.ops.len());
    let mut ops = plan.ops.clone();
    if start >= end {
        return (LogicalPlan { ops }, notes);
    }
    let segment = &mut ops[start..end];
    let before: Vec<String> = segment.iter().map(LogicalOp::label).collect();
    segment.sort_by(|a, b| {
        fn key(op: &LogicalOp, pricing: &Pricing) -> (u8, f64) {
            match op {
                LogicalOp::SqlFilter { .. } => (0, 0.0),
                LogicalOp::LlmFilter { est, .. } => {
                    (1, est.map_or(f64::INFINITY, |e| e.rank(pricing)))
                }
                _ => unreachable!("segment holds filters only"),
            }
        }
        let (ka, kb) = (key(a, pricing), key(b, pricing));
        ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
    });
    let after: Vec<String> = segment.iter().map(LogicalOp::label).collect();
    if before != after {
        notes.push(format!(
            "reordered WHERE: [{}] → [{}]",
            before.join("; "),
            after.join("; ")
        ));
    }
    (LogicalPlan { ops }, notes)
}

// ---------------------------------------------------------------------------
// Execution statistics
// ---------------------------------------------------------------------------

/// Per-operator savings measured by the physical executor — the observable
/// wins of the SQL-aware optimizations, reported inside
/// [`ExecutionReport`](crate::ExecutionReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptStats {
    /// Rows the operator was offered (survivors of upstream operators;
    /// under lazy `LIMIT`, candidates the scan never reached are not
    /// offered and appear nowhere in these stats).
    pub rows_in: u64,
    /// Offered rows that shared another row's engine request via exact
    /// dedup. Offered rows split three ways: `rows_in = llm_calls +
    /// rows_deduped + cache_hits`.
    pub rows_deduped: u64,
    /// Engine requests issued.
    pub llm_calls: u64,
    /// Prompt tokens (instruction + fields) the deduplicated rows did *not*
    /// send to the engine.
    pub prefill_tokens_saved: u64,
    /// Batches the operator ran in (1 unless batched lazy/adaptive
    /// execution was active).
    pub batches: u32,
    /// Offered rows answered from the session answer cache (no engine
    /// request, before dedup-compaction even saw them).
    pub cache_hits: u64,
    /// Prompt + output tokens the cache hits did not re-submit/re-decode.
    pub cache_tokens_saved: u64,
    /// Candidate rows this operator never received because lazy `LIMIT`
    /// stopped the scan early (attributed to the first LLM operator in
    /// execution order — the pipeline point where scanning would have
    /// resumed). This is what reconciles `rows_in` with the table size:
    /// `rows_in + rows_skipped` covers every candidate the operator would
    /// have been offered under full materialization.
    pub rows_skipped: u64,
    /// Times adaptive re-ranking moved this operator to a different
    /// position between batches.
    pub reranks: u32,
    /// Engine requests re-issued after injected transient failures (see
    /// [`StatementFaults`](crate::StatementFaults)). Not counted in
    /// `llm_calls`, which reconciles with offered rows.
    pub llm_retries: u64,
    /// Offered rows dropped after exhausting the fault retry budget
    /// (partial-result degradation).
    pub rows_failed: u64,
    /// Offered rows the cascade answered on the cheap tier alone
    /// (confidence at or above the threshold). Zero when cascades are off.
    /// With a cascade on, labeled rows split two ways:
    /// `rows_in = rows_cheap + rows_escalated + rows_failed`.
    pub rows_cheap: u64,
    /// Offered rows the cascade escalated to the expensive tier.
    pub rows_escalated: u64,
    /// Escalated rows whose cheap-tier answer already matched the expensive
    /// tier's — the agreement numerator the
    /// [`TierPosterior`](llmqo_costmodel::TierPosterior) learns from.
    pub tier_agreements: u64,
    /// Prompt tokens billed to the cheap tier (every engine request a
    /// cascade issues pays this tier once).
    pub cheap_prompt_tokens: u64,
    /// Output tokens billed to the cheap tier.
    pub cheap_output_tokens: u64,
    /// Prompt tokens additionally billed to the expensive tier for
    /// escalated requests.
    pub esc_prompt_tokens: u64,
    /// Output tokens additionally billed to the expensive tier.
    pub esc_output_tokens: u64,
}

impl OptStats {
    /// Engine requests avoided versus evaluating every candidate row
    /// individually: dedup sharing and answer-cache hits (both inside
    /// `rows_in`) plus the rows lazy `LIMIT` never scanned at all
    /// (`rows_skipped`). With this, report numbers reconcile with engine
    /// request counts: `rows_in + rows_skipped = llm_calls +
    /// llm_calls_saved()`.
    pub fn llm_calls_saved(&self) -> u64 {
        (self.rows_in + self.rows_skipped).saturating_sub(self.llm_calls)
    }

    /// Accumulates another batch's stats into this one.
    pub fn add(&mut self, other: &OptStats) {
        self.rows_in += other.rows_in;
        self.rows_deduped += other.rows_deduped;
        self.llm_calls += other.llm_calls;
        self.prefill_tokens_saved += other.prefill_tokens_saved;
        self.batches += other.batches;
        self.cache_hits += other.cache_hits;
        self.cache_tokens_saved += other.cache_tokens_saved;
        self.rows_skipped += other.rows_skipped;
        self.reranks += other.reranks;
        self.llm_retries += other.llm_retries;
        self.rows_failed += other.rows_failed;
        self.rows_cheap += other.rows_cheap;
        self.rows_escalated += other.rows_escalated;
        self.tier_agreements += other.tier_agreements;
        self.cheap_prompt_tokens += other.cheap_prompt_tokens;
        self.cheap_output_tokens += other.cheap_output_tokens;
        self.esc_prompt_tokens += other.esc_prompt_tokens;
        self.esc_output_tokens += other.esc_output_tokens;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn pred(column: &str, op: CmpOp, literal: &str) -> SqlPredicate {
        SqlPredicate {
            column: column.into(),
            op,
            literal: literal.into(),
        }
    }

    #[test]
    fn predicate_string_and_numeric_comparison() {
        let p = pred("c", CmpOp::Eq, "Fresh");
        assert!(p.eval(&Value::Str("Fresh".into())));
        assert!(!p.eval(&Value::Str("Rotten".into())));
        assert!(!p.eval(&Value::Null));
        let n = pred("c", CmpOp::Ge, "10");
        assert!(n.eval(&Value::Int(10)));
        assert!(n.eval(&Value::Float(10.5)));
        assert!(!n.eval(&Value::Int(9)));
        // "9" vs "10" compares numerically, not lexicographically.
        assert!(pred("c", CmpOp::Lt, "10").eval(&Value::Str("9".into())));
        assert!(pred("c", CmpOp::Ne, "x").eval(&Value::Str("y".into())));
        assert!(pred("c", CmpOp::Le, "b").eval(&Value::Str("a".into())));
        assert!(pred("c", CmpOp::Gt, "a").eval(&Value::Str("b".into())));
    }

    fn filter_query(name: &str, labels: usize, output_tokens: f64) -> LlmQuery {
        LlmQuery::filter(
            name,
            "q?",
            vec!["a".into()],
            (0..labels).map(|i| format!("L{i}")).collect(),
            "L0",
            output_tokens,
        )
    }

    fn where_plan(ops: Vec<LogicalOp>) -> LogicalPlan {
        let mut all = vec![LogicalOp::Scan { table: "t".into() }];
        all.extend(ops);
        all.push(LogicalOp::Project {
            columns: vec!["a".into()],
        });
        all.push(LogicalOp::Limit { n: 5 });
        LogicalPlan { ops: all }
    }

    #[test]
    fn reorder_pushes_sql_filters_below_llm_filters() {
        let plan = where_plan(vec![
            LogicalOp::LlmFilter {
                query: filter_query("f1", 2, 2.0),
                negated: false,
                est: Some(LlmOpEstimate::new(100.0, 2.0, 0.5)),
            },
            LogicalOp::SqlFilter {
                pred: pred("a", CmpOp::Eq, "x"),
            },
        ]);
        let (opt, notes) = optimize_plan(&plan, &OptimizerConfig::all(), &Pricing::gpt4o_mini());
        assert!(matches!(opt.ops[1], LogicalOp::SqlFilter { .. }));
        assert!(matches!(opt.ops[2], LogicalOp::LlmFilter { .. }));
        assert_eq!(notes.len(), 1);
        // Downstream operators stay put.
        assert!(matches!(opt.ops[3], LogicalOp::Project { .. }));
        assert_eq!(opt.limit(), Some(5));
    }

    #[test]
    fn reorder_sorts_llm_filters_by_rank() {
        let cheap_picky = LogicalOp::LlmFilter {
            query: filter_query("cheap", 4, 2.0),
            negated: false,
            est: Some(LlmOpEstimate::new(50.0, 2.0, 0.25)),
        };
        let pricey_lax = LogicalOp::LlmFilter {
            query: filter_query("pricey", 2, 40.0),
            negated: false,
            est: Some(LlmOpEstimate::new(900.0, 40.0, 0.5)),
        };
        let plan = where_plan(vec![pricey_lax.clone(), cheap_picky.clone()]);
        let (opt, _) = optimize_plan(&plan, &OptimizerConfig::all(), &Pricing::gpt4o_mini());
        assert_eq!(opt.ops[1], cheap_picky);
        assert_eq!(opt.ops[2], pricey_lax);
    }

    #[test]
    fn reorder_off_is_identity() {
        let plan = where_plan(vec![
            LogicalOp::LlmFilter {
                query: filter_query("f1", 2, 2.0),
                negated: false,
                est: Some(LlmOpEstimate::new(100.0, 2.0, 0.5)),
            },
            LogicalOp::SqlFilter {
                pred: pred("a", CmpOp::Eq, "x"),
            },
        ]);
        let (opt, notes) = optimize_plan(&plan, &OptimizerConfig::none(), &Pricing::gpt4o_mini());
        assert_eq!(opt, plan);
        assert!(notes.is_empty());
    }

    #[test]
    fn estimate_covers_instruction_and_fields() {
        let mut t = Table::new(Schema::of_strings(&["a", "b"]));
        for i in 0..10 {
            t.push_row(vec![
                format!("value number {i} with words").into(),
                "const".into(),
            ])
            .unwrap();
        }
        let tok = Tokenizer::new();
        let q = LlmQuery::filter(
            "f",
            "Is it good?",
            vec!["a".into(), "b".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        );
        let e = estimate_llm_op(&t, &tok, &q, false);
        assert!(e.prompt_tokens_per_row > tok.count(&q.full_instruction()) as f64);
        assert_eq!(e.selectivity, 0.5);
        assert_eq!(e.output_tokens_per_row, 2.0);
        let neg = estimate_llm_op(&t, &tok, &q, true);
        assert_eq!(neg.selectivity, 0.5);
        let three = LlmQuery::filter(
            "f3",
            "pick",
            vec!["a".into()],
            vec!["A".into(), "B".into(), "C".into(), "D".into()],
            "A",
            2.0,
        );
        assert_eq!(estimate_llm_op(&t, &tok, &three, true).selectivity, 0.75);
    }

    #[test]
    fn explain_renders_top_down() {
        let plan = where_plan(vec![LogicalOp::SqlFilter {
            pred: pred("a", CmpOp::Ne, "x"),
        }]);
        let text = plan.explain();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Limit 5"));
        assert!(lines[1].contains("Project [a]"));
        assert!(lines[2].contains("SqlFilter a <> 'x'"));
        assert!(lines[3].contains("Scan t"));
    }

    #[test]
    fn opt_stats_accumulate() {
        let mut a = OptStats {
            rows_in: 10,
            rows_deduped: 4,
            llm_calls: 6,
            prefill_tokens_saved: 100,
            batches: 1,
            cache_hits: 2,
            cache_tokens_saved: 50,
            rows_skipped: 5,
            reranks: 1,
            llm_retries: 2,
            rows_failed: 1,
            rows_cheap: 7,
            rows_escalated: 3,
            tier_agreements: 6,
            cheap_prompt_tokens: 300,
            cheap_output_tokens: 30,
            esc_prompt_tokens: 90,
            esc_output_tokens: 9,
        };
        a.add(&OptStats {
            rows_in: 8,
            rows_deduped: 1,
            llm_calls: 3,
            prefill_tokens_saved: 25,
            batches: 1,
            cache_hits: 1,
            cache_tokens_saved: 10,
            rows_skipped: 0,
            reranks: 1,
            llm_retries: 1,
            rows_failed: 0,
            rows_cheap: 2,
            rows_escalated: 1,
            tier_agreements: 1,
            cheap_prompt_tokens: 100,
            cheap_output_tokens: 10,
            esc_prompt_tokens: 30,
            esc_output_tokens: 3,
        });
        assert_eq!(a.rows_in, 18);
        assert_eq!(a.llm_calls, 9);
        assert_eq!(a.batches, 2);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_tokens_saved, 60);
        assert_eq!(a.rows_skipped, 5);
        assert_eq!(a.reranks, 2);
        assert_eq!(a.llm_retries, 3);
        assert_eq!(a.rows_failed, 1);
        assert_eq!(a.rows_cheap, 9);
        assert_eq!(a.rows_escalated, 4);
        assert_eq!(a.tier_agreements, 7);
        assert_eq!(a.cheap_prompt_tokens, 400);
        assert_eq!(a.cheap_output_tokens, 40);
        assert_eq!(a.esc_prompt_tokens, 120);
        assert_eq!(a.esc_output_tokens, 12);
        // Early-stop savings count toward avoided requests: 18 offered
        // + 5 never scanned − 9 issued.
        assert_eq!(a.llm_calls_saved(), 14);
    }
}
