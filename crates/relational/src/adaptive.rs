//! Adaptive runtime re-optimization: observed selectivities and the
//! session answer cache.
//!
//! The static optimizer ([`OptimizerConfig`](crate::OptimizerConfig)'s
//! rewrite rules) prices LLM filters with a
//! *uniform prior* over the label space (1/|labels|) and, under lazy
//! `LIMIT`, grows batches by blind doubling. Both decisions are made before
//! a single row has been evaluated — yet the physical executor observes the
//! real pass rate of every LLM filter batch by batch. This module closes
//! that feedback loop, the direction related work points to ("Research
//! Challenges in RDBMS for LLM Queries" names selectivity estimation for
//! semantic operators a core unsolved problem; "The Case for
//! Instance-Optimized LLMs in OLAP Databases" argues for per-workload
//! adaptation):
//!
//! * [`SelectivityTracker`] — per-operator Beta-smoothed pass-rate
//!   posteriors (seeded from the optimizer's prior via
//!   [`SelectivityPosterior`]) plus a pipeline-level posterior. Between
//!   lazy batches the SQL runner re-runs the cost/(1−selectivity) ranking
//!   with posterior means, so remaining LLM filters re-order mid-query when
//!   observations diverge from the prior; lazy-`LIMIT` batches are sized at
//!   `ceil(remaining_limit / observed_pipeline_selectivity)` instead of
//!   doubling blindly.
//! * [`AnswerCache`] — a session-scoped exact answer cache keyed by
//!   instruction + serialized projected fields. Dedup (PR 3) shares engine
//!   requests *within* one operator batch; the cache extends that sharing
//!   across batches, across operators, and across successive queries on the
//!   same [`QueryExecutor`](crate::QueryExecutor): a prompt that was ever
//!   submitted is never submitted again. Cached rows are fanned out
//!   *before* dedup-compaction, so the solver and the engine only ever see
//!   novel rows.
//!
//! Like dedup and reordering, both mechanisms share engine work, **not**
//! labeler draws: the simulated labeler is this harness's per-row
//! measurement instrument, so every row still receives its own generated
//! output and adaptivity cannot change query results —
//! `tests/adaptive_differential.rs` proves adaptive-on ≡ adaptive-off
//! row-for-row on all seven datasets.

use llmqo_costmodel::SelectivityPosterior;
use std::collections::HashMap;

/// Default pseudo-observation weight of the optimizer's static prior in
/// each operator posterior: small enough that the first real batch already
/// moves the ranking, large enough that a 4-row pilot batch cannot collapse
/// a selectivity estimate to 0 or 1.
pub const DEFAULT_PRIOR_STRENGTH: f64 = 8.0;

// ---------------------------------------------------------------------------
// Selectivity tracking
// ---------------------------------------------------------------------------

/// Tracks observed pass rates of the LLM filters of one running query, plus
/// the end-to-end pipeline pass rate that sizes lazy-`LIMIT` batches.
///
/// Operators are keyed by their position in the logical plan (stable across
/// mid-query re-ranking — re-ranking permutes execution order, never plan
/// indices).
///
/// # Examples
///
/// ```
/// use llmqo_relational::SelectivityTracker;
/// let mut t = SelectivityTracker::new(8.0);
/// t.register(1, 0.5); // optimizer prior: uniform over 2 labels
/// t.observe(1, 3, 100); // first batch: 3% pass
/// assert!(t.selectivity(1).unwrap() < 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SelectivityTracker {
    /// Per-operator posteriors, keyed by logical-plan index.
    ops: HashMap<usize, SelectivityPosterior>,
    /// Candidate rows offered to the pipeline vs rows it emitted.
    pipeline: Option<SelectivityPosterior>,
    prior_strength: f64,
}

impl SelectivityTracker {
    /// Creates a tracker whose priors weigh as `strength`
    /// pseudo-observations ([`DEFAULT_PRIOR_STRENGTH`] is the executor's
    /// default).
    pub fn new(strength: f64) -> Self {
        SelectivityTracker {
            ops: HashMap::new(),
            pipeline: None,
            prior_strength: strength,
        }
    }

    /// Registers operator `op` with the optimizer's static `prior` pass
    /// rate. Idempotent: re-registering keeps accumulated observations.
    pub fn register(&mut self, op: usize, prior: f64) {
        let strength = self.prior_strength;
        self.ops
            .entry(op)
            .or_insert_with(|| SelectivityPosterior::new(prior, strength));
    }

    /// Seeds the pipeline posterior with the product of the registered
    /// filter priors — the optimizer's best static guess at the fraction of
    /// scanned rows that reach the result. Idempotent like [`register`].
    ///
    /// [`register`]: SelectivityTracker::register
    pub fn register_pipeline(&mut self, prior: f64) {
        if self.pipeline.is_none() {
            self.pipeline = Some(SelectivityPosterior::new(prior, self.prior_strength));
        }
    }

    /// Records one batch of operator `op`: `passed` of `total` offered rows
    /// survived. Unregistered operators are ignored (non-filter LLM ops
    /// report no selectivity).
    pub fn observe(&mut self, op: usize, passed: u64, total: u64) {
        if let Some(p) = self.ops.get_mut(&op) {
            p.observe(passed, total);
        }
    }

    /// Records one batch of the whole pipeline: of `offered` candidate rows
    /// scanned this batch, `emitted` reached the result set.
    pub fn observe_pipeline(&mut self, emitted: u64, offered: u64) {
        if let Some(p) = self.pipeline.as_mut() {
            p.observe(emitted, offered);
        }
    }

    /// Posterior mean pass rate of operator `op`, if registered.
    pub fn selectivity(&self, op: usize) -> Option<f64> {
        self.ops.get(&op).map(SelectivityPosterior::mean)
    }

    /// Rows operator `op` has been offered so far (0 = prior only).
    pub fn observations(&self, op: usize) -> u64 {
        self.ops
            .get(&op)
            .map_or(0, SelectivityPosterior::observations)
    }

    /// Posterior mean of the pipeline pass rate (result rows per scanned
    /// candidate), if seeded.
    pub fn pipeline_selectivity(&self) -> Option<f64> {
        self.pipeline.as_ref().map(SelectivityPosterior::mean)
    }

    /// Sizes the next lazy-`LIMIT` batch: `ceil(remaining /
    /// pipeline_selectivity)`, clamped into `[floor, available]`. Returns
    /// `None` — caller falls back to doubling — until the pipeline has real
    /// observations (the first batch has nothing to aim with).
    pub fn next_batch_size(
        &self,
        remaining: usize,
        floor: usize,
        available: usize,
    ) -> Option<usize> {
        let p = self.pipeline.as_ref()?;
        if p.observations() == 0 {
            return None;
        }
        // A pipeline that has emitted nothing so far still has a positive
        // Beta mean (the prior's pseudo-passes), so the division is finite;
        // clamp defensively anyway.
        let sel = p.mean().max(1e-6);
        let aimed = (remaining as f64 / sel).ceil() as usize;
        let hi = available.max(1);
        Some(aimed.clamp(floor.clamp(1, hi), hi))
    }
}

// ---------------------------------------------------------------------------
// Session answer cache
// ---------------------------------------------------------------------------

/// What the answer cache remembers about one previously submitted prompt:
/// the serving-side answer record needed to account for the work a hit
/// skips. The executor never caches key-field (position-sensitive) queries
/// — their labeler draws depend on the schedule, which a hit does not have
/// — so no positional state needs to be stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Prompt tokens (instruction + fields) the original request sent.
    pub prompt_tokens: u64,
    /// Output tokens the original request decoded.
    pub output_tokens: u64,
}

/// Running hit/miss counters of an [`AnswerCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnswerCacheStats {
    /// Rows answered from the cache (no engine request issued).
    pub hits: u64,
    /// Rows that missed and were submitted (post-dedup) to the engine.
    pub misses: u64,
    /// Distinct prompts stored.
    pub entries: u64,
}

impl AnswerCacheStats {
    /// Fraction of looked-up rows served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A session-scoped exact answer cache: maps *prompt identity* —
/// instruction text plus the row's serialized projected fields, in query
/// field order — to the [`CachedAnswer`] of the request that first carried
/// it. Lives on the [`QueryExecutor`](crate::QueryExecutor), so hits
/// short-circuit repeated prompts across operator batches, across operators
/// within a statement, and across successive queries on the same executor.
///
/// Instructions are interned once per operator (they repeat across every
/// row of a stage), so each entry stores one small id plus the row's field
/// serialization.
#[derive(Debug, Default)]
pub struct AnswerCache {
    instructions: HashMap<String, u32>,
    /// Per-instruction prompt → answer maps (nested so lookups borrow the
    /// row key instead of cloning it).
    entries: HashMap<u32, HashMap<String, CachedAnswer>>,
    n_entries: u64,
    hits: u64,
    misses: u64,
}

impl AnswerCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AnswerCache::default()
    }

    /// Interns an instruction text, returning the id to use in
    /// [`lookup`](AnswerCache::lookup)/[`insert`](AnswerCache::insert).
    pub fn instruction_id(&mut self, instruction: &str) -> u32 {
        if let Some(&id) = self.instructions.get(instruction) {
            return id;
        }
        let id = self.instructions.len() as u32;
        self.instructions.insert(instruction.to_owned(), id);
        id
    }

    /// Looks up one row's prompt, counting the outcome in the stats.
    pub fn lookup(&mut self, instruction: u32, row_key: &str) -> Option<CachedAnswer> {
        let found = self
            .entries
            .get(&instruction)
            .and_then(|m| m.get(row_key))
            .copied();
        match found {
            Some(hit) => {
                self.hits += 1;
                Some(hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores the answer record of a freshly submitted prompt. First write
    /// wins; a duplicate insert (two novel rows deduped into one request)
    /// is a no-op.
    pub fn insert(&mut self, instruction: u32, row_key: String, answer: CachedAnswer) {
        let per_instruction = self.entries.entry(instruction).or_default();
        if let std::collections::hash_map::Entry::Vacant(e) = per_instruction.entry(row_key) {
            e.insert(answer);
            self.n_entries += 1;
        }
    }

    /// Lifetime hit/miss/entry counters.
    pub fn stats(&self) -> AnswerCacheStats {
        AnswerCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.n_entries,
        }
    }

    /// Distinct prompts stored.
    pub fn len(&self) -> usize {
        self.n_entries as usize
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Drops every entry and counter (e.g. between unrelated workloads
    /// sharing one executor).
    pub fn clear(&mut self) {
        self.instructions.clear();
        self.entries.clear();
        self.n_entries = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_converges_to_observed_rate() {
        let mut t = SelectivityTracker::new(DEFAULT_PRIOR_STRENGTH);
        t.register(2, 0.5);
        assert_eq!(t.selectivity(2), Some(0.5));
        assert_eq!(t.observations(2), 0);
        for _ in 0..20 {
            t.observe(2, 5, 100);
        }
        let s = t.selectivity(2).unwrap();
        assert!((s - 0.05).abs() < 0.01, "{s}");
        assert_eq!(t.observations(2), 2000);
        // Unregistered ops: ignored observations, no estimate.
        t.observe(9, 1, 1);
        assert_eq!(t.selectivity(9), None);
        assert_eq!(t.observations(9), 0);
    }

    #[test]
    fn register_is_idempotent_and_keeps_observations() {
        let mut t = SelectivityTracker::new(4.0);
        t.register(1, 0.5);
        t.observe(1, 0, 100);
        let after = t.selectivity(1).unwrap();
        t.register(1, 0.9); // late duplicate must not reset the posterior
        assert_eq!(t.selectivity(1), Some(after));
    }

    #[test]
    fn batch_sizing_aims_at_remaining_over_selectivity() {
        let mut t = SelectivityTracker::new(8.0);
        t.register_pipeline(0.5);
        // No observations yet → caller falls back to doubling.
        assert_eq!(t.next_batch_size(10, 32, 1000), None);
        t.observe_pipeline(10, 100); // ~10% of scanned rows reach the result
        let sel = t.pipeline_selectivity().unwrap();
        let n = t.next_batch_size(10, 4, 1000).unwrap();
        assert_eq!(n, (10.0 / sel).ceil() as usize);
        // Clamped by the floor and by the rows actually available; a floor
        // above the available rows collapses to the available rows.
        assert_eq!(t.next_batch_size(1, 32, 1000), Some(32));
        assert_eq!(t.next_batch_size(500, 4, 64), Some(64));
        assert_eq!(t.next_batch_size(1, 32, 3), Some(3));
    }

    #[test]
    fn batch_sizing_survives_zero_emission_batches() {
        let mut t = SelectivityTracker::new(2.0);
        t.register_pipeline(0.5);
        t.observe_pipeline(0, 10_000);
        // The Beta prior keeps the mean positive; the aim is huge but
        // finite, clamped to what is available.
        assert_eq!(t.next_batch_size(5, 32, 700), Some(700));
    }

    #[test]
    fn cache_hits_and_interning() {
        let mut c = AnswerCache::new();
        let i1 = c.instruction_id("Is it good?");
        let i2 = c.instruction_id("Is it good?");
        assert_eq!(i1, i2);
        let i3 = c.instruction_id("Is it bad?");
        assert_ne!(i1, i3);

        assert_eq!(c.lookup(i1, "\"a\": \"x\", "), None);
        let ans = CachedAnswer {
            prompt_tokens: 40,
            output_tokens: 2,
        };
        c.insert(i1, "\"a\": \"x\", ".into(), ans);
        assert_eq!(c.lookup(i1, "\"a\": \"x\", "), Some(ans));
        // Same fields under a different instruction: distinct prompt.
        assert_eq!(c.lookup(i3, "\"a\": \"x\", "), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.len(), 1);

        // First write wins.
        c.insert(
            i1,
            "\"a\": \"x\", ".into(),
            CachedAnswer {
                prompt_tokens: 999,
                output_tokens: 9,
            },
        );
        assert_eq!(c.lookup(i1, "\"a\": \"x\", ").unwrap().prompt_tokens, 40);

        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), AnswerCacheStats::default());
    }
}
