//! Adaptive runtime re-optimization: observed selectivities and the
//! session answer cache.
//!
//! The static optimizer ([`OptimizerConfig`](crate::OptimizerConfig)'s
//! rewrite rules) prices LLM filters with a
//! *uniform prior* over the label space (1/|labels|) and, under lazy
//! `LIMIT`, grows batches by blind doubling. Both decisions are made before
//! a single row has been evaluated — yet the physical executor observes the
//! real pass rate of every LLM filter batch by batch. This module closes
//! that feedback loop, the direction related work points to ("Research
//! Challenges in RDBMS for LLM Queries" names selectivity estimation for
//! semantic operators a core unsolved problem; "The Case for
//! Instance-Optimized LLMs in OLAP Databases" argues for per-workload
//! adaptation):
//!
//! * [`SelectivityTracker`] — per-operator Beta-smoothed pass-rate
//!   posteriors (seeded from the optimizer's prior via
//!   [`SelectivityPosterior`]) plus a pipeline-level posterior. Between
//!   lazy batches the SQL runner re-runs the cost/(1−selectivity) ranking
//!   with posterior means, so remaining LLM filters re-order mid-query when
//!   observations diverge from the prior; lazy-`LIMIT` batches are sized at
//!   `ceil(remaining_limit / observed_pipeline_selectivity)` instead of
//!   doubling blindly.
//! * [`AnswerCache`] — a session-scoped exact answer cache keyed by
//!   instruction + serialized projected fields. Dedup (PR 3) shares engine
//!   requests *within* one operator batch; the cache extends that sharing
//!   across batches, across operators, and across successive queries on the
//!   same [`QueryExecutor`](crate::QueryExecutor): a prompt that was ever
//!   submitted is never submitted again. Cached rows are fanned out
//!   *before* dedup-compaction, so the solver and the engine only ever see
//!   novel rows. Row keys are stored as FNV-1a hashes (with a debug-build
//!   collision audit), optional entry/byte budgets evict in LRU order, and
//!   [`export`](AnswerCache::export)/[`absorb`](AnswerCache::absorb)
//!   snapshots back statement checkpoint/resume
//!   ([`StatementCheckpoint`](crate::StatementCheckpoint)).
//!
//! Like dedup and reordering, both mechanisms share engine work, **not**
//! labeler draws: the simulated labeler is this harness's per-row
//! measurement instrument, so every row still receives its own generated
//! output and adaptivity cannot change query results —
//! `tests/adaptive_differential.rs` proves adaptive-on ≡ adaptive-off
//! row-for-row on all seven datasets.

use llmqo_costmodel::SelectivityPosterior;
use std::collections::{BTreeMap, HashMap};

/// Default pseudo-observation weight of the optimizer's static prior in
/// each operator posterior: small enough that the first real batch already
/// moves the ranking, large enough that a 4-row pilot batch cannot collapse
/// a selectivity estimate to 0 or 1.
pub const DEFAULT_PRIOR_STRENGTH: f64 = 8.0;

// ---------------------------------------------------------------------------
// Selectivity tracking
// ---------------------------------------------------------------------------

/// Tracks observed pass rates of the LLM filters of one running query, plus
/// the end-to-end pipeline pass rate that sizes lazy-`LIMIT` batches.
///
/// Operators are keyed by their position in the logical plan (stable across
/// mid-query re-ranking — re-ranking permutes execution order, never plan
/// indices).
///
/// # Examples
///
/// ```
/// use llmqo_relational::SelectivityTracker;
/// let mut t = SelectivityTracker::new(8.0);
/// t.register(1, 0.5); // optimizer prior: uniform over 2 labels
/// t.observe(1, 3, 100); // first batch: 3% pass
/// assert!(t.selectivity(1).unwrap() < 0.1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SelectivityTracker {
    /// Per-operator posteriors, keyed by logical-plan index.
    ops: HashMap<usize, SelectivityPosterior>,
    /// Candidate rows offered to the pipeline vs rows it emitted.
    pipeline: Option<SelectivityPosterior>,
    prior_strength: f64,
}

impl SelectivityTracker {
    /// Creates a tracker whose priors weigh as `strength`
    /// pseudo-observations ([`DEFAULT_PRIOR_STRENGTH`] is the executor's
    /// default).
    pub fn new(strength: f64) -> Self {
        SelectivityTracker {
            ops: HashMap::new(),
            pipeline: None,
            prior_strength: strength,
        }
    }

    /// Registers operator `op` with the optimizer's static `prior` pass
    /// rate. Idempotent: re-registering keeps accumulated observations.
    pub fn register(&mut self, op: usize, prior: f64) {
        let strength = self.prior_strength;
        self.ops
            .entry(op)
            .or_insert_with(|| SelectivityPosterior::new(prior, strength));
    }

    /// Seeds the pipeline posterior with the product of the registered
    /// filter priors — the optimizer's best static guess at the fraction of
    /// scanned rows that reach the result. Idempotent like [`register`].
    ///
    /// [`register`]: SelectivityTracker::register
    pub fn register_pipeline(&mut self, prior: f64) {
        if self.pipeline.is_none() {
            self.pipeline = Some(SelectivityPosterior::new(prior, self.prior_strength));
        }
    }

    /// Records one batch of operator `op`: `passed` of `total` offered rows
    /// survived. Unregistered operators are ignored (non-filter LLM ops
    /// report no selectivity).
    pub fn observe(&mut self, op: usize, passed: u64, total: u64) {
        if let Some(p) = self.ops.get_mut(&op) {
            p.observe(passed, total);
        }
    }

    /// Records one batch of the whole pipeline: of `offered` candidate rows
    /// scanned this batch, `emitted` reached the result set.
    pub fn observe_pipeline(&mut self, emitted: u64, offered: u64) {
        if let Some(p) = self.pipeline.as_mut() {
            p.observe(emitted, offered);
        }
    }

    /// Posterior mean pass rate of operator `op`, if registered.
    pub fn selectivity(&self, op: usize) -> Option<f64> {
        self.ops.get(&op).map(SelectivityPosterior::mean)
    }

    /// Rows operator `op` has been offered so far (0 = prior only).
    pub fn observations(&self, op: usize) -> u64 {
        self.ops
            .get(&op)
            .map_or(0, SelectivityPosterior::observations)
    }

    /// Posterior mean of the pipeline pass rate (result rows per scanned
    /// candidate), if seeded.
    pub fn pipeline_selectivity(&self) -> Option<f64> {
        self.pipeline.as_ref().map(SelectivityPosterior::mean)
    }

    /// Sizes the next lazy-`LIMIT` batch: `ceil(remaining /
    /// pipeline_selectivity)`, clamped into `[floor, available]`. Returns
    /// `None` — caller falls back to doubling — until the pipeline has real
    /// observations (the first batch has nothing to aim with).
    pub fn next_batch_size(
        &self,
        remaining: usize,
        floor: usize,
        available: usize,
    ) -> Option<usize> {
        let p = self.pipeline.as_ref()?;
        if p.observations() == 0 {
            return None;
        }
        // A pipeline that has emitted nothing so far still has a positive
        // Beta mean (the prior's pseudo-passes), so the division is finite;
        // clamp defensively anyway.
        let sel = p.mean().max(1e-6);
        let aimed = (remaining as f64 / sel).ceil() as usize;
        let hi = available.max(1);
        Some(aimed.clamp(floor.clamp(1, hi), hi))
    }
}

// ---------------------------------------------------------------------------
// Session answer cache
// ---------------------------------------------------------------------------

/// What the answer cache remembers about one previously submitted prompt:
/// the serving-side answer record needed to account for the work a hit
/// skips. The executor never caches key-field (position-sensitive) queries
/// — their labeler draws depend on the schedule, which a hit does not have
/// — so no positional state needs to be stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Prompt tokens (instruction + fields) the original request sent.
    pub prompt_tokens: u64,
    /// Output tokens the original request decoded.
    pub output_tokens: u64,
}

/// Running hit/miss counters of an [`AnswerCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnswerCacheStats {
    /// Rows answered from the cache (no engine request issued).
    pub hits: u64,
    /// Rows that missed and were submitted (post-dedup) to the engine.
    pub misses: u64,
    /// Distinct prompts currently stored.
    pub entries: u64,
    /// Entries dropped by the LRU budget (0 for an unbounded cache).
    pub evictions: u64,
}

impl AnswerCacheStats {
    /// Fraction of looked-up rows served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One entry of an exported [`AnswerCache`] snapshot: the instruction text
/// (interned ids are executor-local, so the snapshot carries the text), the
/// FNV-1a hash of the row's serialized projected fields, the entry's byte
/// charge against the cache budget, and the cached answer. The row key
/// itself is *not* stored — the cache keys by hash, and a resumed executor
/// re-derives hashes from live rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshotEntry {
    /// Interned instruction text (the operator's cache identity).
    pub instruction: String,
    /// FNV-1a hash of the row's serialized projected fields.
    pub key_hash: u64,
    /// Bytes this entry charges against [`AnswerCache`] byte budgets.
    pub bytes: usize,
    /// The cached serving-side answer record.
    pub answer: CachedAnswer,
}

/// Fixed per-entry byte charge on top of the row key's length: the hashed
/// key, the answer record, and map bookkeeping.
const ENTRY_OVERHEAD_BYTES: usize = 48;

/// FNV-1a over the row-key bytes — a tiny, dependency-free, deterministic
/// 64-bit hash. 64 bits over session-scale entry counts (thousands) makes
/// accidental collisions vanishingly rare; debug builds additionally audit
/// every hit against the full key text.
fn fnv1a(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// What one cache slot stores besides its identity.
#[derive(Debug, Clone, Copy)]
struct Slot {
    answer: CachedAnswer,
    /// Byte charge (key length + [`ENTRY_OVERHEAD_BYTES`]).
    bytes: usize,
    /// Recency stamp; key into the LRU `order` map.
    seq: u64,
}

/// A session-scoped exact answer cache: maps *prompt identity* —
/// instruction text plus the row's serialized projected fields, in query
/// field order — to the [`CachedAnswer`] of the request that first carried
/// it. Lives on the [`QueryExecutor`](crate::QueryExecutor), so hits
/// short-circuit repeated prompts across operator batches, across operators
/// within a statement, and across successive queries on the same executor.
///
/// Instructions are interned once per operator (they repeat across every
/// row of a stage) and row keys are stored as 64-bit FNV-1a hashes, so each
/// entry costs a small fixed amount regardless of row width. Debug builds
/// keep the full key text beside each slot and assert on every hit that the
/// hash did not collide.
///
/// The cache is unbounded by default (byte-identical to the pre-budget
/// behavior). [`bounded`](AnswerCache::bounded) /
/// [`set_budget`](AnswerCache::set_budget) impose entry and/or byte
/// budgets, enforced by least-recently-*used* eviction (lookups refresh
/// recency, inserts start fresh).
#[derive(Debug, Default)]
pub struct AnswerCache {
    instructions: HashMap<String, u32>,
    /// Interned instruction texts by id (for snapshot export).
    names: Vec<String>,
    /// `(instruction id, key hash)` → slot.
    entries: HashMap<(u32, u64), Slot>,
    /// Recency stamp → entry key; the LRU eviction order.
    order: BTreeMap<u64, (u32, u64)>,
    next_seq: u64,
    cur_bytes: usize,
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Full key text per live slot, for the hash-collision audit. Absorbed
    /// snapshot entries have no key text and are exempt.
    #[cfg(debug_assertions)]
    audit: HashMap<(u32, u64), String>,
}

impl AnswerCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        AnswerCache::default()
    }

    /// Creates an empty cache with entry and/or byte budgets (`None` =
    /// unlimited on that axis).
    pub fn bounded(max_entries: Option<usize>, max_bytes: Option<usize>) -> Self {
        AnswerCache {
            max_entries,
            max_bytes,
            ..AnswerCache::default()
        }
    }

    /// Re-budgets a live cache, evicting least-recently-used entries
    /// immediately if the new budget is already exceeded.
    pub fn set_budget(&mut self, max_entries: Option<usize>, max_bytes: Option<usize>) {
        self.max_entries = max_entries;
        self.max_bytes = max_bytes;
        self.enforce_budget();
    }

    /// Interns an instruction text, returning the id to use in
    /// [`lookup`](AnswerCache::lookup)/[`insert`](AnswerCache::insert).
    pub fn instruction_id(&mut self, instruction: &str) -> u32 {
        if let Some(&id) = self.instructions.get(instruction) {
            return id;
        }
        let id = self.instructions.len() as u32;
        self.instructions.insert(instruction.to_owned(), id);
        self.names.push(instruction.to_owned());
        id
    }

    /// Looks up one row's prompt, counting the outcome in the stats. A hit
    /// refreshes the entry's LRU recency.
    pub fn lookup(&mut self, instruction: u32, row_key: &str) -> Option<CachedAnswer> {
        let k = (instruction, fnv1a(row_key));
        if let Some(slot) = self.entries.get_mut(&k) {
            #[cfg(debug_assertions)]
            if let Some(original) = self.audit.get(&k) {
                debug_assert_eq!(
                    original, row_key,
                    "FNV-1a key collision in AnswerCache (instruction {instruction})"
                );
            }
            self.order.remove(&slot.seq);
            slot.seq = self.next_seq;
            self.next_seq += 1;
            self.order.insert(slot.seq, k);
            self.hits += 1;
            Some(slot.answer)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Stores the answer record of a freshly submitted prompt. First write
    /// wins; a duplicate insert (two novel rows deduped into one request)
    /// is a no-op. May evict least-recently-used entries if a budget is
    /// set.
    pub fn insert(&mut self, instruction: u32, row_key: String, answer: CachedAnswer) {
        let k = (instruction, fnv1a(&row_key));
        if self.entries.contains_key(&k) {
            #[cfg(debug_assertions)]
            if let Some(original) = self.audit.get(&k) {
                debug_assert_eq!(
                    original, &row_key,
                    "FNV-1a key collision in AnswerCache (instruction {instruction})"
                );
            }
            return;
        }
        let bytes = row_key.len() + ENTRY_OVERHEAD_BYTES;
        #[cfg(debug_assertions)]
        self.audit.insert(k, row_key);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(k, Slot { answer, bytes, seq });
        self.order.insert(seq, k);
        self.cur_bytes += bytes;
        self.enforce_budget();
    }

    /// Evicts least-recently-used entries until both budgets hold.
    fn enforce_budget(&mut self) {
        loop {
            let over_entries = self.max_entries.is_some_and(|m| self.entries.len() > m);
            let over_bytes = self.max_bytes.is_some_and(|m| self.cur_bytes > m);
            if !over_entries && !over_bytes {
                return;
            }
            let Some((&seq, &k)) = self.order.iter().next() else {
                return;
            };
            self.order.remove(&seq);
            if let Some(slot) = self.entries.remove(&k) {
                self.cur_bytes = self.cur_bytes.saturating_sub(slot.bytes);
            }
            #[cfg(debug_assertions)]
            self.audit.remove(&k);
            self.evictions += 1;
        }
    }

    /// Exports every live entry, sorted by `(instruction, key_hash)` so the
    /// snapshot is deterministic regardless of hash-map iteration order.
    /// The foundation of statement checkpointing
    /// ([`StatementCheckpoint`](crate::StatementCheckpoint)).
    pub fn export(&self) -> Vec<CacheSnapshotEntry> {
        let mut out: Vec<CacheSnapshotEntry> = self
            .entries
            .iter()
            .map(|(&(id, key_hash), slot)| CacheSnapshotEntry {
                instruction: self.names[id as usize].clone(),
                key_hash,
                bytes: slot.bytes,
                answer: slot.answer,
            })
            .collect();
        out.sort_by(|a, b| {
            a.instruction
                .cmp(&b.instruction)
                .then(a.key_hash.cmp(&b.key_hash))
        });
        out
    }

    /// Merges a snapshot produced by [`export`](AnswerCache::export) into
    /// this cache (re-interning instruction texts). Existing entries win
    /// over snapshot entries; budgets are enforced after the merge.
    pub fn absorb(&mut self, snapshot: &[CacheSnapshotEntry]) {
        for e in snapshot {
            let id = self.instruction_id(&e.instruction);
            let k = (id, e.key_hash);
            if self.entries.contains_key(&k) {
                continue;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.insert(
                k,
                Slot {
                    answer: e.answer,
                    bytes: e.bytes,
                    seq,
                },
            );
            self.order.insert(seq, k);
            self.cur_bytes += e.bytes;
        }
        self.enforce_budget();
    }

    /// Hit/miss/entry/eviction counters.
    pub fn stats(&self) -> AnswerCacheStats {
        AnswerCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len() as u64,
            evictions: self.evictions,
        }
    }

    /// Distinct prompts currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry and counter (e.g. between unrelated workloads
    /// sharing one executor). Budgets are kept.
    pub fn clear(&mut self) {
        self.instructions.clear();
        self.names.clear();
        self.entries.clear();
        self.order.clear();
        self.next_seq = 0;
        self.cur_bytes = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        #[cfg(debug_assertions)]
        self.audit.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_converges_to_observed_rate() {
        let mut t = SelectivityTracker::new(DEFAULT_PRIOR_STRENGTH);
        t.register(2, 0.5);
        assert_eq!(t.selectivity(2), Some(0.5));
        assert_eq!(t.observations(2), 0);
        for _ in 0..20 {
            t.observe(2, 5, 100);
        }
        let s = t.selectivity(2).unwrap();
        assert!((s - 0.05).abs() < 0.01, "{s}");
        assert_eq!(t.observations(2), 2000);
        // Unregistered ops: ignored observations, no estimate.
        t.observe(9, 1, 1);
        assert_eq!(t.selectivity(9), None);
        assert_eq!(t.observations(9), 0);
    }

    #[test]
    fn register_is_idempotent_and_keeps_observations() {
        let mut t = SelectivityTracker::new(4.0);
        t.register(1, 0.5);
        t.observe(1, 0, 100);
        let after = t.selectivity(1).unwrap();
        t.register(1, 0.9); // late duplicate must not reset the posterior
        assert_eq!(t.selectivity(1), Some(after));
    }

    #[test]
    fn batch_sizing_aims_at_remaining_over_selectivity() {
        let mut t = SelectivityTracker::new(8.0);
        t.register_pipeline(0.5);
        // No observations yet → caller falls back to doubling.
        assert_eq!(t.next_batch_size(10, 32, 1000), None);
        t.observe_pipeline(10, 100); // ~10% of scanned rows reach the result
        let sel = t.pipeline_selectivity().unwrap();
        let n = t.next_batch_size(10, 4, 1000).unwrap();
        assert_eq!(n, (10.0 / sel).ceil() as usize);
        // Clamped by the floor and by the rows actually available; a floor
        // above the available rows collapses to the available rows.
        assert_eq!(t.next_batch_size(1, 32, 1000), Some(32));
        assert_eq!(t.next_batch_size(500, 4, 64), Some(64));
        assert_eq!(t.next_batch_size(1, 32, 3), Some(3));
    }

    #[test]
    fn batch_sizing_survives_zero_emission_batches() {
        let mut t = SelectivityTracker::new(2.0);
        t.register_pipeline(0.5);
        t.observe_pipeline(0, 10_000);
        // The Beta prior keeps the mean positive; the aim is huge but
        // finite, clamped to what is available.
        assert_eq!(t.next_batch_size(5, 32, 700), Some(700));
    }

    #[test]
    fn cache_hits_and_interning() {
        let mut c = AnswerCache::new();
        let i1 = c.instruction_id("Is it good?");
        let i2 = c.instruction_id("Is it good?");
        assert_eq!(i1, i2);
        let i3 = c.instruction_id("Is it bad?");
        assert_ne!(i1, i3);

        assert_eq!(c.lookup(i1, "\"a\": \"x\", "), None);
        let ans = CachedAnswer {
            prompt_tokens: 40,
            output_tokens: 2,
        };
        c.insert(i1, "\"a\": \"x\", ".into(), ans);
        assert_eq!(c.lookup(i1, "\"a\": \"x\", "), Some(ans));
        // Same fields under a different instruction: distinct prompt.
        assert_eq!(c.lookup(i3, "\"a\": \"x\", "), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.len(), 1);

        // First write wins.
        c.insert(
            i1,
            "\"a\": \"x\", ".into(),
            CachedAnswer {
                prompt_tokens: 999,
                output_tokens: 9,
            },
        );
        assert_eq!(c.lookup(i1, "\"a\": \"x\", ").unwrap().prompt_tokens, 40);

        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), AnswerCacheStats::default());
    }

    fn ans(n: u64) -> CachedAnswer {
        CachedAnswer {
            prompt_tokens: n,
            output_tokens: 1,
        }
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let mut c = AnswerCache::bounded(Some(2), None);
        let i = c.instruction_id("q");
        c.insert(i, "a".into(), ans(1));
        c.insert(i, "b".into(), ans(2));
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(c.lookup(i, "a"), Some(ans(1)));
        c.insert(i, "c".into(), ans(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(i, "b"), None);
        assert_eq!(c.lookup(i, "a"), Some(ans(1)));
        assert_eq!(c.lookup(i, "c"), Some(ans(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_and_rebudget_evict() {
        // Each entry charges key length + fixed overhead; a budget of ~2.5
        // entries holds 2.
        let per_entry = 1 + ENTRY_OVERHEAD_BYTES;
        let mut c = AnswerCache::bounded(None, Some(per_entry * 5 / 2));
        let i = c.instruction_id("q");
        for (n, k) in ["a", "b", "c"].iter().enumerate() {
            c.insert(i, (*k).into(), ans(n as u64));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        // Tightening the budget on a live cache evicts immediately.
        c.set_budget(Some(1), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(i, "c"), Some(ans(2)));
    }

    #[test]
    fn export_absorb_round_trips_and_is_sorted() {
        let mut c = AnswerCache::new();
        let i1 = c.instruction_id("q1");
        let i2 = c.instruction_id("q2");
        c.insert(i1, "x".into(), ans(1));
        c.insert(i2, "y".into(), ans(2));
        c.insert(i1, "z".into(), ans(3));
        let snap = c.export();
        assert_eq!(snap.len(), 3);
        assert!(snap
            .windows(2)
            .all(|w| (&w[0].instruction, w[0].key_hash) <= (&w[1].instruction, w[1].key_hash)));

        // A fresh cache absorbing the snapshot serves the same answers,
        // even with instructions interned in a different order.
        let mut d = AnswerCache::new();
        let j2 = d.instruction_id("q2");
        d.absorb(&snap);
        let j1 = d.instruction_id("q1");
        assert_eq!(d.len(), 3);
        assert_eq!(d.lookup(j1, "x"), Some(ans(1)));
        assert_eq!(d.lookup(j2, "y"), Some(ans(2)));
        assert_eq!(d.lookup(j1, "z"), Some(ans(3)));
        // Existing entries win over absorbed duplicates.
        let mut e = AnswerCache::new();
        let k1 = e.instruction_id("q1");
        e.insert(k1, "x".into(), ans(9));
        e.absorb(&snap);
        assert_eq!(e.lookup(k1, "x"), Some(ans(9)));
        assert_eq!(e.len(), 3);
    }
}
