//! Table schemas.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// UTF-8 text.
    Str,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Str => "str",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of fields.
///
/// # Examples
///
/// ```
/// use llmqo_relational::{DataType, Field, Schema};
/// let schema = Schema::new(vec![
///     Field::new("review", DataType::Str),
///     Field::new("rating", DataType::Int),
/// ]);
/// assert_eq!(schema.index_of("rating"), Some(1));
/// assert_eq!(schema.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// A schema of all-string fields with the given names (the common case
    /// for LLM-facing tables).
    pub fn of_strings(names: &[&str]) -> Self {
        Schema {
            fields: names
                .iter()
                .map(|n| Field::new(*n, DataType::Str))
                .collect(),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// All field names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::of_strings(&["a", "b", "c"]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn typed_fields() {
        let s = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Bool),
        ]);
        assert_eq!(s.field(0).dtype, DataType::Int);
        assert_eq!(s.field(1).dtype.to_string(), "bool");
    }

    #[test]
    fn datatype_display() {
        assert_eq!(DataType::Str.to_string(), "str");
        assert_eq!(DataType::Float.to_string(), "float");
    }
}
