//! Query execution: optimizer → serving engine → output parsing.
//!
//! [`QueryExecutor`] implements the paper's end-to-end pipeline (§5): the
//! input table is lowered to the optimizer's representation, a
//! [`Reorderer`] produces a request schedule, each scheduled row becomes one
//! engine request (instruction prefix + field fragments in the scheduled
//! order), the serving simulator replays the batch, and a simulated model
//! produces per-row outputs that are parsed back into relational results.
//!
//! Reordering is *semantics-preserving by construction*: schedules are
//! validated permutations and every output is keyed by its original row
//! index.

use crate::prompt::encode_table;
use crate::query::{LlmQuery, QueryKind};
use crate::table::{Table, TableError};
use llmqo_core::{phc_of_plan, FunctionalDeps, PhcReport, Reorderer, SolveError};
use llmqo_serve::{EngineError, EngineReport, GenRequest, SimEngine, SimLlm, SimRequest};
use llmqo_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from query execution.
#[derive(Debug)]
pub enum ExecError {
    /// Table/column errors (unknown field, arity).
    Table(TableError),
    /// The reordering solver failed (budget exhausted, FD mismatch).
    Solve(SolveError),
    /// The serving engine could not run the batch.
    Engine(EngineError),
    /// The query listed no fields.
    EmptyFields,
    /// A non-final stage of a multi-invocation chain was not a filter.
    NotAFilter {
        /// The offending stage's name.
        stage: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Table(e) => write!(f, "table error: {e}"),
            ExecError::Solve(e) => write!(f, "solver error: {e}"),
            ExecError::Engine(e) => write!(f, "engine error: {e}"),
            ExecError::EmptyFields => write!(f, "query must pass at least one field"),
            ExecError::NotAFilter { stage } => {
                write!(
                    f,
                    "non-final multi-invocation stage {stage} must be a filter"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<TableError> for ExecError {
    fn from(e: TableError) -> Self {
        ExecError::Table(e)
    }
}

impl From<SolveError> for ExecError {
    fn from(e: SolveError) -> Self {
        ExecError::Solve(e)
    }
}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Engine(e)
    }
}

/// Everything measured while executing one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Query name.
    pub query: String,
    /// Solver name (`"ggr"`, `"original"`, …).
    pub solver: String,
    /// Solver wall-clock time (paper Table 5).
    pub solve_time_s: f64,
    /// The solver's claimed PHC.
    pub claimed_phc: u64,
    /// Ground-truth field-level PHC of the schedule.
    pub field_phc: PhcReport,
    /// Serving-side results (job completion time, PHR, …).
    pub engine: EngineReport,
}

/// One row's model output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowOutput {
    /// Original row index in the input table.
    pub row: usize,
    /// The model's answer text.
    pub text: String,
}

/// Result of executing one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutput {
    /// Per-row outputs, sorted by original row index.
    pub outputs: Vec<RowOutput>,
    /// For filters: original row indices passing the predicate, ascending.
    pub selected_rows: Vec<usize>,
    /// For aggregations: the average of parsed numeric outputs.
    pub aggregate: Option<f64>,
    /// Measurements.
    pub report: ExecutionReport,
}

/// Executes [`LlmQuery`]s against a [`SimEngine`] with a pluggable
/// reordering policy.
///
/// # Examples
///
/// See the crate-level documentation for a full pipeline example.
pub struct QueryExecutor<'a> {
    engine: &'a SimEngine,
    llm: &'a dyn SimLlm,
    tokenizer: Tokenizer,
}

impl<'a> fmt::Debug for QueryExecutor<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryExecutor")
            .field("tokenizer", &self.tokenizer)
            .finish_non_exhaustive()
    }
}

impl<'a> QueryExecutor<'a> {
    /// Creates an executor.
    pub fn new(engine: &'a SimEngine, llm: &'a dyn SimLlm, tokenizer: Tokenizer) -> Self {
        QueryExecutor {
            engine,
            llm,
            tokenizer,
        }
    }

    /// Executes `query` over `table`, scheduling requests with `reorderer`.
    ///
    /// `fds` are functional dependencies over the *full table schema*; they
    /// are projected onto the query's fields automatically. `truth` supplies
    /// the ground-truth answer per original row index (the dataset's labels).
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn execute(
        &self,
        table: &Table,
        query: &LlmQuery,
        reorderer: &dyn Reorderer,
        fds: &FunctionalDeps,
        truth: &dyn Fn(usize) -> String,
    ) -> Result<QueryOutput, ExecError> {
        if query.fields.is_empty() {
            return Err(ExecError::EmptyFields);
        }
        let encoded = encode_table(&self.tokenizer, table, query)?;
        let projected = project_fds(fds, &encoded.used_cols);
        let solution = reorderer.reorder(&encoded.reorder, &projected)?;
        debug_assert!(solution.plan.validate(&encoded.reorder).is_ok());
        let field_phc = phc_of_plan(&encoded.reorder, &solution.plan);

        let requests = plan_requests(&encoded, &solution.plan, query);
        let engine_report = self.engine.run(&requests)?;

        // Generate and parse outputs (original row order for determinism).
        let key_col = query
            .key_field
            .as_deref()
            .and_then(|k| query.fields.iter().position(|f| f == k));
        let mut outputs: Vec<RowOutput> = solution
            .plan
            .rows
            .iter()
            .map(|rp| {
                let key_field_pos = match key_col {
                    Some(k) if rp.fields.len() > 1 => {
                        let pos = rp
                            .fields
                            .iter()
                            .position(|&f| f as usize == k)
                            .expect("plans carry every field");
                        pos as f64 / (rp.fields.len() - 1) as f64
                    }
                    _ => 0.5,
                };
                let truth_text = truth(rp.row);
                let text = self.llm.generate(&GenRequest {
                    row_id: rp.row as u64,
                    truth: &truth_text,
                    label_space: &query.label_space,
                    key_field_pos,
                });
                RowOutput { row: rp.row, text }
            })
            .collect();
        outputs.sort_by_key(|o| o.row);

        let selected_rows = match (&query.kind, &query.predicate_label) {
            (QueryKind::Filter, Some(label)) => outputs
                .iter()
                .filter(|o| &o.text == label)
                .map(|o| o.row)
                .collect(),
            _ => Vec::new(),
        };
        let aggregate = if query.kind == QueryKind::Aggregation {
            let scores: Vec<f64> = outputs
                .iter()
                .filter_map(|o| o.text.trim().parse::<f64>().ok())
                .collect();
            if scores.is_empty() {
                None
            } else {
                Some(scores.iter().sum::<f64>() / scores.len() as f64)
            }
        } else {
            None
        };

        Ok(QueryOutput {
            outputs,
            selected_rows,
            aggregate,
            report: ExecutionReport {
                query: query.name.clone(),
                solver: reorderer.name().to_owned(),
                solve_time_s: solution.solve_time.as_secs_f64(),
                claimed_phc: solution.claimed_phc,
                field_phc,
                engine: engine_report,
            },
        })
    }

    /// Executes a multi-LLM invocation chain (paper T3): every stage but the
    /// last must be a filter; each stage runs over the rows selected by the
    /// previous one. Row indices in all outputs refer to the *original*
    /// table.
    ///
    /// # Errors
    ///
    /// See [`ExecError`]; additionally [`ExecError::NotAFilter`] if a
    /// non-final stage is not a filter query.
    pub fn execute_multi(
        &self,
        table: &Table,
        stages: &[&LlmQuery],
        reorderer: &dyn Reorderer,
        fds: &FunctionalDeps,
        truths: &[&dyn Fn(usize) -> String],
    ) -> Result<Vec<QueryOutput>, ExecError> {
        assert_eq!(
            stages.len(),
            truths.len(),
            "one ground-truth provider per stage"
        );
        let mut results = Vec::with_capacity(stages.len());
        let mut current = table.clone();
        // Maps current-table row indices to original indices.
        let mut row_map: Vec<usize> = (0..table.nrows()).collect();
        for (i, (stage, truth)) in stages.iter().zip(truths).enumerate() {
            let is_last = i + 1 == stages.len();
            if !is_last && stage.kind != QueryKind::Filter {
                return Err(ExecError::NotAFilter {
                    stage: stage.name.clone(),
                });
            }
            let mapped_truth = |local: usize| truth(row_map[local]);
            let mut out = self.execute(&current, stage, reorderer, fds, &mapped_truth)?;
            // Translate local row indices back to original ones.
            for o in &mut out.outputs {
                o.row = row_map[o.row];
            }
            let selected_local: Vec<usize> =
                std::mem::take(&mut out.selected_rows).into_iter().collect();
            out.selected_rows = selected_local.iter().map(|&r| row_map[r]).collect();
            if !is_last {
                current = current.select_rows(&selected_local);
                row_map = selected_local.iter().map(|&r| row_map[r]).collect();
            }
            results.push(out);
        }
        Ok(results)
    }
}

/// Builds the engine request stream for a schedule: one [`SimRequest`] per
/// scheduled row, carrying the query's instruction prefix followed by the
/// row's field fragments in scheduled order. Fragments are `Arc`-shared with
/// the [`EncodedTable`](crate::EncodedTable), so equal field values across
/// rows share token storage. Request ids are *original* row indices, and
/// output lengths are the executor's deterministic per-row draws — callers
/// (the executor itself, benchmarks, the cluster router) therefore all
/// serve byte-identical workloads for a given plan.
pub fn plan_requests(
    encoded: &crate::EncodedTable,
    plan: &llmqo_core::ReorderPlan,
    query: &LlmQuery,
) -> Vec<SimRequest> {
    plan.rows
        .iter()
        .map(|rp| {
            let mut prompt = Vec::with_capacity(1 + rp.fields.len());
            prompt.push(encoded.instruction.clone());
            for &f in &rp.fields {
                let cell = encoded.reorder.cell(rp.row, f as usize);
                prompt.push(encoded.fragments[cell.value.as_u32() as usize].clone());
            }
            SimRequest {
                id: rp.row,
                prompt,
                output_len: sample_output_len(&query.name, rp.row, query.output_tokens_mean),
            }
        })
        .collect()
}

/// Projects full-schema functional dependencies onto the used columns,
/// renumbering to the encoded table's column space.
pub fn project_fds(fds: &FunctionalDeps, used_cols: &[usize]) -> FunctionalDeps {
    let groups: Vec<Vec<u32>> = fds
        .groups()
        .into_iter()
        .filter_map(|group| {
            let members: Vec<u32> = group
                .iter()
                .filter_map(|&c| {
                    used_cols
                        .iter()
                        .position(|&u| u == c as usize)
                        .map(|p| p as u32)
                })
                .collect();
            (members.len() >= 2).then_some(members)
        })
        .collect();
    FunctionalDeps::from_groups(used_cols.len(), groups)
        .expect("projected indices are in range by construction")
}

/// Deterministic per-row output length around the query's mean (±25%).
fn sample_output_len(query_name: &str, row: usize, mean: f64) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in query_name.bytes().chain((row as u64).to_le_bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let len = mean * (0.75 + 0.5 * unit);
    len.round().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use llmqo_core::{Ggr, OriginalOrder};
    use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm};

    fn engine() -> SimEngine {
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        )
    }

    fn table(n: usize) -> Table {
        let mut t = Table::new(Schema::of_strings(&["review", "product"]));
        for i in 0..n {
            t.push_row(vec![
                format!("review text number {i} with some unique words").into(),
                format!("product description {} shared across rows", i / 5).into(),
            ])
            .unwrap();
        }
        t
    }

    fn filter_query() -> LlmQuery {
        LlmQuery::filter(
            "test-filter",
            "Is the review positive? Answer Yes or No.",
            vec!["review".into(), "product".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        )
    }

    #[test]
    fn oracle_filter_selects_exactly_truth_rows() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(20);
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let out = ex
            .execute(
                &t,
                &filter_query(),
                &OriginalOrder,
                &FunctionalDeps::empty(2),
                &truth,
            )
            .unwrap();
        let expected: Vec<usize> = (0..20).filter(|r| r % 2 == 0).collect();
        assert_eq!(out.selected_rows, expected);
        assert_eq!(out.outputs.len(), 20);
    }

    #[test]
    fn reordering_preserves_semantics_with_oracle() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(30);
        let truth = |row: usize| {
            if row.is_multiple_of(3) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let fds = FunctionalDeps::empty(2);
        let a = ex
            .execute(&t, &filter_query(), &OriginalOrder, &fds, &truth)
            .unwrap();
        let b = ex
            .execute(&t, &filter_query(), &Ggr::default(), &fds, &truth)
            .unwrap();
        assert_eq!(a.selected_rows, b.selected_rows);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn ggr_improves_hit_rate_and_runtime() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(300);
        let truth = |_: usize| "Yes".to_string();
        let fds = FunctionalDeps::empty(2);
        let orig = ex
            .execute(&t, &filter_query(), &OriginalOrder, &fds, &truth)
            .unwrap();
        let ggr = ex
            .execute(&t, &filter_query(), &Ggr::default(), &fds, &truth)
            .unwrap();
        assert!(
            ggr.report.engine.prefix_hit_rate() > orig.report.engine.prefix_hit_rate(),
            "GGR {} vs original {}",
            ggr.report.engine.prefix_hit_rate(),
            orig.report.engine.prefix_hit_rate()
        );
        assert!(ggr.report.engine.job_completion_time_s < orig.report.engine.job_completion_time_s);
        assert!(ggr.report.field_phc.phc >= orig.report.field_phc.phc);
    }

    #[test]
    fn aggregation_averages_scores() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(10);
        let q = LlmQuery::aggregation(
            "agg",
            "Rate 1-5.",
            vec!["review".into(), "product".into()],
            (1, 5),
            2.0,
        );
        let truth = |row: usize| ((row % 5) + 1).to_string();
        let out = ex
            .execute(&t, &q, &OriginalOrder, &FunctionalDeps::empty(2), &truth)
            .unwrap();
        assert_eq!(out.aggregate, Some(3.0));
    }

    #[test]
    fn multi_invocation_chains_filters() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(12);
        let f = filter_query();
        let p = LlmQuery::projection(
            "proj",
            "Summarize the good qualities.",
            vec!["review".into(), "product".into()],
            12.0,
        );
        let truth_filter = |row: usize| if row < 6 { "Yes".into() } else { "No".into() };
        let truth_proj = |row: usize| format!("summary of row {row}");
        let results = ex
            .execute_multi(
                &t,
                &[&f, &p],
                &Ggr::default(),
                &FunctionalDeps::empty(2),
                &[&truth_filter, &truth_proj],
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].selected_rows, vec![0, 1, 2, 3, 4, 5]);
        // Stage 2 ran only over selected rows, reported in original indices.
        let stage2_rows: Vec<usize> = results[1].outputs.iter().map(|o| o.row).collect();
        assert_eq!(stage2_rows, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(results[1].outputs[3].text, "summary of row 3");
    }

    #[test]
    fn non_filter_first_stage_rejected() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(4);
        let p = LlmQuery::projection("p", "x", vec!["review".into()], 4.0);
        let truth = |_: usize| String::new();
        let err = ex
            .execute_multi(
                &t,
                &[&p, &p],
                &OriginalOrder,
                &FunctionalDeps::empty(2),
                &[&truth, &truth],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::NotAFilter { .. }));
    }

    #[test]
    fn unknown_field_surfaces() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(2);
        let mut q = filter_query();
        q.fields = vec!["nope".into()];
        let truth = |_: usize| "Yes".into();
        assert!(matches!(
            ex.execute(&t, &q, &OriginalOrder, &FunctionalDeps::empty(2), &truth),
            Err(ExecError::Table(TableError::UnknownColumn { .. }))
        ));
    }

    #[test]
    fn empty_fields_rejected() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(2);
        let mut q = filter_query();
        q.fields = vec![];
        let truth = |_: usize| "Yes".into();
        assert!(matches!(
            ex.execute(&t, &q, &OriginalOrder, &FunctionalDeps::empty(2), &truth),
            Err(ExecError::EmptyFields)
        ));
    }

    #[test]
    fn project_fds_renumbers() {
        // Full schema: 5 columns, group {1, 3}; used columns [3, 1, 4].
        let fds = FunctionalDeps::from_groups(5, vec![vec![1, 3]]).unwrap();
        let p = project_fds(&fds, &[3, 1, 4]);
        assert_eq!(p.ncols(), 3);
        assert_eq!(p.inferred(0), &[1]); // col 3 → pos 0, col 1 → pos 1
        assert_eq!(p.inferred(1), &[0]);
        assert!(p.inferred(2).is_empty());
    }

    #[test]
    fn project_fds_drops_broken_groups() {
        let fds = FunctionalDeps::from_groups(4, vec![vec![0, 2]]).unwrap();
        let p = project_fds(&fds, &[0, 1]); // col 2 not used → group dissolves
        assert!(p.is_trivial());
    }

    #[test]
    fn output_len_sampling_is_stable_and_near_mean() {
        let a = sample_output_len("q", 7, 100.0);
        let b = sample_output_len("q", 7, 100.0);
        assert_eq!(a, b);
        assert!((75..=125).contains(&a));
        assert_eq!(sample_output_len("q", 1, 0.4), 1, "clamped to ≥1");
    }

    #[test]
    fn key_field_position_reaches_labeler() {
        use llmqo_serve::ModelProfile;
        // A maximally order-sensitive model must answer differently when the
        // key field moves; with the oracle it cannot. Smoke-check wiring by
        // asserting both run.
        let eng = engine();
        let profile = ModelProfile::llama3_8b().with_base_accuracy(0.5);
        let ex = QueryExecutor::new(&eng, &profile, Tokenizer::new());
        let t = table(40);
        let q = filter_query().with_key_field("review");
        let truth = |_: usize| "Yes".to_string();
        let out = ex
            .execute(&t, &q, &Ggr::default(), &FunctionalDeps::empty(2), &truth)
            .unwrap();
        assert_eq!(out.outputs.len(), 40);
        let yes = out.selected_rows.len();
        assert!(yes > 0 && yes < 40, "profile should be imperfect: {yes}");
    }
}
