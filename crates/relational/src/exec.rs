//! Query execution: optimizer → serving engine → output parsing.
//!
//! [`QueryExecutor`] implements the paper's end-to-end pipeline (§5): the
//! input table is lowered to the optimizer's representation, a
//! [`Reorderer`] produces a request schedule, each scheduled row becomes one
//! engine request (instruction prefix + field fragments in the scheduled
//! order), the serving simulator replays the batch, and a simulated model
//! produces per-row outputs that are parsed back into relational results.
//!
//! The physical layer is *batch-oriented*: [`run_llm_rows`] evaluates one
//! query over any row subset against an incremental stage engine (one
//! [`llmqo_serve::EngineSession`], or a routed replica group in the
//! cluster-parallel mode), optionally answering rows whose exact prompt was
//! already submitted from the executor's **session answer cache**
//! ([`crate::AnswerCache`]) and **deduplicating** the remaining rows whose
//! projected field values are identical so each distinct prompt hits the
//! engine once (the solver then runs on the novel, dedup-compacted batch).
//! [`execute`] is the single-shot wrapper; the SQL runner drives the same
//! primitive batch by batch for lazy `LIMIT` and adaptive execution.
//!
//! [`run_llm_rows`]: QueryExecutor::run_llm_rows
//!
//! Reordering is *semantics-preserving by construction*: schedules are
//! validated permutations and every output is keyed by its original row
//! index. Deduplication and the answer cache share engine requests, not
//! answers: the simulated labeler is this harness's per-row measurement
//! instrument (accuracy studies couple its draws by row), so every row
//! still receives its own generated output and optimizations cannot change
//! query results.

use crate::adaptive::{AnswerCache, AnswerCacheStats, CacheSnapshotEntry, CachedAnswer};
use crate::optimizer::OptStats;
use crate::pipeline::{StageEngine, PREFIX_KEY_DEPTH};
use crate::prompt::{encode_table_rows, field_fragment};
use crate::query::{LlmQuery, QueryKind};
use crate::table::{Table, TableError};
use llmqo_core::{phc_of_plan, FunctionalDeps, PhcReport, Reorderer, SolveError};
use llmqo_costmodel::CascadePlan;
use llmqo_serve::{
    fault_unit, EngineError, EngineReport, GenRequest, SimEngine, SimLlm, SimRequest,
};
use llmqo_tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// Errors from query execution.
#[derive(Debug)]
pub enum ExecError {
    /// Table/column errors (unknown field, arity).
    Table(TableError),
    /// The reordering solver failed (budget exhausted, FD mismatch).
    Solve(SolveError),
    /// The serving engine could not run the batch.
    Engine(EngineError),
    /// The query listed no fields.
    EmptyFields,
    /// A non-final stage of a multi-invocation chain was not a filter.
    NotAFilter {
        /// The offending stage's name.
        stage: String,
    },
    /// An LLM call kept failing (injected transient errors, see
    /// [`StatementFaults`]) until the per-statement retry budget ran out,
    /// and partial-result mode was off.
    LlmUnavailable {
        /// Original row index of the first row that could not be served.
        row: usize,
        /// Attempts made (the statement budget).
        attempts: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Table(e) => write!(f, "table error: {e}"),
            ExecError::Solve(e) => write!(f, "solver error: {e}"),
            ExecError::Engine(e) => write!(f, "engine error: {e}"),
            ExecError::EmptyFields => write!(f, "query must pass at least one field"),
            ExecError::NotAFilter { stage } => {
                write!(
                    f,
                    "non-final multi-invocation stage {stage} must be a filter"
                )
            }
            ExecError::LlmUnavailable { row, attempts } => {
                write!(
                    f,
                    "LLM call for row {row} failed after {attempts} attempt(s) \
                     and partial results are disabled"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<TableError> for ExecError {
    fn from(e: TableError) -> Self {
        ExecError::Table(e)
    }
}

impl From<SolveError> for ExecError {
    fn from(e: SolveError) -> Self {
        ExecError::Solve(e)
    }
}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Engine(e)
    }
}

/// Everything measured while executing one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Query name.
    pub query: String,
    /// Solver name (`"ggr"`, `"original"`, …).
    pub solver: String,
    /// Solver wall-clock time (paper Table 5).
    pub solve_time_s: f64,
    /// The solver's claimed PHC.
    pub claimed_phc: u64,
    /// Ground-truth field-level PHC of the schedule.
    pub field_phc: PhcReport,
    /// Serving-side results (job completion time, PHR, …).
    pub engine: EngineReport,
    /// SQL-aware optimizer savings (dedup, lazy `LIMIT`).
    pub opt: OptStats,
}

/// One row's model output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowOutput {
    /// Original row index in the input table.
    pub row: usize,
    /// The model's answer text.
    pub text: String,
}

/// Result of executing one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutput {
    /// Per-row outputs, sorted by original row index.
    pub outputs: Vec<RowOutput>,
    /// For filters: original row indices passing the predicate, ascending.
    pub selected_rows: Vec<usize>,
    /// For aggregations: the average of parsed numeric outputs.
    pub aggregate: Option<f64>,
    /// Original row indices whose LLM calls exhausted the
    /// [`StatementFaults`] retry budget, ascending. Empty unless fault
    /// injection was on and `partial_results` degraded the query; these
    /// rows appear in no other output field.
    pub failed_rows: Vec<usize>,
    /// Measurements.
    pub report: ExecutionReport,
}

/// Deterministic per-statement fault injection for the SQL executor: each
/// engine call rolls against `error_ppm` (seeded, pure — reruns reproduce
/// the same failures byte for byte), failed rolls retry as fresh engine
/// requests (warm prefix cache) up to `max_attempts`, and rows still
/// failing degrade per `partial_results` — dropped with a per-row
/// annotation, or a clean [`ExecError::LlmUnavailable`]. Never a panic.
///
/// Rows answered from the session answer cache never reach the engine and
/// therefore never roll: cached answers ride out an outage.
///
/// # Examples
///
/// ```
/// use llmqo_relational::StatementFaults;
///
/// let faults = StatementFaults::new(100_000, 7); // 10% of calls fail
/// assert_eq!(faults.max_attempts, 3);
/// assert!(faults.partial_results);
/// let strict = faults.with_attempts(5).strict();
/// assert!(!strict.partial_results);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatementFaults {
    /// Probability that one engine call fails transiently, in parts per
    /// million (`100_000` = 10%). Zero disables injection entirely.
    pub error_ppm: u32,
    /// Seed for the per-call failure rolls.
    pub seed: u64,
    /// Serving attempts allowed per representative row, **including** the
    /// first (values below 1 behave as 1).
    pub max_attempts: u32,
    /// After the budget: `true` drops the failed rows and annotates them in
    /// [`SqlResult::notes`](crate::SqlResult::notes) (partial results);
    /// `false` fails the statement with [`ExecError::LlmUnavailable`].
    pub partial_results: bool,
}

impl StatementFaults {
    /// Faults at `error_ppm` with seed `seed`, 3 attempts, partial results.
    pub fn new(error_ppm: u32, seed: u64) -> Self {
        StatementFaults {
            error_ppm,
            seed,
            max_attempts: 3,
            partial_results: true,
        }
    }

    /// Overrides the per-row attempt budget.
    #[must_use]
    pub fn with_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Fail the whole statement instead of degrading to partial results.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.partial_results = false;
        self
    }
}

/// Physical-layer options for [`QueryExecutor::execute_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecOptions {
    /// Exact request deduplication: rows with identical projected field
    /// values share one engine request. Off by default (the differential
    /// oracle's behaviour).
    pub dedup: bool,
    /// Session answer cache: rows whose exact prompt (instruction +
    /// serialized projected fields) was ever submitted on this executor are
    /// answered without a new engine request — across batches, operators,
    /// and successive queries. Off by default. Queries with a
    /// [`key_field`](crate::LlmQuery::key_field) are never cached: their
    /// labeler draws depend on where the schedule placed the key field
    /// (the positional-accuracy instrument of Fig. 6), which a cache hit
    /// has no schedule to derive from.
    pub answer_cache: bool,
    /// Deterministic fault injection and graceful degradation. `None` (the
    /// default) and `Some` with a zero `error_ppm` are byte-identical to
    /// fault-free execution.
    pub faults: Option<StatementFaults>,
    /// Model-tier cascade: answer every row on the cheap tier, escalate
    /// rows whose deterministic confidence falls below the plan's
    /// threshold to the expensive tier. `None` (the default) is single-tier
    /// execution; a plan with `escalate_below ≥ 1` is byte-identical to it
    /// (every row takes the expensive answer), and `escalate_below ≤ 0` is
    /// the pure cheap tier. Escalation is a pure function of
    /// `(plan.seed, original row)`, so dedup, caching, batching, and
    /// pipelining never change which rows escalate or what they answer.
    pub cascade: Option<CascadePlan>,
}

impl ExecOptions {
    /// Options with deduplication enabled (answer cache off).
    pub fn deduped() -> Self {
        ExecOptions {
            dedup: true,
            ..ExecOptions::default()
        }
    }

    /// Every physical optimization on: dedup plus the session answer cache.
    pub fn optimized() -> Self {
        ExecOptions {
            dedup: true,
            answer_cache: true,
            faults: None,
            cascade: None,
        }
    }

    /// Options with a model-tier cascade (dedup and answer cache off — the
    /// form the cascade differential suite compares against single-tier
    /// oracles).
    pub fn cascaded(plan: CascadePlan) -> Self {
        ExecOptions {
            cascade: Some(plan),
            ..ExecOptions::default()
        }
    }
}

/// What one batch (or an accumulation of batches) of LLM evaluation
/// produced, before being shaped into a [`QueryOutput`].
#[derive(Debug, Clone, Default)]
pub(crate) struct StageOutcome {
    /// Per-row outputs in original row indices (sorted within a batch).
    pub outputs: Vec<RowOutput>,
    /// Original row indices dropped after exhausting the fault retry
    /// budget (partial-result degradation).
    pub failed_rows: Vec<usize>,
    /// Total solver wall-clock time.
    pub solve_time_s: f64,
    /// Summed claimed PHC across batches.
    pub claimed_phc: u64,
    /// Summed ground-truth PHC across batches.
    pub field_phc: PhcReport,
    /// Optimizer savings.
    pub opt: OptStats,
}

impl StageOutcome {
    /// Folds a later batch's outcome into this one.
    pub fn absorb(&mut self, other: StageOutcome) {
        self.outputs.extend(other.outputs);
        self.failed_rows.extend(other.failed_rows);
        self.solve_time_s += other.solve_time_s;
        self.claimed_phc += other.claimed_phc;
        self.field_phc.phc += other.field_phc.phc;
        self.field_phc.hit_tokens += other.field_phc.hit_tokens;
        self.field_phc.total_tokens += other.field_phc.total_tokens;
        self.opt.add(&other.opt);
    }

    /// Shapes the accumulated outcome into a [`QueryOutput`], deriving the
    /// selection (filters) and the aggregate (aggregations) from outputs.
    pub fn into_query_output(
        mut self,
        query: &LlmQuery,
        solver: &str,
        engine: EngineReport,
    ) -> QueryOutput {
        self.outputs.sort_by_key(|o| o.row);
        self.failed_rows.sort_unstable();
        let selected_rows = match (&query.kind, &query.predicate_label) {
            (QueryKind::Filter, Some(label)) => self
                .outputs
                .iter()
                .filter(|o| &o.text == label)
                .map(|o| o.row)
                .collect(),
            _ => Vec::new(),
        };
        let aggregate = if query.kind == QueryKind::Aggregation {
            let scores: Vec<f64> = self
                .outputs
                .iter()
                .filter_map(|o| o.text.trim().parse::<f64>().ok())
                .collect();
            if scores.is_empty() {
                None
            } else {
                Some(scores.iter().sum::<f64>() / scores.len() as f64)
            }
        } else {
            None
        };
        QueryOutput {
            outputs: self.outputs,
            selected_rows,
            aggregate,
            failed_rows: self.failed_rows,
            report: ExecutionReport {
                query: query.name.clone(),
                solver: solver.to_owned(),
                solve_time_s: self.solve_time_s,
                claimed_phc: self.claimed_phc,
                field_phc: self.field_phc,
                engine,
                opt: self.opt,
            },
        }
    }
}

/// A deterministic snapshot of the LLM work a statement has already paid
/// for: the executor's answer-cache entries, sorted by
/// `(instruction, key hash)`.
///
/// Taken with [`QueryExecutor::checkpoint`] (typically after a
/// mid-statement failure — chaos `all-replicas-lost`, a deadline, a
/// process death) and replayed with [`QueryExecutor::restore`]: the re-run
/// statement answers every checkpointed prompt from the cache and only
/// re-issues the unfinished tail, with byte-identical final rows (cache
/// hits share engine work, never labeler draws — the per-row generation
/// path is untouched).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatementCheckpoint {
    /// Exported answer-cache entries (instruction text + hashed row key).
    pub entries: Vec<CacheSnapshotEntry>,
}

impl StatementCheckpoint {
    /// Number of cached prompts the checkpoint carries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint carries no cached prompts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Executes [`LlmQuery`]s against a [`SimEngine`] with a pluggable
/// reordering policy.
///
/// # Examples
///
/// See the crate-level documentation for a full pipeline example.
pub struct QueryExecutor<'a> {
    engine: &'a SimEngine,
    llm: &'a dyn SimLlm,
    tokenizer: Tokenizer,
    /// Session answer cache (see [`AnswerCache`]): shared by every query
    /// executed on this executor, consulted only when the caller opts in
    /// via [`ExecOptions::answer_cache`]. Interior mutability keeps the
    /// execution API `&self` (the SQL runner holds the executor by shared
    /// reference).
    cache: RefCell<AnswerCache>,
}

impl<'a> fmt::Debug for QueryExecutor<'a> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryExecutor")
            .field("tokenizer", &self.tokenizer)
            .finish_non_exhaustive()
    }
}

impl<'a> QueryExecutor<'a> {
    /// Creates an executor.
    pub fn new(engine: &'a SimEngine, llm: &'a dyn SimLlm, tokenizer: Tokenizer) -> Self {
        QueryExecutor {
            engine,
            llm,
            tokenizer,
            cache: RefCell::new(AnswerCache::new()),
        }
    }

    /// Lifetime hit/miss/entry counters of the session answer cache.
    pub fn answer_cache_stats(&self) -> AnswerCacheStats {
        self.cache.borrow().stats()
    }

    /// Drops every answer-cache entry and counter (e.g. between unrelated
    /// workloads sharing one executor).
    pub fn clear_answer_cache(&self) {
        self.cache.borrow_mut().clear();
    }

    /// Budgets the session answer cache (entries and/or bytes, `None` =
    /// unlimited), evicting least-recently-used entries immediately if the
    /// new budget is already exceeded. Unbounded by default.
    pub fn set_answer_cache_budget(&self, max_entries: Option<usize>, max_bytes: Option<usize>) {
        self.cache.borrow_mut().set_budget(max_entries, max_bytes);
    }

    /// Snapshots the session answer cache as a [`StatementCheckpoint`].
    ///
    /// The executor inserts each batch's answers into the cache as the
    /// batch completes, so a checkpoint taken after a mid-statement failure
    /// captures exactly the LLM work the dead statement already paid for.
    /// [`restore`](QueryExecutor::restore) that snapshot into a fresh
    /// executor and re-run the statement: completed prompts are answered
    /// from the cache (byte-identical rows — cache hits share engine work,
    /// never labeler draws) and only the unfinished tail re-issues LLM
    /// calls.
    pub fn checkpoint(&self) -> StatementCheckpoint {
        let entries = self.cache.borrow().export();
        if llmqo_obs::enabled() {
            let reg = llmqo_obs::registry();
            reg.counter("sql.checkpoint.exported").inc();
            reg.counter("sql.checkpoint.entries_exported")
                .add(entries.len() as u64);
        }
        StatementCheckpoint { entries }
    }

    /// Merges `checkpoint` into the session answer cache (existing entries
    /// win). See [`checkpoint`](QueryExecutor::checkpoint).
    pub fn restore(&self, checkpoint: &StatementCheckpoint) {
        self.cache.borrow_mut().absorb(&checkpoint.entries);
        if llmqo_obs::enabled() {
            let reg = llmqo_obs::registry();
            reg.counter("sql.checkpoint.restored").inc();
            reg.counter("sql.checkpoint.entries_restored")
                .add(checkpoint.entries.len() as u64);
        }
    }

    /// The serving engine (the SQL runner opens per-operator sessions on it).
    pub(crate) fn engine(&self) -> &'a SimEngine {
        self.engine
    }

    /// The tokenizer (the SQL runner prices operators with it).
    pub(crate) fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Executes `query` over `table`, scheduling requests with `reorderer`.
    ///
    /// `fds` are functional dependencies over the *full table schema*; they
    /// are projected onto the query's fields automatically. `truth` supplies
    /// the ground-truth answer per original row index (the dataset's labels).
    ///
    /// Equivalent to [`execute_with`](QueryExecutor::execute_with) with
    /// [`ExecOptions::default`] — no deduplication, every row its own
    /// engine request.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn execute(
        &self,
        table: &Table,
        query: &LlmQuery,
        reorderer: &dyn Reorderer,
        fds: &FunctionalDeps,
        truth: &dyn Fn(usize) -> String,
    ) -> Result<QueryOutput, ExecError> {
        self.execute_with(table, query, reorderer, fds, truth, ExecOptions::default())
    }

    /// [`execute`](QueryExecutor::execute) with physical-layer options —
    /// currently exact request deduplication ([`ExecOptions::dedup`]).
    /// Deduplication never changes query results (each row still generates
    /// its own output); it shares engine requests between rows whose
    /// projected field values are identical, and the savings land in
    /// [`ExecutionReport::opt`].
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn execute_with(
        &self,
        table: &Table,
        query: &LlmQuery,
        reorderer: &dyn Reorderer,
        fds: &FunctionalDeps,
        truth: &dyn Fn(usize) -> String,
        opts: ExecOptions,
    ) -> Result<QueryOutput, ExecError> {
        let mut engine = StageEngine::open(self.engine, 1)?;
        let mut esc_engine = if opts.cascade.is_some() {
            Some(StageEngine::open(self.engine, 1)?)
        } else {
            None
        };
        let all_rows: Vec<usize> = (0..table.nrows()).collect();
        let stage = self.run_llm_rows(
            &mut engine,
            esc_engine.as_mut(),
            table,
            &all_rows,
            query,
            reorderer,
            fds,
            truth,
            opts,
        )?;
        if let Some(esc) = esc_engine {
            // The expensive tier's serving volume is accounted in the tier
            // fields of `OptStats`; the report below covers the cheap tier
            // (the session every row runs on).
            esc.finish();
        }
        let engine_report = engine.finish();
        Ok(stage.into_query_output(query, reorderer.name(), engine_report))
    }

    /// The physical batch primitive: evaluates `query` over the given
    /// original-index `rows` of `table` against an incremental stage
    /// `engine`. With [`ExecOptions::answer_cache`], rows whose exact
    /// prompt was ever submitted on this executor are answered from the
    /// session cache first; with [`ExecOptions::dedup`], the remaining
    /// novel rows with identical projected field values are compacted to
    /// one representative before the solver runs, a single engine request
    /// is issued per representative, and outputs fan back out by original
    /// row index. The SQL runner calls this batch by batch (sharing one
    /// session per operator) for lazy `LIMIT` and adaptive execution.
    ///
    /// With [`ExecOptions::cascade`], `engine` is the cheap tier: every
    /// representative runs on it, rows whose deterministic confidence
    /// falls below the plan's threshold escalate, and each dedup group
    /// containing an escalated row re-runs its representative's request on
    /// `escalation` (a second stage engine fast-forwarded to this batch's
    /// finish; when `None`, escalated requests replay on `engine` so the
    /// expensive tier's serving cost is still paid somewhere real).
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_llm_rows(
        &self,
        engine: &mut StageEngine,
        escalation: Option<&mut StageEngine>,
        table: &Table,
        rows: &[usize],
        query: &LlmQuery,
        reorderer: &dyn Reorderer,
        fds: &FunctionalDeps,
        truth: &dyn Fn(usize) -> String,
        opts: ExecOptions,
    ) -> Result<StageOutcome, ExecError> {
        if query.fields.is_empty() {
            return Err(ExecError::EmptyFields);
        }
        let mut outcome = StageOutcome::default();
        outcome.opt.rows_in = rows.len() as u64;
        outcome.opt.batches = 1;
        if rows.is_empty() {
            return Ok(outcome);
        }
        let encoded = encode_table_rows(&self.tokenizer, table, query, Some(rows))?;
        let projected = project_fds(fds, &encoded.used_cols);

        // Session answer cache: resolve each offered row's prompt identity
        // (interned instruction + serialized projected fields) and answer
        // repeats from the cache *before* dedup-compaction, so the solver
        // and the engine only ever see novel rows. Like dedup, the cache
        // shares engine work, not labeler draws: hit rows still generate
        // their own outputs below. Key-field queries are exempt: their
        // labeler draws depend on where the schedule placed the key field,
        // which a cache hit has no schedule to derive from — and they exist
        // precisely to measure positional effects (Fig. 6), which caching
        // would distort. Without a key field, `key_field_pos` is the
        // constant 0.5 on every path, so hits label exactly as a cache-off
        // run would.
        let use_cache = opts.answer_cache && query.key_field.is_none();
        let mut instr_id = 0u32;
        let mut cache_keys: Vec<String> = Vec::new();
        let mut hit_rows: Vec<(usize, CachedAnswer)> = Vec::new();
        let novel: Vec<usize> = if use_cache {
            let mut cache = self.cache.borrow_mut();
            instr_id = cache.instruction_id(&query_cache_identity(query));
            // Serialize each distinct (field, value) fragment once —
            // duplicate-heavy batches reuse the string through the
            // encode-time ValueId instead of re-formatting per row.
            let mut frag_strings: Vec<Option<String>> = vec![None; encoded.fragments.len()];
            cache_keys = (0..encoded.reorder.nrows())
                .map(|local| {
                    let mut key = String::new();
                    for (f, cell) in encoded.reorder.row(local).iter().enumerate() {
                        let id = cell.value.as_u32() as usize;
                        let frag = frag_strings[id].get_or_insert_with(|| {
                            field_fragment(
                                &query.fields[f],
                                &table.value(rows[local], encoded.used_cols[f]).to_string(),
                            )
                        });
                        key.push_str(frag);
                    }
                    key
                })
                .collect();
            let mut novel = Vec::with_capacity(encoded.reorder.nrows());
            for (local, key) in cache_keys.iter().enumerate() {
                match cache.lookup(instr_id, key) {
                    Some(answer) => {
                        outcome.opt.cache_hits += 1;
                        outcome.opt.cache_tokens_saved +=
                            answer.prompt_tokens + answer.output_tokens;
                        hit_rows.push((local, answer));
                    }
                    None => novel.push(local),
                }
            }
            novel
        } else {
            (0..encoded.reorder.nrows()).collect()
        };

        // Exact request deduplication: group novel local rows by their
        // projected field values (the interner makes that a ValueId-tuple
        // comparison). `groups[g]` lists the local rows served by
        // representative `g`.
        let groups: Vec<Vec<usize>> = if opts.dedup {
            let mut index: HashMap<&[llmqo_core::Cell], usize> = HashMap::new();
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for &local in &novel {
                let key = encoded.reorder.row(local);
                match index.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        groups[*e.get()].push(local);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(groups.len());
                        groups.push(vec![local]);
                    }
                }
            }
            groups
        } else {
            novel.iter().map(|&r| vec![r]).collect()
        };
        let reps: Vec<usize> = groups.iter().map(|g| g[0]).collect();
        outcome.opt.rows_deduped = (novel.len() - reps.len()) as u64;
        for group in &groups {
            for &local in &group[1..] {
                let row_tokens: u64 = encoded
                    .reorder
                    .row(local)
                    .iter()
                    .map(|c| u64::from(c.len))
                    .sum();
                outcome.opt.prefill_tokens_saved += encoded.instruction_len() as u64 + row_tokens;
            }
        }

        if !reps.is_empty() {
            // Borrow the encoded table directly when nothing deduplicated
            // or was cached (the common case for unique-field queries and
            // every oracle run).
            let compacted_storage;
            let compact: &llmqo_core::ReorderTable = if reps.len() == encoded.reorder.nrows() {
                &encoded.reorder
            } else {
                compacted_storage = encoded.reorder.select_rows(&reps);
                &compacted_storage
            };

            // The solver sees only the novel, dedup-compacted batch.
            let solution = reorderer.reorder(compact, &projected)?;
            debug_assert!(solution.plan.validate(compact).is_ok());
            outcome.field_phc = phc_of_plan(compact, &solution.plan);
            outcome.solve_time_s = solution.solve_time.as_secs_f64();
            outcome.claimed_phc = solution.claimed_phc;

            // One engine request per scheduled representative, carrying the
            // *original* row index so serving traces stay attributable.
            let requests: Vec<SimRequest> = solution
                .plan
                .rows
                .iter()
                .map(|rp| row_request(&encoded, compact, rp, rows[reps[rp.row]], query))
                .collect();
            outcome.opt.llm_calls = requests.len() as u64;
            // Fan-out stages route each request by its reorder-plan prefix
            // key so a shared-prefix group lands on one replica; the
            // single-session form never looks at keys, so skip the hashing.
            let keys: Vec<u64> = if engine.wants_prefix_keys() {
                solution.plan.prefix_keys(compact, PREFIX_KEY_DEPTH)
            } else {
                Vec::new()
            };
            // This batch's completion records — consumed by request id
            // below, so the stage engine's merge order (deterministic but
            // replica-grouped under fan-out) never affects results.
            let completions = engine.run_batch(&requests, &keys)?;
            if opts.cascade.is_some() {
                // Cascade ledger: every issued request is billed to the
                // cheap tier at full (uncached) prompt + output volume.
                for c in &completions {
                    outcome.opt.cheap_prompt_tokens += c.prompt_tokens as u64;
                    outcome.opt.cheap_output_tokens += u64::from(c.output_tokens);
                }
            }
            let answer_records: HashMap<usize, CachedAnswer> = if use_cache {
                completions
                    .iter()
                    .map(|c| {
                        (
                            c.id,
                            CachedAnswer {
                                prompt_tokens: c.prompt_tokens as u64,
                                output_tokens: u64::from(c.output_tokens),
                            },
                        )
                    })
                    .collect()
            } else {
                HashMap::new()
            };

            // Deterministic fault injection: each representative's engine
            // call rolls per attempt against the configured transient-error
            // rate (pure in `(seed, original row, attempt)` — reruns fail
            // identically). A failed roll retries as a fresh engine request
            // — warm prefix cache, so retries are cheap — up to the
            // statement budget; rows still failing either degrade to
            // partial results (dropped and annotated downstream) or fail
            // the statement with a typed error. Never a panic.
            let mut failed_reps: Vec<bool> = vec![false; groups.len()];
            if let Some(f) = opts.faults.filter(|f| f.error_ppm > 0) {
                let p = f64::from(f.error_ppm) / 1e6;
                let budget = f.max_attempts.max(1);
                let mut retry_requests: Vec<SimRequest> = Vec::new();
                let mut retry_keys: Vec<u64> = Vec::new();
                for (ri, rp) in solution.plan.rows.iter().enumerate() {
                    let original = rows[reps[rp.row]];
                    let mut attempt = 1u32;
                    while attempt <= budget
                        && fault_unit(f.seed, original as u64, u64::from(attempt)) < p
                    {
                        attempt += 1;
                    }
                    let served = attempt <= budget;
                    let extra = if served { attempt - 1 } else { budget - 1 };
                    if extra > 0 {
                        outcome.opt.llm_retries += u64::from(extra);
                        for _ in 0..extra {
                            retry_requests
                                .push(row_request(&encoded, compact, rp, original, query));
                            // Retries keep their row's prefix key: failover
                            // lands on the replica already holding the
                            // group's cached prefix.
                            retry_keys.push(keys.get(ri).copied().unwrap_or_default());
                        }
                    }
                    if !served {
                        if !f.partial_results {
                            return Err(ExecError::LlmUnavailable {
                                row: original,
                                attempts: budget,
                            });
                        }
                        failed_reps[rp.row] = true;
                    }
                }
                if !retry_requests.is_empty() {
                    // Replay the failed attempts so their serving cost is
                    // real: each retry re-sends the representative's full
                    // prompt (mostly cache hits) and re-decodes its output.
                    let retried = engine.run_batch(&retry_requests, &retry_keys)?;
                    if opts.cascade.is_some() {
                        for c in &retried {
                            outcome.opt.cheap_prompt_tokens += c.prompt_tokens as u64;
                            outcome.opt.cheap_output_tokens += u64::from(c.output_tokens);
                        }
                    }
                }
            }

            // Generate outputs for every offered novel row — the labeler is
            // a per-row instrument, so deduplication is invisible in
            // results by design — and register each scheduled prompt in the
            // answer cache with its serving record.
            let key_col = query
                .key_field
                .as_deref()
                .and_then(|k| query.fields.iter().position(|f| f == k));
            // Dedup groups whose rows all kept the cheap answer never touch
            // the expensive tier; a group with at least one escalated row
            // re-runs its representative's request there (engine work is
            // shared per group on both tiers, labels stay per-row).
            let mut esc_requests: Vec<SimRequest> = Vec::new();
            let mut esc_keys: Vec<u64> = Vec::new();
            for (ri, rp) in solution.plan.rows.iter().enumerate() {
                if failed_reps[rp.row] {
                    // Budget exhausted: the representative's whole dedup
                    // group degrades — no answer-cache entry (nothing was
                    // served), no labeler draw, just the per-row failure
                    // record the SQL layer annotates.
                    for &local in &groups[rp.row] {
                        outcome.failed_rows.push(rows[local]);
                    }
                    outcome.opt.rows_failed += groups[rp.row].len() as u64;
                    continue;
                }
                let key_field_pos = match key_col {
                    Some(k) if rp.fields.len() > 1 => {
                        let pos = rp
                            .fields
                            .iter()
                            .position(|&f| f as usize == k)
                            .unwrap_or_else(|| unreachable!("plans carry every field"));
                        pos as f64 / (rp.fields.len() - 1) as f64
                    }
                    _ => 0.5,
                };
                if use_cache {
                    let original = rows[reps[rp.row]];
                    let record = answer_records[&original];
                    self.cache.borrow_mut().insert(
                        instr_id,
                        cache_keys[reps[rp.row]].clone(),
                        record,
                    );
                }
                let mut group_escalates = false;
                for &local in &groups[rp.row] {
                    let original = rows[local];
                    let truth_text = truth(original);
                    let text = self.llm.generate(&GenRequest {
                        row_id: original as u64,
                        truth: &truth_text,
                        label_space: &query.label_space,
                        key_field_pos,
                    });
                    let text = match &opts.cascade {
                        Some(plan) => {
                            group_escalates |= cascade_row(
                                plan,
                                original,
                                &text,
                                &query.label_space,
                                &mut outcome.opt,
                            );
                            plan.label(original as u64, &text, &query.label_space)
                        }
                        None => text,
                    };
                    outcome.outputs.push(RowOutput {
                        row: original,
                        text,
                    });
                }
                if group_escalates {
                    esc_requests.push(row_request(
                        &encoded,
                        compact,
                        rp,
                        rows[reps[rp.row]],
                        query,
                    ));
                    esc_keys.push(keys.get(ri).copied().unwrap_or_default());
                }
            }
            if !esc_requests.is_empty() {
                let esc_completions = match escalation {
                    Some(esc) => {
                        // Escalation waits for the cheap tier's answer:
                        // fast-forward the expensive session to this
                        // batch's finish before serving the re-runs.
                        esc.advance_to(engine.clock());
                        esc.run_batch(&esc_requests, &esc_keys)?
                    }
                    // No second session supplied: replay on the cheap
                    // tier's session so the serving cost is still paid.
                    None => engine.run_batch(&esc_requests, &esc_keys)?,
                };
                for c in &esc_completions {
                    outcome.opt.esc_prompt_tokens += c.prompt_tokens as u64;
                    outcome.opt.esc_output_tokens += u64::from(c.output_tokens);
                }
            }
        }

        // Cache-hit rows: no solver, no engine request — but still one
        // labeler draw each. Hits exist only for key-field-free queries
        // (see `use_cache` above), whose key-field position is the
        // constant 0.5 on every execution path. Under a cascade, hits are
        // engine-free on *both* tiers (the cache is tier-agnostic: the
        // prompt was already paid for), but each row still takes its pure
        // per-row escalation decision and cascade label, so caching never
        // changes results.
        for &(local, _answer) in &hit_rows {
            let original = rows[local];
            let truth_text = truth(original);
            let text = self.llm.generate(&GenRequest {
                row_id: original as u64,
                truth: &truth_text,
                label_space: &query.label_space,
                key_field_pos: 0.5,
            });
            let text = match &opts.cascade {
                Some(plan) => {
                    cascade_row(plan, original, &text, &query.label_space, &mut outcome.opt);
                    plan.label(original as u64, &text, &query.label_space)
                }
                None => text,
            };
            outcome.outputs.push(RowOutput {
                row: original,
                text,
            });
        }
        outcome.outputs.sort_by_key(|o| o.row);
        Ok(outcome)
    }

    /// Executes a multi-LLM invocation chain (paper T3): every stage but the
    /// last must be a filter; each stage runs over the rows selected by the
    /// previous one. Row indices in all outputs refer to the *original*
    /// table.
    ///
    /// # Errors
    ///
    /// See [`ExecError`]; additionally [`ExecError::NotAFilter`] if a
    /// non-final stage is not a filter query.
    pub fn execute_multi(
        &self,
        table: &Table,
        stages: &[&LlmQuery],
        reorderer: &dyn Reorderer,
        fds: &FunctionalDeps,
        truths: &[&dyn Fn(usize) -> String],
    ) -> Result<Vec<QueryOutput>, ExecError> {
        assert_eq!(
            stages.len(),
            truths.len(),
            "one ground-truth provider per stage"
        );
        let mut results = Vec::with_capacity(stages.len());
        let mut current = table.clone();
        // Maps current-table row indices to original indices.
        let mut row_map: Vec<usize> = (0..table.nrows()).collect();
        for (i, (stage, truth)) in stages.iter().zip(truths).enumerate() {
            let is_last = i + 1 == stages.len();
            if !is_last && stage.kind != QueryKind::Filter {
                return Err(ExecError::NotAFilter {
                    stage: stage.name.clone(),
                });
            }
            let mapped_truth = |local: usize| truth(row_map[local]);
            let mut out = self.execute(&current, stage, reorderer, fds, &mapped_truth)?;
            // Translate local row indices back to original ones.
            for o in &mut out.outputs {
                o.row = row_map[o.row];
            }
            let selected_local: Vec<usize> =
                std::mem::take(&mut out.selected_rows).into_iter().collect();
            out.selected_rows = selected_local.iter().map(|&r| row_map[r]).collect();
            if !is_last {
                current = current.select_rows(&selected_local);
                row_map = selected_local.iter().map(|&r| row_map[r]).collect();
            }
            results.push(out);
        }
        Ok(results)
    }
}

/// Takes one row's cascade decision: records it as cheap-only or escalated
/// (with the cheap-vs-expensive agreement tally the
/// [`TierPosterior`](llmqo_costmodel::TierPosterior) learns from) in the
/// tier fields of `opt`, returning whether the row escalated. Pure in
/// `(plan.seed, original)` — see [`CascadePlan::escalates`].
fn cascade_row(
    plan: &CascadePlan,
    original: usize,
    reference: &str,
    label_space: &[String],
    opt: &mut OptStats,
) -> bool {
    if plan.escalates(original as u64) {
        opt.rows_escalated += 1;
        if plan.cheap_label(original as u64, reference, label_space) == reference {
            opt.tier_agreements += 1;
        }
        true
    } else {
        opt.rows_cheap += 1;
        false
    }
}

/// Builds the engine request stream for a schedule: one [`SimRequest`] per
/// scheduled row, carrying the query's instruction prefix followed by the
/// row's field fragments in scheduled order. Fragments are `Arc`-shared with
/// the [`EncodedTable`](crate::EncodedTable), so equal field values across
/// rows share token storage. Request ids are *original* row indices, and
/// output lengths are the executor's deterministic per-row draws — callers
/// (the executor itself, benchmarks, the cluster router) therefore all
/// serve byte-identical workloads for a given plan.
pub fn plan_requests(
    encoded: &crate::EncodedTable,
    plan: &llmqo_core::ReorderPlan,
    query: &LlmQuery,
) -> Vec<SimRequest> {
    plan.rows
        .iter()
        .map(|rp| row_request(encoded, &encoded.reorder, rp, rp.row, query))
        .collect()
}

/// Materializes one scheduled row as an engine request: the query's
/// instruction prefix followed by the row's field fragments in scheduled
/// order, with `original` as both the request id and the output-length
/// sampling key. `cells` is the table the plan indexes — the encoded table
/// itself, or a dedup-compacted selection of it whose fragments still live
/// in `encoded`. Single request-assembly path, so every caller (executor,
/// benchmarks, cluster router) serves byte-identical workloads for a plan.
fn row_request(
    encoded: &crate::EncodedTable,
    cells: &llmqo_core::ReorderTable,
    rp: &llmqo_core::RowPlan,
    original: usize,
    query: &LlmQuery,
) -> SimRequest {
    let mut prompt = Vec::with_capacity(1 + rp.fields.len());
    prompt.push(encoded.instruction.clone());
    for &f in &rp.fields {
        let cell = cells.cell(rp.row, f as usize);
        prompt.push(encoded.fragments[cell.value.as_u32() as usize].clone());
    }
    SimRequest {
        id: original,
        prompt,
        output_len: sample_output_len(&query.name, original, query.output_tokens_mean),
    }
}

/// The query-level half of an answer-cache key, interned via
/// [`AnswerCache::instruction_id`]: the instruction text plus everything
/// else that shapes the answer the engine produces — query kind, label
/// space, and mean output length. Two operators share cached answers only
/// when *all* of it matches; a filter and a projection with the same
/// prompt text must not collide (their simulated decode costs differ).
/// The per-row half is the serialized projected fields in query-field
/// order: schedules permute fields but never change which `(field, value)`
/// pairs a prompt carries, so together the two halves are exactly the
/// prompt's semantic identity.
fn query_cache_identity(query: &LlmQuery) -> String {
    format!(
        "{}\u{1}{:?}\u{1}{:?}\u{1}{}",
        query.full_instruction(),
        query.kind,
        query.label_space,
        query.output_tokens_mean,
    )
}

/// Projects full-schema functional dependencies onto the used columns,
/// renumbering to the encoded table's column space.
pub fn project_fds(fds: &FunctionalDeps, used_cols: &[usize]) -> FunctionalDeps {
    let groups: Vec<Vec<u32>> = fds
        .groups()
        .into_iter()
        .filter_map(|group| {
            let members: Vec<u32> = group
                .iter()
                .filter_map(|&c| {
                    used_cols
                        .iter()
                        .position(|&u| u == c as usize)
                        .map(|p| p as u32)
                })
                .collect();
            (members.len() >= 2).then_some(members)
        })
        .collect();
    FunctionalDeps::from_groups(used_cols.len(), groups)
        .unwrap_or_else(|_| unreachable!("projected indices are in range by construction"))
}

/// Deterministic per-row output length around the query's mean (±25%).
fn sample_output_len(query_name: &str, row: usize, mean: f64) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in query_name.bytes().chain((row as u64).to_le_bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let len = mean * (0.75 + 0.5 * unit);
    len.round().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use llmqo_core::{Ggr, OriginalOrder};
    use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, OracleLlm};

    fn engine() -> SimEngine {
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        )
    }

    fn table(n: usize) -> Table {
        let mut t = Table::new(Schema::of_strings(&["review", "product"]));
        for i in 0..n {
            t.push_row(vec![
                format!("review text number {i} with some unique words").into(),
                format!("product description {} shared across rows", i / 5).into(),
            ])
            .unwrap();
        }
        t
    }

    fn filter_query() -> LlmQuery {
        LlmQuery::filter(
            "test-filter",
            "Is the review positive? Answer Yes or No.",
            vec!["review".into(), "product".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        )
    }

    #[test]
    fn oracle_filter_selects_exactly_truth_rows() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(20);
        let truth = |row: usize| {
            if row.is_multiple_of(2) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let out = ex
            .execute(
                &t,
                &filter_query(),
                &OriginalOrder,
                &FunctionalDeps::empty(2),
                &truth,
            )
            .unwrap();
        let expected: Vec<usize> = (0..20).filter(|r| r % 2 == 0).collect();
        assert_eq!(out.selected_rows, expected);
        assert_eq!(out.outputs.len(), 20);
    }

    #[test]
    fn reordering_preserves_semantics_with_oracle() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(30);
        let truth = |row: usize| {
            if row.is_multiple_of(3) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let fds = FunctionalDeps::empty(2);
        let a = ex
            .execute(&t, &filter_query(), &OriginalOrder, &fds, &truth)
            .unwrap();
        let b = ex
            .execute(&t, &filter_query(), &Ggr::default(), &fds, &truth)
            .unwrap();
        assert_eq!(a.selected_rows, b.selected_rows);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn ggr_improves_hit_rate_and_runtime() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(300);
        let truth = |_: usize| "Yes".to_string();
        let fds = FunctionalDeps::empty(2);
        let orig = ex
            .execute(&t, &filter_query(), &OriginalOrder, &fds, &truth)
            .unwrap();
        let ggr = ex
            .execute(&t, &filter_query(), &Ggr::default(), &fds, &truth)
            .unwrap();
        assert!(
            ggr.report.engine.prefix_hit_rate() > orig.report.engine.prefix_hit_rate(),
            "GGR {} vs original {}",
            ggr.report.engine.prefix_hit_rate(),
            orig.report.engine.prefix_hit_rate()
        );
        assert!(ggr.report.engine.job_completion_time_s < orig.report.engine.job_completion_time_s);
        assert!(ggr.report.field_phc.phc >= orig.report.field_phc.phc);
    }

    #[test]
    fn aggregation_averages_scores() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(10);
        let q = LlmQuery::aggregation(
            "agg",
            "Rate 1-5.",
            vec!["review".into(), "product".into()],
            (1, 5),
            2.0,
        );
        let truth = |row: usize| ((row % 5) + 1).to_string();
        let out = ex
            .execute(&t, &q, &OriginalOrder, &FunctionalDeps::empty(2), &truth)
            .unwrap();
        assert_eq!(out.aggregate, Some(3.0));
    }

    #[test]
    fn multi_invocation_chains_filters() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(12);
        let f = filter_query();
        let p = LlmQuery::projection(
            "proj",
            "Summarize the good qualities.",
            vec!["review".into(), "product".into()],
            12.0,
        );
        let truth_filter = |row: usize| if row < 6 { "Yes".into() } else { "No".into() };
        let truth_proj = |row: usize| format!("summary of row {row}");
        let results = ex
            .execute_multi(
                &t,
                &[&f, &p],
                &Ggr::default(),
                &FunctionalDeps::empty(2),
                &[&truth_filter, &truth_proj],
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].selected_rows, vec![0, 1, 2, 3, 4, 5]);
        // Stage 2 ran only over selected rows, reported in original indices.
        let stage2_rows: Vec<usize> = results[1].outputs.iter().map(|o| o.row).collect();
        assert_eq!(stage2_rows, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(results[1].outputs[3].text, "summary of row 3");
    }

    #[test]
    fn non_filter_first_stage_rejected() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(4);
        let p = LlmQuery::projection("p", "x", vec!["review".into()], 4.0);
        let truth = |_: usize| String::new();
        let err = ex
            .execute_multi(
                &t,
                &[&p, &p],
                &OriginalOrder,
                &FunctionalDeps::empty(2),
                &[&truth, &truth],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::NotAFilter { .. }));
    }

    #[test]
    fn unknown_field_surfaces() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(2);
        let mut q = filter_query();
        q.fields = vec!["nope".into()];
        let truth = |_: usize| "Yes".into();
        assert!(matches!(
            ex.execute(&t, &q, &OriginalOrder, &FunctionalDeps::empty(2), &truth),
            Err(ExecError::Table(TableError::UnknownColumn { .. }))
        ));
    }

    #[test]
    fn empty_fields_rejected() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(2);
        let mut q = filter_query();
        q.fields = vec![];
        let truth = |_: usize| "Yes".into();
        assert!(matches!(
            ex.execute(&t, &q, &OriginalOrder, &FunctionalDeps::empty(2), &truth),
            Err(ExecError::EmptyFields)
        ));
    }

    #[test]
    fn project_fds_renumbers() {
        // Full schema: 5 columns, group {1, 3}; used columns [3, 1, 4].
        let fds = FunctionalDeps::from_groups(5, vec![vec![1, 3]]).unwrap();
        let p = project_fds(&fds, &[3, 1, 4]);
        assert_eq!(p.ncols(), 3);
        assert_eq!(p.inferred(0), &[1]); // col 3 → pos 0, col 1 → pos 1
        assert_eq!(p.inferred(1), &[0]);
        assert!(p.inferred(2).is_empty());
    }

    #[test]
    fn project_fds_drops_broken_groups() {
        let fds = FunctionalDeps::from_groups(4, vec![vec![0, 2]]).unwrap();
        let p = project_fds(&fds, &[0, 1]); // col 2 not used → group dissolves
        assert!(p.is_trivial());
    }

    #[test]
    fn project_fds_identity_keeps_every_group() {
        let fds = FunctionalDeps::from_groups(4, vec![vec![0, 2], vec![1, 3]]).unwrap();
        let p = project_fds(&fds, &[0, 1, 2, 3]);
        assert_eq!(p.ncols(), 4);
        assert_eq!(p.groups(), fds.groups());
    }

    #[test]
    fn project_fds_keeps_only_derivable_subgroups() {
        // One 3-member group {0, 2, 4}: a projection keeping two members
        // preserves their mutual dependency, one member alone dissolves it.
        let fds = FunctionalDeps::from_groups(5, vec![vec![0, 2, 4]]).unwrap();
        let two = project_fds(&fds, &[4, 0]);
        assert_eq!(two.groups(), vec![vec![0, 1]]); // col 4 → pos 0, col 0 → pos 1
        assert_eq!(two.inferred(0), &[1]);
        assert_eq!(two.inferred(1), &[0]);
        let one = project_fds(&fds, &[2, 1]);
        assert!(one.is_trivial());
    }

    #[test]
    fn project_fds_empty_cases() {
        // No used columns at all → a zero-column trivial dependency set.
        let fds = FunctionalDeps::from_groups(3, vec![vec![0, 1]]).unwrap();
        let none = project_fds(&fds, &[]);
        assert_eq!(none.ncols(), 0);
        assert!(none.is_trivial());
        // Trivial input stays trivial under any projection.
        let p = project_fds(&FunctionalDeps::empty(3), &[2, 0]);
        assert_eq!(p.ncols(), 2);
        assert!(p.is_trivial());
    }

    #[test]
    fn execute_with_dedup_is_output_identical_and_saves_requests() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(20);
        // Query over the shared field only: 4 distinct products across 20
        // rows → 4 engine requests under dedup.
        let q = LlmQuery::filter(
            "dedup",
            "Is the product good? Answer Yes or No.",
            vec!["product".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        );
        let truth = |row: usize| {
            if row.is_multiple_of(3) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let fds = FunctionalDeps::empty(2);
        let off = ex.execute(&t, &q, &Ggr::default(), &fds, &truth).unwrap();
        let on = ex
            .execute_with(
                &t,
                &q,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::deduped(),
            )
            .unwrap();
        assert_eq!(off.outputs, on.outputs);
        assert_eq!(off.selected_rows, on.selected_rows);
        assert_eq!(on.report.opt.llm_calls, 4);
        assert_eq!(on.report.opt.rows_deduped, 16);
        assert_eq!(on.report.engine.completed, 4);
        assert!(on.report.opt.prefill_tokens_saved > 0);
        assert_eq!(off.report.opt.llm_calls, 20);
        assert_eq!(off.report.opt.rows_deduped, 0);
        assert!(
            on.report.engine.job_completion_time_s < off.report.engine.job_completion_time_s,
            "fewer requests should finish sooner"
        );
    }

    #[test]
    fn answer_cache_short_circuits_repeats_across_queries() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(20);
        let q = LlmQuery::filter(
            "cached",
            "Is the product good? Answer Yes or No.",
            vec!["product".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        );
        let truth = |row: usize| {
            if row.is_multiple_of(3) {
                "Yes".into()
            } else {
                "No".into()
            }
        };
        let fds = FunctionalDeps::empty(2);
        let off = ex.execute(&t, &q, &Ggr::default(), &fds, &truth).unwrap();
        // First cached run: 4 distinct products → 4 requests, all misses.
        let first = ex
            .execute_with(
                &t,
                &q,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        assert_eq!(first.outputs, off.outputs);
        assert_eq!(first.report.opt.llm_calls, 4);
        assert_eq!(first.report.opt.cache_hits, 0);
        assert_eq!(ex.answer_cache_stats().entries, 4);
        // Second run of the same query on the same executor: every row is
        // a cache hit, zero engine requests, identical outputs.
        let second = ex
            .execute_with(
                &t,
                &q,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        assert_eq!(second.outputs, off.outputs);
        assert_eq!(second.selected_rows, off.selected_rows);
        assert_eq!(second.report.opt.llm_calls, 0);
        assert_eq!(second.report.opt.cache_hits, 20);
        assert!(second.report.opt.cache_tokens_saved > 0);
        assert_eq!(second.report.engine.completed, 0);
        let stats = ex.answer_cache_stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.hits, 20);
        // A different instruction over the same fields misses.
        let mut q2 = q.clone();
        q2.user_prompt = "Is the product terrible? Answer Yes or No.".into();
        let third = ex
            .execute_with(
                &t,
                &q2,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        assert_eq!(third.report.opt.cache_hits, 0);
        assert_eq!(third.report.opt.llm_calls, 4);
        ex.clear_answer_cache();
        assert_eq!(ex.answer_cache_stats().entries, 0);
    }

    #[test]
    fn answer_cache_separates_query_kinds_with_identical_prompts() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(12);
        let fds = FunctionalDeps::empty(2);
        let filter = LlmQuery::filter(
            "f",
            "Summarize the product.",
            vec!["product".into()],
            vec!["Yes".into(), "No".into()],
            "Yes",
            2.0,
        );
        // Identical prompt text and fields, but a projection: ~16× the
        // decode length. Must not be answered from the filter's entries.
        let projection =
            LlmQuery::projection("p", "Summarize the product.", vec!["product".into()], 32.0);
        let truth = |_: usize| "Yes".to_string();
        ex.execute_with(
            &t,
            &filter,
            &Ggr::default(),
            &fds,
            &truth,
            ExecOptions::optimized(),
        )
        .unwrap();
        let proj = ex
            .execute_with(
                &t,
                &projection,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        assert_eq!(proj.report.opt.cache_hits, 0, "kinds must not collide");
        assert!(proj.report.opt.llm_calls > 0);
        // But the projection's own repeats do share.
        let again = ex
            .execute_with(
                &t,
                &projection,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        assert_eq!(again.report.opt.llm_calls, 0);
        assert_eq!(again.report.opt.cache_hits, 12);
    }

    #[test]
    fn answer_cache_is_exempt_for_key_field_queries() {
        use llmqo_serve::ModelProfile;
        // A position-sensitive labeler with a key-field query: results
        // depend on where the schedule places the key field, which a cache
        // hit could not reproduce — so such queries must never be cached,
        // and a warmed executor must answer exactly like a fresh one.
        let profile = ModelProfile::llama3_8b().with_base_accuracy(0.5);
        let tokenizer = Tokenizer::new();
        let fds = FunctionalDeps::empty(2);
        let q = filter_query().with_key_field("review");
        let truth = |_: usize| "Yes".to_string();

        // t1's rows share t2's field values (same table content), but t1 is
        // executed first so a (buggy) cache would be warm for t2's prompts.
        let t = table(30);
        let eng_fresh = engine();
        let fresh = QueryExecutor::new(&eng_fresh, &profile, tokenizer);
        let baseline = fresh
            .execute_with(
                &t,
                &q,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();

        let eng_warm = engine();
        let warmed = QueryExecutor::new(&eng_warm, &profile, tokenizer);
        let first = warmed
            .execute_with(
                &t,
                &q,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        let second = warmed
            .execute_with(
                &t,
                &q,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        assert_eq!(first.outputs, baseline.outputs);
        assert_eq!(second.outputs, baseline.outputs, "warm ≡ fresh");
        assert_eq!(second.report.opt.cache_hits, 0, "key-field query cached");
        assert_eq!(warmed.answer_cache_stats().entries, 0);

        // Without a key field the same position-sensitive profile is safe
        // to cache: key_field_pos is the constant 0.5 on every path.
        let q2 = filter_query();
        let off = warmed
            .execute_with(
                &t,
                &q2,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::deduped(),
            )
            .unwrap();
        let on1 = warmed
            .execute_with(
                &t,
                &q2,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        let on2 = warmed
            .execute_with(
                &t,
                &q2,
                &Ggr::default(),
                &fds,
                &truth,
                ExecOptions::optimized(),
            )
            .unwrap();
        assert_eq!(on1.outputs, off.outputs);
        assert_eq!(on2.outputs, off.outputs, "hits label identically");
        assert!(on2.report.opt.cache_hits > 0);
    }

    #[test]
    fn run_llm_rows_on_no_rows_is_empty_and_engine_free() {
        let eng = engine();
        let ex = QueryExecutor::new(&eng, &OracleLlm, Tokenizer::new());
        let t = table(4);
        let truth = |_: usize| "Yes".to_string();
        let mut stage = StageEngine::open(&eng, 1).unwrap();
        let out = ex
            .run_llm_rows(
                &mut stage,
                None,
                &t,
                &[],
                &filter_query(),
                &OriginalOrder,
                &FunctionalDeps::empty(2),
                &truth,
                ExecOptions::deduped(),
            )
            .unwrap();
        assert!(out.outputs.is_empty());
        assert_eq!(out.opt.llm_calls, 0);
        assert_eq!(stage.finish().completed, 0);
    }

    #[test]
    fn output_len_sampling_is_stable_and_near_mean() {
        let a = sample_output_len("q", 7, 100.0);
        let b = sample_output_len("q", 7, 100.0);
        assert_eq!(a, b);
        assert!((75..=125).contains(&a));
        assert_eq!(sample_output_len("q", 1, 0.4), 1, "clamped to ≥1");
    }

    #[test]
    fn key_field_position_reaches_labeler() {
        use llmqo_serve::ModelProfile;
        // A maximally order-sensitive model must answer differently when the
        // key field moves; with the oracle it cannot. Smoke-check wiring by
        // asserting both run.
        let eng = engine();
        let profile = ModelProfile::llama3_8b().with_base_accuracy(0.5);
        let ex = QueryExecutor::new(&eng, &profile, Tokenizer::new());
        let t = table(40);
        let q = filter_query().with_key_field("review");
        let truth = |_: usize| "Yes".to_string();
        let out = ex
            .execute(&t, &q, &Ggr::default(), &FunctionalDeps::empty(2), &truth)
            .unwrap();
        assert_eq!(out.outputs.len(), 40);
        let yes = out.selected_rows.len();
        assert!(yes > 0 && yes < 40, "profile should be imperfect: {yes}");
    }
}
