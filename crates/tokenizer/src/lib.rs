//! Deterministic subword tokenizer for the `llmqo` reproduction.
//!
//! The paper measures everything in *tokens* produced by the Llama tokenizer:
//! prompt lengths (Table 1), the squared-length PHC objective (Eq. 2), prefix
//! hit rates (Table 2), and provider billing (Table 3). For the reproduction
//! we only need two properties of a tokenizer:
//!
//! 1. **Determinism** — the same text always yields the same token sequence,
//!    so equal prompt prefixes yield equal token prefixes (this is what makes
//!    KV-cache prefix reuse sound).
//! 2. **Realistic granularity** — roughly 4 characters per token on English
//!    prose, so token counts (and therefore costs and runtimes) land in the
//!    same regime as the paper's.
//!
//! This crate provides a small greedy segmenter with both properties: text is
//! split into whitespace-prefixed word segments and punctuation runs, and each
//! segment is chopped into pieces of at most [`Tokenizer::piece_bytes`] bytes.
//! Token ids are stable 64-bit FNV-1a hashes of the piece bytes folded to
//! `u32`.
//!
//! # Examples
//!
//! ```
//! use llmqo_tokenizer::Tokenizer;
//!
//! let tok = Tokenizer::new();
//! let ids = tok.tokenize("SELECT review FROM movies");
//! assert_eq!(ids.len(), tok.count("SELECT review FROM movies"));
//! // Determinism: same text, same ids.
//! assert_eq!(ids, tok.tokenize("SELECT review FROM movies"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A token identifier. Stable across runs and processes.
pub type TokenId = u32;

/// Default maximum piece size in bytes (~4 chars/token on English prose).
pub const DEFAULT_PIECE_BYTES: usize = 4;

/// Deterministic subword tokenizer.
///
/// See the [crate-level documentation](crate) for design rationale.
///
/// # Examples
///
/// ```
/// use llmqo_tokenizer::Tokenizer;
/// let tok = Tokenizer::new();
/// assert!(tok.count("hello world") >= 2);
/// assert_eq!(tok.count(""), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tokenizer {
    piece_bytes: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Tokenizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tokenizer(piece_bytes={})", self.piece_bytes)
    }
}

impl Tokenizer {
    /// Creates a tokenizer with the default piece size
    /// ([`DEFAULT_PIECE_BYTES`]).
    pub fn new() -> Self {
        Self {
            piece_bytes: DEFAULT_PIECE_BYTES,
        }
    }

    /// Creates a tokenizer with a custom maximum piece size in bytes.
    ///
    /// Smaller pieces produce more tokens per character; `1` degenerates to
    /// one token per character (per byte for ASCII).
    ///
    /// # Panics
    ///
    /// Panics if `piece_bytes` is zero.
    pub fn with_piece_bytes(piece_bytes: usize) -> Self {
        assert!(piece_bytes > 0, "piece_bytes must be positive");
        Self { piece_bytes }
    }

    /// Maximum piece size in bytes.
    pub fn piece_bytes(&self) -> usize {
        self.piece_bytes
    }

    /// Tokenizes `text` into stable token ids.
    ///
    /// Identical texts always produce identical sequences. An empty string
    /// produces an empty sequence.
    pub fn tokenize(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(text.len() / self.piece_bytes + 1);
        self.for_each_piece(text, |piece| out.push(fold_hash(fnv1a(piece.as_bytes()))));
        out
    }

    /// Counts tokens without allocating the id vector.
    ///
    /// Equivalent to `self.tokenize(text).len()` but cheaper; this is the
    /// hot path for dataset calibration and cost accounting.
    pub fn count(&self, text: &str) -> usize {
        let mut n = 0usize;
        self.for_each_piece(text, |_| n += 1);
        n
    }

    /// Drives `f` over every token piece of `text` in order.
    fn for_each_piece<F: FnMut(&str)>(&self, text: &str, mut f: F) {
        let mut segment_start = 0usize;
        let mut segment_class = CharClass::Whitespace;
        let mut pending_ws: Option<(usize, usize)> = None; // byte range of trailing whitespace

        let flush_segment = |start: usize, end: usize, f: &mut F| {
            if start < end {
                self.chop(&text[start..end], f);
            }
        };

        for (idx, ch) in text.char_indices() {
            let class = CharClass::of(ch);
            if idx == 0 {
                segment_class = class;
                continue;
            }
            if class == segment_class {
                continue;
            }
            // Segment boundary at `idx`.
            match (segment_class, class) {
                (CharClass::Whitespace, CharClass::Word) => {
                    // Attach the whitespace run to the following word.
                    pending_ws = Some((segment_start, idx));
                }
                (CharClass::Whitespace, CharClass::Punct) => {
                    flush_segment(segment_start, idx, &mut f);
                }
                (prev, _) => {
                    let start = match pending_ws.take() {
                        Some((ws_start, _)) if prev == CharClass::Word => ws_start,
                        other => {
                            // Whitespace was pending but previous segment was
                            // punctuation: flush the whitespace separately.
                            if let Some((ws_start, ws_end)) = other {
                                flush_segment(ws_start, ws_end, &mut f);
                            }
                            segment_start
                        }
                    };
                    flush_segment(start, idx, &mut f);
                }
            }
            segment_start = idx;
            segment_class = class;
        }

        // Flush the final segment (plus any pending whitespace prefix).
        if !text.is_empty() {
            let start = match pending_ws.take() {
                Some((ws_start, _)) if segment_class == CharClass::Word => ws_start,
                Some((ws_start, ws_end)) => {
                    flush_segment(ws_start, ws_end, &mut f);
                    segment_start
                }
                None => segment_start,
            };
            flush_segment(start, text.len(), &mut f);
        }
    }

    /// Chops a segment into pieces of at most `piece_bytes` bytes, always
    /// keeping at least one (possibly multi-byte) character per piece.
    fn chop<F: FnMut(&str)>(&self, segment: &str, f: &mut F) {
        let mut start = 0usize;
        let mut last_boundary = 0usize;
        for (idx, ch) in segment.char_indices() {
            if idx - start > 0 && idx - start + ch.len_utf8() > self.piece_bytes {
                f(&segment[start..idx]);
                start = idx;
            }
            last_boundary = idx + ch.len_utf8();
        }
        if start < last_boundary {
            f(&segment[start..last_boundary]);
        }
    }
}

/// Character classes used for segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CharClass {
    Whitespace,
    Word,
    Punct,
}

impl CharClass {
    fn of(ch: char) -> Self {
        if ch.is_whitespace() {
            CharClass::Whitespace
        } else if ch.is_alphanumeric() || ch == '_' {
            CharClass::Word
        } else {
            CharClass::Punct
        }
    }
}

/// 64-bit FNV-1a over bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Folds a 64-bit hash into a token id.
fn fold_hash(h: u64) -> TokenId {
    ((h >> 32) ^ (h & 0xffff_ffff)) as TokenId
}

/// Counts tokens in `text` using the default tokenizer.
///
/// Convenience for call sites that do not need a configured [`Tokenizer`].
///
/// # Examples
///
/// ```
/// assert!(llmqo_tokenizer::token_count("four score and seven years") >= 5);
/// ```
pub fn token_count(text: &str) -> usize {
    Tokenizer::new().count(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_empty() {
        let tok = Tokenizer::new();
        assert!(tok.tokenize("").is_empty());
        assert_eq!(tok.count(""), 0);
    }

    #[test]
    fn deterministic() {
        let tok = Tokenizer::new();
        let text = "The movie was reviewed favorably by 87% of critics.";
        assert_eq!(tok.tokenize(text), tok.tokenize(text));
    }

    #[test]
    fn count_matches_tokenize_len() {
        let tok = Tokenizer::new();
        for text in [
            "",
            "a",
            "hello world",
            "  leading and trailing  ",
            "punct!!! and, commas.",
            "JSON: {\"field\": \"value\"}",
            "unicode: naïve café 東京 🎬",
        ] {
            assert_eq!(tok.count(text), tok.tokenize(text).len(), "text={text:?}");
        }
    }

    #[test]
    fn same_word_same_id() {
        let tok = Tokenizer::new();
        let a = tok.tokenize("the");
        let b = tok.tokenize("the");
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn whitespace_attaches_to_word() {
        let tok = Tokenizer::new();
        // " the" is 4 bytes -> exactly one piece.
        assert_eq!(tok.count(" the"), 1);
        // "a b" -> "a", " b" -> 2 tokens.
        assert_eq!(tok.count("a b"), 2);
    }

    #[test]
    fn long_word_is_chopped() {
        let tok = Tokenizer::new();
        // 12 ASCII bytes / 4 per piece = 3 pieces.
        assert_eq!(tok.count("abcdefghijkl"), 3);
    }

    #[test]
    fn punct_runs_are_separate() {
        let tok = Tokenizer::new();
        // "a" + ", " is punct then whitespace then word...
        let n = tok.count("a, b");
        assert!(n >= 3, "expected at least 3 tokens, got {n}");
    }

    #[test]
    fn prose_ratio_is_roughly_four_chars_per_token() {
        let tok = Tokenizer::new();
        let text = "Given the following fields of a movie description and a user \
                    review, assign a sentiment score for the review out of five. \
                    Answer with only a single integer between one and five.";
        let ratio = text.len() as f64 / tok.count(text) as f64;
        assert!(
            (3.0..=6.0).contains(&ratio),
            "chars/token ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn piece_bytes_one_is_per_char() {
        let tok = Tokenizer::with_piece_bytes(1);
        assert_eq!(tok.count("abc"), 3);
    }

    #[test]
    #[should_panic(expected = "piece_bytes must be positive")]
    fn zero_piece_bytes_panics() {
        let _ = Tokenizer::with_piece_bytes(0);
    }

    #[test]
    fn multibyte_chars_do_not_panic() {
        let tok = Tokenizer::with_piece_bytes(2);
        // Each CJK char is 3 bytes > piece size; must still emit 1 char/piece.
        assert_eq!(tok.count("東京"), 2);
    }

    #[test]
    fn concatenated_fragments_share_token_prefix() {
        // The prompt serializer concatenates *token streams* of fragments, so
        // equal fragment sequences always share token prefixes. Verify the
        // underlying property on raw text ending at segment boundaries.
        let tok = Tokenizer::new();
        let a = tok.tokenize("alpha beta");
        let ab = tok.tokenize("alpha beta gamma");
        assert_eq!(&ab[..a.len()], &a[..]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Tokenizer::new().to_string().is_empty());
        assert!(!format!("{:?}", Tokenizer::new()).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn never_panics(text in ".*") {
            let tok = Tokenizer::new();
            let _ = tok.tokenize(&text);
            let _ = tok.count(&text);
        }

        #[test]
        fn count_equals_len(text in ".*") {
            let tok = Tokenizer::new();
            prop_assert_eq!(tok.count(&text), tok.tokenize(&text).len());
        }

        #[test]
        fn nonempty_text_has_tokens(text in ".+") {
            let tok = Tokenizer::new();
            prop_assert!(tok.count(&text) > 0);
        }

        #[test]
        fn deterministic_ids(text in ".*") {
            let tok = Tokenizer::new();
            prop_assert_eq!(tok.tokenize(&text), tok.tokenize(&text));
        }

        #[test]
        fn token_count_bounded_by_chars(text in ".*") {
            let tok = Tokenizer::new();
            // At most one token per char; at least len/(4*max_utf8) pieces.
            prop_assert!(tok.count(&text) <= text.chars().count());
        }

        #[test]
        fn smaller_pieces_mean_no_fewer_tokens(text in ".*") {
            let fine = Tokenizer::with_piece_bytes(2);
            let coarse = Tokenizer::with_piece_bytes(8);
            prop_assert!(fine.count(&text) >= coarse.count(&text));
        }
    }
}
