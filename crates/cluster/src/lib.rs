//! # llmqo-cluster — prefix-affinity routing and sharded serving
//!
//! The reordering solvers in `llmqo-core` maximize KV prefix reuse for a
//! *single* serving instance. At production scale a batch analytics job is
//! sharded across many replicas, and a naive dispatcher destroys exactly the
//! locality the solver created: round-robin sends consecutive rows of a
//! shared-prefix group to different replicas, so every replica recomputes
//! (and stores) the same prefix. This crate adds the missing distribution
//! layer:
//!
//! * [`ClusterRequest`] / [`ArrivalProcess`] — engine requests tagged with a
//!   shared-prefix identity (from
//!   [`ReorderPlan::prefix_keys`](llmqo_core::ReorderPlan::prefix_keys)) and
//!   an arrival time (batch, uniform, or seeded Poisson).
//! * [`Router`] — the routing-policy trait, with three built-ins:
//!   [`RoundRobin`] (prefix-blind cycling), [`LeastLoaded`] (prefix-blind
//!   balancing), and [`PrefixAffinity`] (rendezvous hashing on the prefix
//!   key, so each shared-prefix group lands on exactly one replica).
//! * [`ClusterSim`] — a discrete-event dispatcher over N
//!   [`EngineSession`](llmqo_serve::EngineSession) replicas with bounded
//!   per-replica queues (backpressure) on one shared timeline.
//! * [`ClusterReport`] — makespan, cluster-wide and per-replica prefix hit
//!   rates, queue-wait percentiles, and load skew.
//! * [`FaultPlan`] / [`RetryPolicy`] /
//!   [`ClusterSim::run_with_faults`] — deterministic, sim-time fault
//!   injection (crash/restart, drain/rejoin, straggler windows, transient
//!   errors) with bounded retries, exponential backoff + deterministic
//!   jitter, per-request deadlines, hedging, and prefix-affinity-aware
//!   failover; failure metrics land in [`ClusterReport::faults`]
//!   ([`FaultStats`]).
//! * [`AdmissionPolicy`] / [`ScalePolicy`] / [`OverloadPolicy`] — the
//!   overload-survival layer: KV-aware admission control, priority load
//!   shedding with per-tenant quotas (ledgered in [`ShedStats`], extending
//!   the zero-loss invariant to `succeeded + failed + shed == offered`), and
//!   a seeded elastic autoscaler that drains replicas at low KV occupancy
//!   and warms cold ones when queue wait crosses a threshold
//!   ([`ScaleStats`]). Inert policies reproduce
//!   [`ClusterSim::run`] / [`ClusterSim::run_with_faults`] byte-for-byte.
//!
//! # Example
//!
//! Route a GGR-style grouped workload across 4 replicas and compare
//! policies:
//!
//! ```
//! use llmqo_cluster::{
//!     ClusterConfig, ClusterRequest, ClusterSim, PrefixAffinity, RoundRobin,
//! };
//! use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine,
//!                   SimRequest};
//!
//! let engine = SimEngine::new(
//!     Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
//!     EngineConfig::default(),
//! );
//! let sim = ClusterSim::new(engine, ClusterConfig { replicas: 4, queue_cap: 32 });
//! // 30 groups of 8 requests sharing a 48-token prefix within each group.
//! let requests: Vec<ClusterRequest> = (0..240usize)
//!     .map(|i| {
//!         let g = (i / 8) as u32;
//!         let mut toks: Vec<u32> = (0..48).map(|j| g * 1000 + j).collect();
//!         toks.extend((0..12).map(|j| 500_000 + i as u32 * 64 + j));
//!         ClusterRequest::new(SimRequest::from_tokens(i, toks, 2), u64::from(g))
//!     })
//!     .collect();
//! let rr = sim.run(&mut RoundRobin, &requests).unwrap();
//! let pa = sim.run(&mut PrefixAffinity::default(), &requests).unwrap();
//! assert_eq!(rr.completed, 240);
//! assert!(pa.prefix_hit_rate() >= rr.prefix_hit_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod chaos;
mod fault;
mod overload;
mod report;
mod request;
mod router;
mod sim;

pub use fault::{FaultEvent, FaultPlan, FaultStats, RetryPolicy};
pub use overload::{AdmissionPolicy, OverloadPolicy, ScalePolicy, ScaleStats, ShedStats};
pub use report::{ClusterReport, ReplicaOccupancy, ReplicaReport};
pub use request::{split_by_tier, tag_requests, ArrivalProcess, ClusterRequest};
pub use router::{LeastLoaded, PrefixAffinity, ReplicaSnapshot, RoundRobin, Router};
pub use sim::{ClusterConfig, ClusterError, ClusterSim};
