//! Aggregated results of a sharded serving run.

use crate::fault::FaultStats;
use crate::overload::{ScaleStats, ShedStats};
use llmqo_serve::{percentile, Completion, EngineReport};
use std::fmt;

/// KV-cache occupancy of one replica, sampled at every placement decision
/// the dispatcher makes for it (one sample per routed request, taken right
/// before the request is enqueued). This is where the session probes —
/// `kv_blocks_in_use` and `probe_cached_tokens` — surface in cluster
/// reports: what the router *could* have known at each decision point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplicaOccupancy {
    /// Placement decisions sampled (== requests routed here).
    pub samples: u64,
    /// Sum over samples of KV blocks in use (cached + running).
    pub kv_blocks_sum: u64,
    /// Highest KV-blocks-in-use value seen at any placement.
    pub kv_blocks_peak: usize,
    /// The replica's total KV capacity in blocks.
    pub capacity_blocks: usize,
    /// Prompt tokens the replica's cache would have served across all
    /// requests placed on it, probed at placement time (an upper bound on
    /// realized hits: admission happens later, after possible evictions).
    pub probed_cached_tokens: u64,
}

impl ReplicaOccupancy {
    /// Mean fraction of KV capacity in use at placement time (0 when no
    /// samples were taken).
    pub fn mean_utilization(&self) -> f64 {
        if self.samples == 0 || self.capacity_blocks == 0 {
            0.0
        } else {
            self.kv_blocks_sum as f64 / (self.samples as f64 * self.capacity_blocks as f64)
        }
    }

    /// Peak fraction of KV capacity in use at placement time.
    pub fn peak_utilization(&self) -> f64 {
        if self.capacity_blocks == 0 {
            0.0
        } else {
            self.kv_blocks_peak as f64 / self.capacity_blocks as f64
        }
    }
}

/// One replica's share of the job.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// The replica's aggregate engine metrics. `job_completion_time_s` is
    /// the replica's final clock on the shared timeline (including idle
    /// gaps), so the cluster makespan is the max over replicas.
    pub engine: EngineReport,
    /// Per-request completion records on this replica.
    pub completions: Vec<Completion>,
    /// Requests routed to this replica.
    pub assigned: usize,
    /// Seconds this replica spent idle waiting for work.
    pub idle_s: f64,
    /// KV occupancy sampled at the dispatcher's placement decisions.
    pub occupancy: ReplicaOccupancy,
}

impl ReplicaReport {
    /// The replica's prefix hit rate.
    pub fn prefix_hit_rate(&self) -> f64 {
        self.engine.prefix_hit_rate()
    }
}

/// Whole-cluster results for one routed job.
///
/// Equality deliberately ignores [`backpressure_macro_steps`]: it counts
/// how the dispatcher *stepped*, not what the cluster *did*, and the whole
/// point of the differential suites is asserting that macro-stepped runs
/// (counter > 0) equal their single-stepped oracles (counter == 0).
///
/// [`backpressure_macro_steps`]: ClusterReport::backpressure_macro_steps
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Routing policy name.
    pub policy: String,
    /// Per-replica breakdowns, indexed by replica.
    pub replicas: Vec<ReplicaReport>,
    /// Time the last replica finished, seconds (the sharded job-completion
    /// time — the paper's primary metric, lifted to the cluster).
    pub makespan_s: f64,
    /// Requests completed across all replicas.
    pub completed: usize,
    /// Prompt tokens across all replicas.
    pub total_prompt_tokens: u64,
    /// Prompt tokens served from some replica's prefix cache.
    pub cached_prompt_tokens: u64,
    /// Median admission-queue wait (arrival to engine admission), seconds.
    pub queue_wait_p50_s: f64,
    /// 99th-percentile queue wait, seconds.
    pub queue_wait_p99_s: f64,
    /// Worst queue wait, seconds.
    pub queue_wait_max_s: f64,
    /// Failure metrics. All zeros (and [`FaultStats::engaged`] is `false`)
    /// unless the run went through
    /// [`ClusterSim::run_with_faults`](crate::ClusterSim::run_with_faults)
    /// with a non-inert plan or policy.
    pub faults: FaultStats,
    /// Load-shedding ledger. All zeros (and [`ShedStats::engaged`] is
    /// `false`) unless the run went through a non-inert
    /// [`AdmissionPolicy`](crate::AdmissionPolicy); when engaged, every
    /// offered request is exactly one of succeeded, failed, or shed.
    pub shed: ShedStats,
    /// Elastic-autoscaling counters. All zeros unless the run went through
    /// [`ClusterSim::run_overloaded`](crate::ClusterSim::run_overloaded)
    /// with a [`ScalePolicy`](crate::ScalePolicy).
    pub scaling: ScaleStats,
    /// Backpressured phases the dispatcher collapsed into `step_until`
    /// jumps instead of single-stepping (0 for single-stepped runs and for
    /// routers that keep the conservative
    /// [`Router::retry_insensitive`](crate::Router::retry_insensitive)
    /// default). Scheduling bookkeeping, excluded from `PartialEq`.
    pub backpressure_macro_steps: u64,
}

impl PartialEq for ClusterReport {
    fn eq(&self, other: &Self) -> bool {
        let ClusterReport {
            policy,
            replicas,
            makespan_s,
            completed,
            total_prompt_tokens,
            cached_prompt_tokens,
            queue_wait_p50_s,
            queue_wait_p99_s,
            queue_wait_max_s,
            faults,
            shed,
            scaling,
            backpressure_macro_steps: _,
        } = self;
        *policy == other.policy
            && *replicas == other.replicas
            && *makespan_s == other.makespan_s
            && *completed == other.completed
            && *total_prompt_tokens == other.total_prompt_tokens
            && *cached_prompt_tokens == other.cached_prompt_tokens
            && *queue_wait_p50_s == other.queue_wait_p50_s
            && *queue_wait_p99_s == other.queue_wait_p99_s
            && *queue_wait_max_s == other.queue_wait_max_s
            && *faults == other.faults
            && *shed == other.shed
            && *scaling == other.scaling
    }
}

impl ClusterReport {
    pub(crate) fn assemble(
        policy: &str,
        replicas: Vec<ReplicaReport>,
        mut queue_waits: Vec<f64>,
    ) -> Self {
        queue_waits.sort_by(f64::total_cmp);
        ClusterReport {
            policy: policy.to_owned(),
            makespan_s: replicas
                .iter()
                .map(|r| r.engine.job_completion_time_s)
                .fold(0.0, f64::max),
            completed: replicas.iter().map(|r| r.engine.completed).sum(),
            total_prompt_tokens: replicas.iter().map(|r| r.engine.total_prompt_tokens).sum(),
            cached_prompt_tokens: replicas.iter().map(|r| r.engine.cached_prompt_tokens).sum(),
            queue_wait_p50_s: percentile(&queue_waits, 0.50),
            queue_wait_p99_s: percentile(&queue_waits, 0.99),
            queue_wait_max_s: queue_waits.last().copied().unwrap_or(0.0),
            faults: FaultStats::default(),
            shed: ShedStats::default(),
            scaling: ScaleStats::default(),
            backpressure_macro_steps: 0,
            replicas,
        }
    }

    /// Cluster-wide prefix hit rate: cached prompt tokens over all prompt
    /// tokens, across every replica (Table 2's PHR, lifted to the cluster).
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.total_prompt_tokens == 0 {
            0.0
        } else {
            self.cached_prompt_tokens as f64 / self.total_prompt_tokens as f64
        }
    }

    /// Load skew: the busiest replica's assignment count over the mean
    /// (1.0 = perfectly balanced; `replicas` = everything on one replica).
    pub fn load_skew(&self) -> f64 {
        let total: usize = self.replicas.iter().map(|r| r.assigned).sum();
        if total == 0 || self.replicas.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.replicas.len() as f64;
        let max = self.replicas.iter().map(|r| r.assigned).max().unwrap_or(0);
        max as f64 / mean
    }

    /// Completed requests per second of makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.makespan_s
        }
    }

    /// *Useful* requests per second of makespan: successes that met their
    /// deadline, over the makespan. Distinct from
    /// [`throughput_rps`](ClusterReport::throughput_rps) under faults,
    /// where wasted hedge work and late completions inflate raw completion
    /// counts; identical to it on fault-free runs.
    pub fn goodput_rps(&self) -> f64 {
        if !self.faults.engaged() {
            return self.throughput_rps();
        }
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        let useful = self
            .faults
            .succeeded
            .saturating_sub(usize::try_from(self.faults.late_successes).unwrap_or(usize::MAX));
        useful as f64 / self.makespan_s
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "policy {:<16} replicas {:>2}  makespan {:>8.2}s  PHR {:>5.1}%  \
             skew {:>4.2}  wait p50/p99 {:>6.2}s/{:>6.2}s  done {}",
            self.policy,
            self.replicas.len(),
            self.makespan_s,
            self.prefix_hit_rate() * 100.0,
            self.load_skew(),
            self.queue_wait_p50_s,
            self.queue_wait_p99_s,
            self.completed
        )?;
        if self.faults.engaged() {
            let fs = &self.faults;
            writeln!(
                f,
                "  faults: offered {}  ok {}  failed {}  retries {}  hedges {}/{} won  \
                 failovers {}  deadline misses {}  goodput {:.2} rps  unavailable {:.2}s/{} windows",
                fs.offered,
                fs.succeeded,
                fs.failed,
                fs.retries,
                fs.hedges_won,
                fs.hedges_issued,
                fs.failovers,
                fs.deadline_misses,
                self.goodput_rps(),
                fs.unavailable_s,
                fs.unavailability_windows
            )?;
        }
        if self.shed.engaged() {
            let s = &self.shed;
            writeln!(
                f,
                "  shed: offered {}  shed {} (queue {}  kv {}  quota {})  max shed priority {}",
                s.offered,
                s.shed,
                s.shed_queue_full,
                s.shed_kv_pressure,
                s.shed_tenant_quota,
                s.max_shed_priority
            )?;
        }
        if self.scaling.engaged() {
            let s = &self.scaling;
            writeln!(
                f,
                "  scaling: checks {}  ups {}  downs {}  fleet peak/low {}/{}",
                s.checks, s.scale_ups, s.scale_downs, s.peak_replicas, s.low_replicas
            )?;
        }
        for (i, r) in self.replicas.iter().enumerate() {
            writeln!(
                f,
                "  replica {i}: assigned {:>5}  PHR {:>5.1}%  finish {:>8.2}s  idle {:>7.2}s  \
                 kv mean/peak {:>5.1}%/{:>5.1}%",
                r.assigned,
                r.prefix_hit_rate() * 100.0,
                r.engine.job_completion_time_s,
                r.idle_s,
                r.occupancy.mean_utilization() * 100.0,
                r.occupancy.peak_utilization() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(assigned: usize, total: u64, cached: u64, finish: f64) -> ReplicaReport {
        ReplicaReport {
            engine: EngineReport {
                job_completion_time_s: finish,
                total_prompt_tokens: total,
                cached_prompt_tokens: cached,
                completed: assigned,
                ..EngineReport::default()
            },
            completions: Vec::new(),
            assigned,
            idle_s: 0.0,
            occupancy: ReplicaOccupancy::default(),
        }
    }

    #[test]
    fn occupancy_utilization_helpers() {
        let occ = ReplicaOccupancy {
            samples: 4,
            kv_blocks_sum: 200,
            kv_blocks_peak: 80,
            capacity_blocks: 100,
            probed_cached_tokens: 64,
        };
        assert!((occ.mean_utilization() - 0.5).abs() < 1e-12);
        assert!((occ.peak_utilization() - 0.8).abs() < 1e-12);
        assert_eq!(ReplicaOccupancy::default().mean_utilization(), 0.0);
        assert_eq!(ReplicaOccupancy::default().peak_utilization(), 0.0);
    }

    #[test]
    fn aggregates_cover_all_replicas() {
        let r = ClusterReport::assemble(
            "test",
            vec![replica(10, 1000, 500, 4.0), replica(30, 3000, 600, 9.0)],
            vec![0.5, 0.1, 2.0, 0.2],
        );
        assert_eq!(r.makespan_s, 9.0);
        assert_eq!(r.completed, 40);
        assert!((r.prefix_hit_rate() - 1100.0 / 4000.0).abs() < 1e-12);
        assert!((r.load_skew() - 1.5).abs() < 1e-12);
        assert_eq!(r.queue_wait_max_s, 2.0);
        assert_eq!(r.queue_wait_p50_s, 0.2);
        assert!((r.throughput_rps() - 40.0 / 9.0).abs() < 1e-12);
        assert!(r.to_string().contains("replica 1"));
    }

    #[test]
    fn empty_cluster_edge_cases() {
        let r = ClusterReport::assemble("empty", Vec::new(), Vec::new());
        assert_eq!(r.prefix_hit_rate(), 0.0);
        assert_eq!(r.load_skew(), 1.0);
        assert_eq!(r.throughput_rps(), 0.0);
        assert_eq!(r.queue_wait_p99_s, 0.0);
    }
}
