//! Overload-survival policy: KV-aware admission control, priority load
//! shedding with per-tenant quotas, and elastic mid-job autoscaling.
//!
//! An [`AdmissionPolicy`] bounds what the dispatcher *accepts*: instead of
//! growing the admission queue without limit, arrivals are gated on queue
//! depth, on the fleet's live KV-block occupancy (the same
//! `kv_blocks_in_use` gauges the routers read), and on per-tenant pending
//! quotas. Under pressure the sim sheds the **lowest-priority** work
//! deterministically — a higher-priority arrival evicts the youngest
//! lowest-priority queued request rather than being dropped itself — and
//! every shed is recorded in a [`ShedStats`] ledger that extends the chaos
//! invariant to `succeeded + failed + shed == offered`.
//!
//! A [`ScalePolicy`] closes the control loop: at a fixed sim-time cadence it
//! drains a replica when the fleet is cold (low KV occupancy, empty queue)
//! and warms a new one — cold prefix cache, rendezvous remap — when the
//! admission queue's head has waited too long, with cooldown hysteresis so
//! the two reactions cannot flap. Scale events reuse the drain / cold-rejoin
//! machinery PR 7 built for planned faults; [`ScaleStats`] counts them.
//!
//! Everything here is plain data consumed by
//! [`ClusterSim::run_admitted`](crate::ClusterSim::run_admitted) and
//! [`ClusterSim::run_overloaded`](crate::ClusterSim::run_overloaded).
//! Default-constructed policies are **inert**: running with them is
//! byte-identical to [`ClusterSim::run`](crate::ClusterSim::run) /
//! [`run_with_faults`](crate::ClusterSim::run_with_faults), the property the
//! overload differential suite pins.

use crate::request::ClusterRequest;
use crate::sim::ClusterError;

/// Bounds on what the admission queue accepts. All gates default to `None`
/// (unbounded), making [`AdmissionPolicy::default`] inert.
///
/// Decision order at each arrival: tenant quota first (over-quota arrivals
/// are shed outright — evicting another tenant's work cannot fix a quota
/// breach), then queue depth, then KV pressure. The latter two shed by
/// priority: the victim is the minimum-priority request among the arrival
/// and everything still waiting in admission, youngest first on ties (so
/// the arrival itself loses ties).
///
/// # Examples
///
/// ```
/// use llmqo_cluster::AdmissionPolicy;
///
/// let policy = AdmissionPolicy::bounded(64)
///     .with_kv_gate(0.9)
///     .with_tenant_quota(16);
/// assert!(!policy.is_inert());
/// assert!(AdmissionPolicy::default().is_inert());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdmissionPolicy {
    /// Maximum requests waiting in the global admission queue. An arrival
    /// that would exceed it sheds the lowest-priority pending request
    /// (possibly itself).
    pub max_pending: Option<usize>,
    /// Fleet-mean KV-block utilization (in-use over capacity, across
    /// routable replicas) at or above which arrivals shed by priority.
    /// Must be in `(0, 1]`.
    pub max_kv_utilization: Option<f64>,
    /// Maximum pending admission-queue requests per tenant; arrivals of an
    /// over-quota tenant are shed regardless of priority.
    pub tenant_quota: Option<usize>,
}

impl AdmissionPolicy {
    /// A policy bounding only the admission-queue depth.
    pub fn bounded(max_pending: usize) -> Self {
        AdmissionPolicy {
            max_pending: Some(max_pending),
            ..AdmissionPolicy::default()
        }
    }

    /// Adds the KV-occupancy gate.
    #[must_use]
    pub fn with_kv_gate(mut self, max_kv_utilization: f64) -> Self {
        self.max_kv_utilization = Some(max_kv_utilization);
        self
    }

    /// Adds the per-tenant pending quota.
    #[must_use]
    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota);
        self
    }

    /// Whether the policy gates nothing (every arrival is admitted, exactly
    /// like [`ClusterSim::run`](crate::ClusterSim::run)).
    pub fn is_inert(&self) -> bool {
        self.max_pending.is_none()
            && self.max_kv_utilization.is_none()
            && self.tenant_quota.is_none()
    }

    pub(crate) fn validate(&self) -> Result<(), ClusterError> {
        let bad = |reason| Err(ClusterError::InvalidOverloadPolicy { reason });
        if self.max_pending == Some(0) {
            return bad("max_pending must be at least one");
        }
        if let Some(u) = self.max_kv_utilization {
            if !u.is_finite() || u <= 0.0 || u > 1.0 {
                return bad("max_kv_utilization must be in (0, 1]");
            }
        }
        if self.tenant_quota == Some(0) {
            return bad("tenant_quota must be at least one");
        }
        Ok(())
    }
}

/// The elastic-autoscaling control loop: evaluated every
/// [`check_interval_s`](ScalePolicy::check_interval_s) seconds of sim time
/// while the job has pending work.
///
/// * **Scale up** when the admission queue's head has been waiting longer
///   than [`queue_wait_up_s`](ScalePolicy::queue_wait_up_s): a cold replica
///   (empty prefix cache) is provisioned and joins the routable fleet after
///   [`warmup_s`](ScalePolicy::warmup_s) — prefix-affinity routers then
///   remap rendezvous ranks over the larger fleet automatically.
/// * **Scale down** when the queue is empty and the fleet's mean KV
///   utilization is below [`kv_low_watermark`](ScalePolicy::kv_low_watermark):
///   the least-loaded routable replica drains gracefully and leaves for
///   good.
/// * Both directions share one [`cooldown_s`](ScalePolicy::cooldown_s)
///   hysteresis window, and the fleet is clamped to
///   `[min_replicas, max_replicas]`.
///
/// The policy is seeded: the only randomness — a deterministic jitter of
/// `warmup_s` by ±[`warmup_jitter_frac`](ScalePolicy::warmup_jitter_frac)
/// per scale-up — replays byte-for-byte from
/// [`seed`](ScalePolicy::seed).
///
/// # Examples
///
/// ```
/// use llmqo_cluster::ScalePolicy;
///
/// let policy = ScalePolicy::elastic(1, 8)
///     .reacting(0.5, 0.1)
///     .with_cadence(0.25, 1.0)
///     .with_warmup(0.5);
/// assert!(policy.max_replicas == 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePolicy {
    /// Smallest routable fleet the policy will drain down to.
    pub min_replicas: usize,
    /// Largest fleet (including replicas still warming) it will grow to.
    pub max_replicas: usize,
    /// Scale up once the oldest pending admission entry has waited this
    /// long, seconds.
    pub queue_wait_up_s: f64,
    /// Scale down once the queue is empty and fleet-mean KV utilization is
    /// below this fraction.
    pub kv_low_watermark: f64,
    /// Control-loop cadence, sim seconds.
    pub check_interval_s: f64,
    /// Minimum sim seconds between consecutive scale actions (hysteresis).
    pub cooldown_s: f64,
    /// Cold-start delay before a scaled-up replica becomes routable,
    /// seconds.
    pub warmup_s: f64,
    /// Deterministic jitter amplitude on `warmup_s`, as a fraction in
    /// `[0, 1]`; each scale-up's warmup is scaled by a factor in
    /// `[1 − f, 1 + f)` drawn from [`seed`](ScalePolicy::seed).
    pub warmup_jitter_frac: f64,
    /// Seed for the warmup jitter draws.
    pub seed: u64,
}

impl ScalePolicy {
    /// A policy allowed to resize within `[min_replicas, max_replicas]`,
    /// with moderate defaults: scale up after 0.5 s of head-of-line wait,
    /// down below 10% KV utilization, checking every 0.25 s with a 1 s
    /// cooldown and a 0.5 s jitter-free warmup.
    pub fn elastic(min_replicas: usize, max_replicas: usize) -> Self {
        ScalePolicy {
            min_replicas,
            max_replicas,
            queue_wait_up_s: 0.5,
            kv_low_watermark: 0.1,
            check_interval_s: 0.25,
            cooldown_s: 1.0,
            warmup_s: 0.5,
            warmup_jitter_frac: 0.0,
            seed: 0,
        }
    }

    /// Sets the scale-up queue-wait threshold and scale-down KV watermark.
    #[must_use]
    pub fn reacting(mut self, queue_wait_up_s: f64, kv_low_watermark: f64) -> Self {
        self.queue_wait_up_s = queue_wait_up_s;
        self.kv_low_watermark = kv_low_watermark;
        self
    }

    /// Sets the check cadence and cooldown hysteresis.
    #[must_use]
    pub fn with_cadence(mut self, check_interval_s: f64, cooldown_s: f64) -> Self {
        self.check_interval_s = check_interval_s;
        self.cooldown_s = cooldown_s;
        self
    }

    /// Sets the cold-start warmup delay.
    #[must_use]
    pub fn with_warmup(mut self, warmup_s: f64) -> Self {
        self.warmup_s = warmup_s;
        self
    }

    /// Sets the seeded warmup jitter.
    #[must_use]
    pub fn with_warmup_jitter(mut self, frac: f64, seed: u64) -> Self {
        self.warmup_jitter_frac = frac;
        self.seed = seed;
        self
    }

    /// The jittered warmup delay for the `n`-th scale-up. Pure and
    /// deterministic in `(seed, n)`.
    pub(crate) fn warmup_for(&self, n: u64) -> f64 {
        if self.warmup_jitter_frac == 0.0 {
            return self.warmup_s;
        }
        let u = llmqo_serve::fault_unit(self.seed, n, u64::from(u32::MAX) + 1);
        (self.warmup_s * (1.0 + self.warmup_jitter_frac * (2.0 * u - 1.0))).max(0.0)
    }

    pub(crate) fn validate(&self, initial_replicas: usize) -> Result<(), ClusterError> {
        let bad = |reason| Err(ClusterError::InvalidOverloadPolicy { reason });
        if self.min_replicas == 0 {
            return bad("min_replicas must be at least one");
        }
        if self.max_replicas < initial_replicas {
            return bad("max_replicas must be at least the initial fleet size");
        }
        if self.min_replicas > initial_replicas {
            return bad("min_replicas must not exceed the initial fleet size");
        }
        if !self.queue_wait_up_s.is_finite() || self.queue_wait_up_s < 0.0 {
            return bad("queue_wait_up_s must be finite and non-negative");
        }
        if !self.kv_low_watermark.is_finite() || !(0.0..=1.0).contains(&self.kv_low_watermark) {
            return bad("kv_low_watermark must be in [0, 1]");
        }
        if !self.check_interval_s.is_finite() || self.check_interval_s <= 0.0 {
            return bad("check_interval_s must be finite and positive");
        }
        if !self.cooldown_s.is_finite() || self.cooldown_s < 0.0 {
            return bad("cooldown_s must be finite and non-negative");
        }
        if !self.warmup_s.is_finite() || self.warmup_s < 0.0 {
            return bad("warmup_s must be finite and non-negative");
        }
        if !self.warmup_jitter_frac.is_finite() || !(0.0..=1.0).contains(&self.warmup_jitter_frac) {
            return bad("warmup_jitter_frac must be in [0, 1]");
        }
        Ok(())
    }
}

/// The full overload-survival configuration for
/// [`ClusterSim::run_overloaded`](crate::ClusterSim::run_overloaded):
/// admission gates plus an optional autoscaler. The default — inert
/// admission, no scaling — changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverloadPolicy {
    /// Admission gates and shedding rules.
    pub admission: AdmissionPolicy,
    /// The elastic-resize control loop, if any.
    pub scale: Option<ScalePolicy>,
}

impl OverloadPolicy {
    /// Gating only: the given admission policy, no autoscaler.
    pub fn admission(admission: AdmissionPolicy) -> Self {
        OverloadPolicy {
            admission,
            scale: None,
        }
    }

    /// Adds the autoscaler.
    #[must_use]
    pub fn with_scale(mut self, scale: ScalePolicy) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Whether the whole policy changes nothing.
    pub fn is_inert(&self) -> bool {
        self.admission.is_inert() && self.scale.is_none()
    }

    pub(crate) fn validate(&self, initial_replicas: usize) -> Result<(), ClusterError> {
        self.admission.validate()?;
        if let Some(s) = &self.scale {
            s.validate(initial_replicas)?;
        }
        Ok(())
    }
}

/// The load-shedding ledger of a gated run, attached to
/// [`ClusterReport::shed`](crate::ClusterReport::shed). All zeros (the
/// default) when no [`AdmissionPolicy`] gate fired — and
/// [`engaged`](ShedStats::engaged) is `false` unless the run went through a
/// non-inert policy at all.
///
/// The ledger extends the chaos invariant: every offered request is exactly
/// one of succeeded, failed, or shed — `succeeded + failed + shed ==
/// offered` (on fault-free gated runs, `completed + shed == offered`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShedStats {
    /// Logical requests offered to the gated run. Zero means no admission
    /// policy was engaged.
    pub offered: usize,
    /// Requests shed (never placed on any replica). Always equals the sum
    /// of the three per-reason counters.
    pub shed: usize,
    /// Sheds forced by the admission-queue depth bound.
    pub shed_queue_full: usize,
    /// Sheds forced by the fleet KV-occupancy gate.
    pub shed_kv_pressure: usize,
    /// Sheds forced by a per-tenant quota.
    pub shed_tenant_quota: usize,
    /// The highest priority value among shed requests (0 when nothing was
    /// shed) — the number the zero-high-priority-loss assertions read.
    pub max_shed_priority: u8,
}

impl ShedStats {
    /// Whether a non-inert admission policy governed the run.
    pub fn engaged(&self) -> bool {
        self.offered > 0
    }

    /// Accounts one shed request.
    pub(crate) fn record(&mut self, reason: ShedReason, priority: u8) {
        self.shed += 1;
        match reason {
            ShedReason::QueueFull => self.shed_queue_full += 1,
            ShedReason::KvPressure => self.shed_kv_pressure += 1,
            ShedReason::TenantQuota => self.shed_tenant_quota += 1,
        }
        self.max_shed_priority = self.max_shed_priority.max(priority);
    }
}

/// Which admission gate forced a shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShedReason {
    QueueFull,
    KvPressure,
    TenantQuota,
}

impl ShedReason {
    pub(crate) fn counter(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "cluster.shed.queue_full",
            ShedReason::KvPressure => "cluster.shed.kv_pressure",
            ShedReason::TenantQuota => "cluster.shed.tenant_quota",
        }
    }
}

/// What the admission gates ruled for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShedDecision {
    /// No gate fired: enqueue the arrival.
    Admit,
    /// Drop the arrival itself.
    ShedArrival(ShedReason),
    /// Drop the pending request at this admission-queue position and
    /// enqueue the arrival in its stead (a higher-priority arrival evicting
    /// lower-priority queued work).
    EvictPending(usize, ShedReason),
}

/// Applies the gates, in documented order (tenant quota → queue depth → KV
/// pressure), to an arrival with the given `(tenant, priority)`.
/// `sheddable` lists the pending first-attempt requests as
/// `(queue position, tenant, priority)` in queue (= age) order;
/// `pending_len` is the full admission-queue length. Deterministic: the
/// shed victim is the minimum-priority candidate, youngest first on ties —
/// and the arrival is always the youngest candidate.
pub(crate) fn decide_admission(
    policy: &AdmissionPolicy,
    tenant: u32,
    priority: u8,
    pending_len: usize,
    sheddable: &[(usize, u32, u8)],
    fleet_kv_utilization: f64,
) -> ShedDecision {
    if let Some(quota) = policy.tenant_quota {
        let held = sheddable.iter().filter(|&&(_, t, _)| t == tenant).count();
        if held >= quota {
            return ShedDecision::ShedArrival(ShedReason::TenantQuota);
        }
    }
    let reason = if policy.max_pending.is_some_and(|m| pending_len >= m) {
        Some(ShedReason::QueueFull)
    } else if policy
        .max_kv_utilization
        .is_some_and(|gate| fleet_kv_utilization >= gate)
    {
        Some(ShedReason::KvPressure)
    } else {
        None
    };
    let Some(reason) = reason else {
        return ShedDecision::Admit;
    };
    // Victim: the minimum-priority candidate among the arrival and every
    // sheddable pending request; the youngest loses ties. Scanning in queue
    // order and keeping the *last* strictly-lower-priority entry implements
    // exactly that (the arrival, being youngest of all, loses every tie).
    let mut victim: Option<(usize, u8)> = None;
    for &(pos, _, p) in sheddable {
        if p < priority && victim.is_none_or(|(_, best)| p <= best) {
            victim = Some((pos, p));
        }
    }
    match victim {
        Some((pos, _)) => ShedDecision::EvictPending(pos, reason),
        None => ShedDecision::ShedArrival(reason),
    }
}

/// Cold path: the shed counter and trace instant, only when observability
/// is on.
pub(crate) fn obs_shed(request: &ClusterRequest, reason: ShedReason, t: f64) {
    if !llmqo_obs::enabled() {
        return;
    }
    let r = llmqo_obs::registry();
    r.counter("cluster.requests_shed").inc();
    r.counter(reason.counter()).inc();
    llmqo_obs::tracer().instant(
        0,
        request.request.id as u64,
        "shed",
        "overload",
        t,
        &[
            ("tenant", (request.tenant as usize).into()),
            ("priority", (request.priority as usize).into()),
        ],
    );
}

/// Cold path: one scale-event counter and trace instant.
pub(crate) fn obs_scale(event: &'static str, replica: usize, fleet: usize, t: f64) {
    if !llmqo_obs::enabled() {
        return;
    }
    llmqo_obs::registry()
        .counter(&format!("cluster.scale.{event}"))
        .inc();
    llmqo_obs::tracer().instant(
        0,
        replica as u64,
        &format!("scale.{event}"),
        "overload",
        t,
        &[("replica", replica.into()), ("fleet", fleet.into())],
    );
}

/// Autoscaling counters of an elastic run, attached to
/// [`ClusterReport::scaling`](crate::ClusterReport::scaling). All zeros
/// (the default) when no [`ScalePolicy`] ran.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScaleStats {
    /// Control-loop evaluations that fired.
    pub checks: u64,
    /// Cold replicas provisioned (each joins after its warmup).
    pub scale_ups: u64,
    /// Replicas drained out of the fleet for good.
    pub scale_downs: u64,
    /// Largest routable-or-warming fleet size reached.
    pub peak_replicas: usize,
    /// Smallest routable fleet size reached.
    pub low_replicas: usize,
}

impl ScaleStats {
    /// Whether a scale policy governed the run.
    pub fn engaged(&self) -> bool {
        self.checks > 0 || self.scale_ups > 0 || self.scale_downs > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies_are_inert() {
        assert!(AdmissionPolicy::default().is_inert());
        assert!(OverloadPolicy::default().is_inert());
        assert!(AdmissionPolicy::default().validate().is_ok());
        assert!(OverloadPolicy::default().validate(4).is_ok());
        assert!(!ShedStats::default().engaged());
        assert!(!ScaleStats::default().engaged());
    }

    #[test]
    fn builders_compose() {
        let p = AdmissionPolicy::bounded(8)
            .with_kv_gate(0.75)
            .with_tenant_quota(2);
        assert_eq!(p.max_pending, Some(8));
        assert_eq!(p.max_kv_utilization, Some(0.75));
        assert_eq!(p.tenant_quota, Some(2));
        assert!(!p.is_inert());
        assert!(p.validate().is_ok());

        let o = OverloadPolicy::admission(p).with_scale(ScalePolicy::elastic(1, 6));
        assert!(!o.is_inert());
        assert!(o.validate(2).is_ok());
    }

    #[test]
    fn validation_rejects_bad_policies() {
        assert!(AdmissionPolicy::bounded(0).validate().is_err());
        assert!(AdmissionPolicy::default()
            .with_kv_gate(0.0)
            .validate()
            .is_err());
        assert!(AdmissionPolicy::default()
            .with_kv_gate(1.5)
            .validate()
            .is_err());
        assert!(AdmissionPolicy::default()
            .with_tenant_quota(0)
            .validate()
            .is_err());

        let base = ScalePolicy::elastic(1, 8);
        assert!(base.validate(4).is_ok());
        assert!(ScalePolicy::elastic(0, 8).validate(4).is_err());
        assert!(ScalePolicy::elastic(1, 2).validate(4).is_err());
        assert!(ScalePolicy::elastic(5, 8).validate(4).is_err());
        assert!(base.reacting(f64::NAN, 0.1).validate(4).is_err());
        assert!(base.reacting(0.5, 2.0).validate(4).is_err());
        assert!(base.with_cadence(0.0, 1.0).validate(4).is_err());
        assert!(base.with_cadence(0.25, -1.0).validate(4).is_err());
        assert!(base.with_warmup(f64::INFINITY).validate(4).is_err());
        assert!(base.with_warmup_jitter(3.0, 0).validate(4).is_err());
    }

    #[test]
    fn warmup_jitter_is_deterministic_and_bounded() {
        let p = ScalePolicy::elastic(1, 8)
            .with_warmup(1.0)
            .with_warmup_jitter(0.5, 42);
        for n in 0..32 {
            let w = p.warmup_for(n);
            assert_eq!(w, p.warmup_for(n), "scale-up {n} replays");
            assert!((0.5..=1.5).contains(&w), "scale-up {n} jitter {w}");
        }
        assert_ne!(p.warmup_for(0), p.warmup_for(1));
        let plain = ScalePolicy::elastic(1, 8).with_warmup(1.0);
        assert_eq!(plain.warmup_for(7), 1.0);
    }
}
