//! Cluster-level requests: an engine request tagged with its shared-prefix
//! identity and an arrival time, plus arrival-process generators.

use llmqo_serve::SimRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request as the cluster dispatcher sees it.
#[derive(Debug, Clone)]
pub struct ClusterRequest {
    /// The underlying engine request.
    pub request: SimRequest,
    /// Shared-prefix identity (typically from
    /// [`ReorderPlan::prefix_keys`](llmqo_core::ReorderPlan::prefix_keys)):
    /// requests with equal keys share a prompt prefix, and prefix-aware
    /// routers keep them on one replica.
    pub prefix_key: u64,
    /// Arrival time on the cluster clock, seconds. `0.0` means present at
    /// job start (batch analytics).
    pub arrival_s: f64,
    /// Owning tenant, for per-tenant admission quotas
    /// ([`AdmissionPolicy::tenant_quota`](crate::AdmissionPolicy)). Tenant 0
    /// is the default single-tenant world.
    pub tenant: u32,
    /// Scheduling priority under overload: **higher values are more
    /// important** and are shed last. Priority 0 (the default) is
    /// best-effort.
    pub priority: u8,
    /// Model tier serving this request in a cascade deployment: tier 0 is
    /// the cheap model every row visits first, tier 1 the expensive model
    /// low-confidence rows escalate to. Tiers are separate model deployments
    /// with disjoint KV caches, so dispatch keeps them on disjoint fleets —
    /// see [`split_by_tier`]. Single-model clusters leave this at 0.
    pub tier: u8,
}

impl ClusterRequest {
    /// Tags `request` with `prefix_key`, arriving at time zero as tenant 0,
    /// priority 0, on tier 0.
    pub fn new(request: SimRequest, prefix_key: u64) -> Self {
        ClusterRequest {
            request,
            prefix_key,
            arrival_s: 0.0,
            tenant: 0,
            priority: 0,
            tier: 0,
        }
    }

    /// Sets the arrival time.
    #[must_use]
    pub fn at(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s;
        self
    }

    /// Sets the owning tenant.
    #[must_use]
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the shedding priority (higher = shed last).
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the serving model tier (0 = cheap, 1 = escalation).
    #[must_use]
    pub fn tier(mut self, tier: u8) -> Self {
        self.tier = tier;
        self
    }
}

/// Partitions a mixed-tier request stream into per-tier streams, preserving
/// order within each tier. Cascade deployments serve each tier from its own
/// model fleet — the tiers are different models with incompatible KV caches,
/// so a shared dispatcher would both misroute (prefix keys collide across
/// tiers) and mis-price. Run each returned stream through its own
/// [`ClusterSim`](crate::ClusterSim).
///
/// Returns `(cheap, escalated)`: tier 0 and everything above it.
pub fn split_by_tier(requests: Vec<ClusterRequest>) -> (Vec<ClusterRequest>, Vec<ClusterRequest>) {
    requests.into_iter().partition(|r| r.tier == 0)
}

/// Pairs a request stream with its prefix keys (schedule order must match —
/// this is the glue between a solver's [`prefix_keys`] and the requests
/// `llmqo_relational::plan_requests` built from the same plan; that crate
/// sits above this one, so the item cannot be intra-doc linked here).
///
/// [`prefix_keys`]: llmqo_core::ReorderPlan::prefix_keys
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn tag_requests(requests: Vec<SimRequest>, prefix_keys: &[u64]) -> Vec<ClusterRequest> {
    assert_eq!(
        requests.len(),
        prefix_keys.len(),
        "one prefix key per request"
    );
    requests
        .into_iter()
        .zip(prefix_keys)
        .map(|(request, &key)| ClusterRequest::new(request, key))
        .collect()
}

/// How requests arrive at the cluster's admission queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// The whole job is present at time zero (the paper's batch-analytics
    /// setting).
    Batch,
    /// Evenly spaced arrivals at `rate_rps` requests per second.
    Uniform {
        /// Arrival rate, requests per second.
        rate_rps: f64,
    },
    /// Poisson arrivals (exponential inter-arrival gaps) at `rate_rps`,
    /// deterministic for a fixed `seed`.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
        /// PRNG seed; equal seeds give identical arrival sequences.
        seed: u64,
    },
}

impl ArrivalProcess {
    /// Stamps arrival times onto `requests` in order (non-decreasing).
    ///
    /// # Panics
    ///
    /// Panics if a rate is not strictly positive and finite.
    pub fn assign(&self, requests: &mut [ClusterRequest]) {
        match *self {
            ArrivalProcess::Batch => {
                for r in requests.iter_mut() {
                    r.arrival_s = 0.0;
                }
            }
            ArrivalProcess::Uniform { rate_rps } => {
                assert!(
                    rate_rps > 0.0 && rate_rps.is_finite(),
                    "arrival rate must be positive"
                );
                for (i, r) in requests.iter_mut().enumerate() {
                    r.arrival_s = i as f64 / rate_rps;
                }
            }
            ArrivalProcess::Poisson { rate_rps, seed } => {
                assert!(
                    rate_rps > 0.0 && rate_rps.is_finite(),
                    "arrival rate must be positive"
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                for r in requests.iter_mut() {
                    let u: f64 = rng.random();
                    // Inverse-CDF exponential gap; (1 - u) avoids ln(0).
                    t += -(1.0 - u).ln() / rate_rps;
                    r.arrival_s = t;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(n: usize) -> Vec<ClusterRequest> {
        (0..n)
            .map(|i| ClusterRequest::new(SimRequest::from_tokens(i, vec![1, 2, 3], 1), i as u64))
            .collect()
    }

    #[test]
    fn batch_arrivals_are_all_zero() {
        let mut rs = reqs(5);
        ArrivalProcess::Batch.assign(&mut rs);
        assert!(rs.iter().all(|r| r.arrival_s == 0.0));
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let mut rs = reqs(4);
        ArrivalProcess::Uniform { rate_rps: 2.0 }.assign(&mut rs);
        let times: Vec<f64> = rs.iter().map(|r| r.arrival_s).collect();
        assert_eq!(times, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn poisson_arrivals_are_monotone_deterministic_and_near_rate() {
        let mut a = reqs(2000);
        let mut b = reqs(2000);
        let p = ArrivalProcess::Poisson {
            rate_rps: 10.0,
            seed: 7,
        };
        p.assign(&mut a);
        p.assign(&mut b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert_eq!(
            a.iter().map(|r| r.arrival_s).collect::<Vec<_>>(),
            b.iter().map(|r| r.arrival_s).collect::<Vec<_>>()
        );
        let span = a.last().unwrap().arrival_s;
        let rate = 2000.0 / span;
        assert!((rate - 10.0).abs() < 1.0, "empirical rate {rate}");
        let mut c = reqs(10);
        ArrivalProcess::Poisson {
            rate_rps: 10.0,
            seed: 8,
        }
        .assign(&mut c);
        assert_ne!(a[9].arrival_s, c[9].arrival_s);
    }

    #[test]
    fn tagging_zips_keys() {
        let tagged = tag_requests(
            (0..3)
                .map(|i| SimRequest::from_tokens(i, vec![1], 1))
                .collect(),
            &[9, 9, 4],
        );
        assert_eq!(tagged[0].prefix_key, 9);
        assert_eq!(tagged[2].prefix_key, 4);
        assert_eq!(tagged[1].request.id, 1);
    }

    #[test]
    #[should_panic(expected = "one prefix key per request")]
    fn tagging_rejects_length_mismatch() {
        let _ = tag_requests(vec![SimRequest::from_tokens(0, vec![1], 1)], &[1, 2]);
    }

    #[test]
    fn tier_split_partitions_preserving_order() {
        let mixed: Vec<ClusterRequest> = (0..6)
            .map(|i| {
                ClusterRequest::new(SimRequest::from_tokens(i, vec![1], 1), i as u64)
                    .tier(u8::from(i % 3 == 0))
            })
            .collect();
        let (cheap, escalated) = split_by_tier(mixed);
        assert_eq!(
            cheap.iter().map(|r| r.request.id).collect::<Vec<_>>(),
            vec![1, 2, 4, 5]
        );
        assert_eq!(
            escalated.iter().map(|r| r.request.id).collect::<Vec<_>>(),
            vec![0, 3]
        );
        assert!(cheap.iter().all(|r| r.tier == 0));
        assert!(escalated.iter().all(|r| r.tier == 1));
    }
}
