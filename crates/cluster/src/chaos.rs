//! The chaos-mode dispatcher: [`ClusterSim::run_with_faults`].
//!
//! Same discrete-event loop as [`ClusterSim::run`] — admission queue →
//! router → N replica sessions on one shared timeline — extended with four
//! more timed event sources (scheduled faults, replica rejoins, retry
//! due-times, hedge timers) and replica lifecycle state. The fault-free
//! loop in `sim.rs` stays untouched as the differential oracle: running
//! this loop with an empty [`FaultPlan`] and a disabled [`RetryPolicy`]
//! reproduces it byte for byte (proven in `tests/chaos_differential.rs`),
//! and a non-empty plan replays byte-for-byte from its seed.
//!
//! Fault semantics, in timeline terms:
//!
//! * **Timed events** (arrivals, crashes, drains, rejoins, retries, hedge
//!   timers) fire once every *busy* replica's clock has reached their
//!   instant — the same delivery rule arrivals always had — with ties
//!   processed in a fixed priority order (rejoins, faults, arrivals,
//!   retries, hedges). Plan events scheduled after all work has finished
//!   still fire (they can extend the makespan via a late rejoin).
//! * **Crash** fails every attempt queued or running on the replica
//!   (each re-enters the retry machinery at the crash instant), stashes
//!   the incarnation's metrics, and replaces the session with a cold one
//!   that rejoins — prefix cache empty — at the restart instant, if any.
//! * **Drain** marks the replica unroutable, lets it finish its work,
//!   then swaps in a cold session that rejoins at the rejoin instant —
//!   the graceful half of elastic resize.
//! * **Slowdown** windows multiply the replica's roofline step time while
//!   active. Macro-steps are bounded by the next window boundary so
//!   macro-stepped and single-stepped chaos runs stay byte-identical.
//! * **Transient errors** are rolled per serving attempt (deterministic
//!   in the plan seed) when its completion is harvested; a failed roll
//!   routes the attempt through the retry machinery.
//!
//! Retry/hedge/failover flow: an attempt failure schedules a retry after
//! jittered exponential backoff while budget and deadline allow, else the
//! request fails permanently. Re-routing goes through the ordinary router
//! with crashed/drained replicas marked not-[`alive`]; for
//! [`PrefixAffinity`](crate::PrefixAffinity) that lands a group's retries
//! on its *next*-ranked replica (prefix-affinity-aware failover). A hedge
//! duplicates a still-running request onto a different replica after a
//! delay; the first completion wins, the loser is counted as wasted work.
//!
//! Queue-wait attribution pairs each incarnation's enqueue-order arrivals
//! with its admission-sorted completions — exact on fault-free runs (the
//! legacy rule), a deterministic approximation when attempts die mid-queue.
//!
//! [`alive`]: crate::ReplicaSnapshot::alive

use crate::fault::{FaultEvent, FaultPlan, FaultStats, RetryPolicy};
use crate::overload::{
    decide_admission, obs_scale, obs_shed, OverloadPolicy, ScalePolicy, ScaleStats, ShedDecision,
    ShedStats,
};
use crate::report::{ClusterReport, ReplicaOccupancy, ReplicaReport};
use crate::request::ClusterRequest;
use crate::router::{ReplicaSnapshot, Router};
use crate::sim::{ClusterError, ClusterSim};
use llmqo_serve::{percentile, Completion, EngineReport, EngineSession};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// How an admission-queue entry came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptKind {
    /// The request's original arrival.
    First,
    /// A scheduled retry of a failed attempt.
    Retry,
    /// A hedge duplicate of a still-running request.
    Hedge,
}

/// One entry in the chaos admission queue: an attempt waiting for placement.
#[derive(Debug, Clone, Copy)]
struct AdmEntry {
    /// Index into `requests`.
    j: usize,
    kind: AttemptKind,
    /// When the attempt entered admission (arrival, retry due-time, or
    /// hedge fire-time); placement can happen no earlier.
    arrival_s: f64,
    /// Replica this attempt must avoid (a hedge excludes the replica its
    /// primary runs on).
    exclude: Option<usize>,
}

/// Failure-handling state of one logical request.
#[derive(Debug, Clone, Copy, Default)]
struct ReqState {
    /// Attempts placed on replicas so far.
    attempts: u32,
    /// Attempts currently queued or running on some replica.
    outstanding: u32,
    done: bool,
    failed: bool,
    /// The hedge timer has been armed (at first placement; one per request).
    hedge_armed: bool,
    /// Replica of the most recent placement, for failover counting and
    /// hedge exclusion.
    last_replica: Option<usize>,
}

/// Mutable per-replica state during a chaos run. Unlike the fault-free
/// loop's replica, this one can live through several session *incarnations*
/// (crash/restart, drain/rejoin); finished incarnations are stashed and
/// merged at assembly.
struct ChaosReplica {
    session: EngineSession,
    /// Lifetime placements across all incarnations (what routers see).
    assigned: usize,
    /// Arrival times of the *current incarnation's* placements, enqueue
    /// order.
    arrivals: Vec<f64>,
    occupancy: ReplicaOccupancy,
    /// Completion-harvest watermark into `session.completions()`.
    harvested: usize,
    /// Outstanding attempts by engine request id (BTreeMap for
    /// deterministic iteration when a crash fails them all).
    pending: BTreeMap<usize, VecDeque<(usize, u64, AttemptKind)>>,
    /// Accepts new placements.
    up: bool,
    /// Finishing existing work before leaving (drain in progress).
    draining: bool,
    /// Earliest rejoin instant once the drain completes.
    drain_rejoin: f64,
    /// Start of the current down window, if down.
    down_since: Option<f64>,
    /// Provisioned by the autoscaler and still warming up (joins at its
    /// scheduled up-event without touching the fault ledger).
    scale_join: bool,
    /// Drained out of the fleet by the autoscaler for good; never rejoins
    /// and its final down window is not unavailability.
    departed: bool,
    /// Idle seconds accrued by the catch-up `advance_to` at rejoin —
    /// subtracted so reported idle time counts only in-service idleness.
    idle_correction: f64,
    /// Finished incarnations: `(report, completions)`.
    stash: Vec<(EngineReport, Vec<Completion>)>,
    stash_idle: f64,
    lane: u32,
}

/// Transient state of the retry/hedge machinery shared across helpers.
struct ChaosState<'a> {
    plan: &'a FaultPlan,
    retry: &'a RetryPolicy,
    requests: &'a [ClusterRequest],
    states: Vec<ReqState>,
    stats: FaultStats,
    /// Scheduled retries `(due_s, request index)`.
    retryq: Vec<(f64, usize)>,
    /// Armed hedge timers `(fire_s, request index)`.
    hedge_timers: Vec<(f64, usize)>,
}

impl ChaosState<'_> {
    /// Handles the failure of one attempt of request `j` at instant `t`:
    /// schedules a retry while budget and deadline allow, else fails the
    /// request permanently. No-op while other attempts are still in flight.
    fn attempt_failed(&mut self, j: usize, t: f64) {
        let s = &mut self.states[j];
        if s.done || s.failed || s.outstanding > 0 {
            return;
        }
        let first_arrival = self.requests[j].arrival_s;
        if s.attempts >= self.retry.max_attempts {
            s.failed = true;
            self.stats.failed += 1;
            obs_count("cluster.requests_failed");
            return;
        }
        let id = self.requests[j].request.id as u64;
        let due = t + self.retry.backoff_s(self.plan.seed, id, s.attempts);
        if self
            .retry
            .deadline_s
            .is_some_and(|d| due - first_arrival > d)
        {
            s.failed = true;
            self.stats.failed += 1;
            self.stats.deadline_misses += 1;
            obs_count("cluster.requests_failed");
            return;
        }
        self.retryq.push((due, j));
        self.stats.retries += 1;
        obs_count("cluster.retry.scheduled");
    }

    /// Accounts one harvested completion of request `j`. `submission`
    /// feeds the transient-error roll.
    fn completion_harvested(
        &mut self,
        j: usize,
        submission: u64,
        kind: AttemptKind,
        c: &Completion,
    ) {
        self.states[j].outstanding = self.states[j].outstanding.saturating_sub(1);
        if self.plan.transient_fails(c.id as u64, submission) {
            self.stats.transient_errors += 1;
            obs_count("cluster.fault.transient_errors");
            self.attempt_failed(j, c.finished_s);
            return;
        }
        let s = &mut self.states[j];
        if s.done || s.failed {
            // A duplicate finishing after the race was decided.
            self.stats.wasted_completions += 1;
            return;
        }
        s.done = true;
        self.stats.succeeded += 1;
        if kind == AttemptKind::Hedge {
            self.stats.hedges_won += 1;
            obs_count("cluster.hedge.won");
        }
        if let Some(d) = self.retry.deadline_s {
            if c.finished_s - self.requests[j].arrival_s > d {
                self.stats.late_successes += 1;
                self.stats.deadline_misses += 1;
            }
        }
    }
}

/// Harvests every completion the replica produced since the last call and
/// routes each through success/transient-failure accounting.
fn harvest(rep: &mut ChaosReplica, cs: &mut ChaosState<'_>) {
    while rep.harvested < rep.session.completions().len() {
        let c = rep.session.completions()[rep.harvested];
        rep.harvested += 1;
        let Some(queue) = rep.pending.get_mut(&c.id) else {
            continue;
        };
        let Some((j, submission, kind)) = queue.pop_front() else {
            continue;
        };
        if queue.is_empty() {
            rep.pending.remove(&c.id);
        }
        cs.completion_harvested(j, submission, kind, &c);
    }
}

/// Swaps the replica's session for a cold one, stashing the finished
/// incarnation's report, completions, idle time, and queue waits.
fn stash_incarnation(
    rep: &mut ChaosReplica,
    engine: &llmqo_serve::SimEngine,
    queue_waits: &mut Vec<f64>,
) -> Result<(), ClusterError> {
    let mut fresh = engine.session()?;
    fresh.set_trace_lane(rep.lane);
    let old = std::mem::replace(&mut rep.session, fresh);
    let idle = old.idle_time_s();
    let outcome = old.finish();
    let mut admissions: Vec<f64> = outcome.completions.iter().map(|c| c.admitted_s).collect();
    admissions.sort_by(f64::total_cmp);
    for (&arrival, &admitted) in rep.arrivals.iter().zip(&admissions) {
        queue_waits.push((admitted - arrival).max(0.0));
    }
    rep.stash_idle += idle - rep.idle_correction;
    rep.idle_correction = 0.0;
    rep.stash.push((outcome.report, outcome.completions));
    rep.arrivals.clear();
    rep.harvested = 0;
    Ok(())
}

/// Crash `rep` at `t_c`: every pending attempt fails and the incarnation is
/// stashed. The caller schedules the cold-restart rejoin, if any.
fn crash_replica(
    rep: &mut ChaosReplica,
    index: usize,
    t_c: f64,
    engine: &llmqo_serve::SimEngine,
    cs: &mut ChaosState<'_>,
    queue_waits: &mut Vec<f64>,
) -> Result<(), ClusterError> {
    if rep.down_since.is_some() {
        return Ok(()); // Already down; only the caller's restart matters.
    }
    let pending = std::mem::take(&mut rep.pending);
    stash_incarnation(rep, engine, queue_waits)?;
    rep.up = false;
    rep.draining = false;
    rep.down_since = Some(t_c);
    cs.stats.crashes += 1;
    obs_count("cluster.fault.crashes");
    if llmqo_obs::enabled() {
        llmqo_obs::tracer().instant(
            0,
            index as u64,
            "fault.crash",
            "fault",
            t_c,
            &[("replica", index.into())],
        );
    }
    for (_, queue) in pending {
        for (j, _submission, _kind) in queue {
            cs.states[j].outstanding = cs.states[j].outstanding.saturating_sub(1);
            cs.stats.crash_failures += 1;
            cs.attempt_failed(j, t_c);
        }
    }
    Ok(())
}

/// Completes a drain: the replica went idle, so stash the incarnation and
/// schedule the cold rejoin. A scale-down drain (`drain_rejoin` infinite)
/// leaves for good — no rejoin is scheduled.
fn complete_drain(
    rep: &mut ChaosReplica,
    index: usize,
    t: f64,
    engine: &llmqo_serve::SimEngine,
    up_events: &mut Vec<(f64, usize)>,
    queue_waits: &mut Vec<f64>,
) -> Result<(), ClusterError> {
    stash_incarnation(rep, engine, queue_waits)?;
    rep.draining = false;
    rep.down_since = Some(t);
    if rep.drain_rejoin.is_finite() {
        up_events.push((rep.drain_rejoin.max(t), index));
    }
    Ok(())
}

/// Removes and returns every `(time, key)` entry due at or before `t`,
/// sorted by `(time, key)` for deterministic processing.
fn drain_due(queue: &mut Vec<(f64, usize)>, t: f64) -> Vec<(f64, usize)> {
    let mut due: Vec<(f64, usize)> = Vec::new();
    queue.retain(|&(when, key)| {
        if when <= t {
            due.push((when, key));
            false
        } else {
            true
        }
    });
    due.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    due
}

/// Cold path: one named counter increment, only when observability is on.
fn obs_count(name: &str) {
    if llmqo_obs::enabled() {
        llmqo_obs::registry().counter(name).inc();
    }
}

/// Cold path: the chaos twin of the fault-free dispatcher's placement
/// trace — same gauges, counter, and `route` instant.
fn trace_chaos_placement(
    rep: &ChaosReplica,
    choice: usize,
    request: &ClusterRequest,
    kv_blocks_in_use: usize,
    probed_cached_tokens: usize,
) {
    let r = llmqo_obs::registry();
    r.gauge(&format!("cluster.replica{choice}.kv_blocks_in_use"))
        .set(kv_blocks_in_use as f64);
    r.gauge(&format!("cluster.replica{choice}.queued"))
        .set(rep.session.queued() as f64);
    r.counter("cluster.requests_routed").inc();
    llmqo_obs::tracer().instant(
        0,
        request.request.id as u64,
        "route",
        "router",
        rep.session.clock(),
        &[
            ("replica", choice.into()),
            ("prefix_key", request.prefix_key.into()),
            ("kv_blocks_in_use", kv_blocks_in_use.into()),
            ("probed_cached_tokens", probed_cached_tokens.into()),
        ],
    );
}

/// Merges a replica's incarnations into one `(report, completions)` pair.
/// Counters and times sum, peaks max, the makespan is the latest incarnation
/// clock, and latency percentiles are recomputed over all completions. With
/// a single incarnation (the fault-free case) the inputs pass through
/// untouched, preserving byte-identity with the plain dispatcher.
fn merge_incarnations(
    mut incarnations: Vec<(EngineReport, Vec<Completion>)>,
) -> (EngineReport, Vec<Completion>) {
    if incarnations.len() == 1 {
        match incarnations.pop() {
            Some(only) => return only,
            None => return (EngineReport::default(), Vec::new()),
        }
    }
    let mut report = EngineReport::default();
    let mut completions: Vec<Completion> = Vec::new();
    for (r, c) in incarnations {
        report.job_completion_time_s = report.job_completion_time_s.max(r.job_completion_time_s);
        report.prefill_time_s += r.prefill_time_s;
        report.decode_time_s += r.decode_time_s;
        report.overhead_time_s += r.overhead_time_s;
        report.total_prompt_tokens += r.total_prompt_tokens;
        report.cached_prompt_tokens += r.cached_prompt_tokens;
        report.computed_prompt_tokens += r.computed_prompt_tokens;
        report.total_output_tokens += r.total_output_tokens;
        report.steps += r.steps;
        report.peak_running = report.peak_running.max(r.peak_running);
        report.peak_blocks = report.peak_blocks.max(r.peak_blocks);
        report.evictions += r.evictions;
        report.completed += r.completed;
        completions.extend(c);
    }
    let mut ttfts: Vec<f64> = completions.iter().map(|c| c.ttft_s).collect();
    let mut latencies: Vec<f64> = completions
        .iter()
        .map(|c| c.finished_s - c.admitted_s)
        .collect();
    ttfts.sort_by(f64::total_cmp);
    latencies.sort_by(f64::total_cmp);
    report.ttft_p50_s = percentile(&ttfts, 0.50);
    report.ttft_p99_s = percentile(&ttfts, 0.99);
    report.latency_p50_s = percentile(&latencies, 0.50);
    report.latency_p99_s = percentile(&latencies, 0.99);
    (report, completions)
}

impl ClusterSim {
    /// [`run`](ClusterSim::run) under a deterministic [`FaultPlan`] with a
    /// [`RetryPolicy`] governing recovery; their docs carry the full fault
    /// semantics.
    ///
    /// With an empty plan and a disabled policy the result is byte-identical
    /// to [`run`](ClusterSim::run); any other configuration reproduces byte
    /// for byte from the same inputs and fills
    /// [`ClusterReport::faults`](crate::ClusterReport::faults), whose
    /// invariant `succeeded + failed == offered` guarantees no request is
    /// ever silently lost.
    ///
    /// Requests must carry **unique** engine ids — completions are
    /// attributed back to logical requests by id.
    ///
    /// # Errors
    ///
    /// Everything [`run`](ClusterSim::run) returns, plus
    /// [`ClusterError::InvalidFaultPlan`] for malformed plans/policies and
    /// [`ClusterError::DuplicateRequestId`] for non-unique request ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use llmqo_cluster::{
    ///     ClusterConfig, ClusterRequest, ClusterSim, FaultPlan, PrefixAffinity, RetryPolicy,
    /// };
    /// use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine,
    ///                   SimRequest};
    ///
    /// let engine = SimEngine::new(
    ///     Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
    ///     EngineConfig::default(),
    /// );
    /// let sim = ClusterSim::new(engine, ClusterConfig { replicas: 2, queue_cap: 16 });
    /// let requests: Vec<ClusterRequest> = (0..16usize)
    ///     .map(|i| {
    ///         let g = (i / 8) as u32;
    ///         let mut toks: Vec<u32> = (0..32).map(|j| g * 1000 + j).collect();
    ///         toks.extend((0..8).map(|j| 10_000 + i as u32 * 64 + j));
    ///         ClusterRequest::new(SimRequest::from_tokens(i, toks, 2), u64::from(g))
    ///     })
    ///     .collect();
    /// let plan = FaultPlan::seeded(7).crash_restart(0, 0.05, 0.2);
    /// let report = sim
    ///     .run_with_faults(&mut PrefixAffinity::default(), &requests, &plan, &RetryPolicy::retries(4))
    ///     .unwrap();
    /// let fs = &report.faults;
    /// assert_eq!(fs.offered, 16);
    /// assert_eq!(fs.succeeded + fs.failed, fs.offered);
    /// ```
    pub fn run_with_faults(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        plan: &FaultPlan,
        retry: &RetryPolicy,
    ) -> Result<ClusterReport, ClusterError> {
        self.run_with_faults_impl(
            router,
            requests,
            plan,
            retry,
            &OverloadPolicy::default(),
            true,
        )
    }

    /// [`run_with_faults`](ClusterSim::run_with_faults) under an
    /// [`OverloadPolicy`]: KV-aware admission gates with priority load
    /// shedding, plus an optional elastic [`ScalePolicy`] that drains cold
    /// replicas and warms new ones mid-job. The report gains the
    /// [`shed`](crate::ClusterReport::shed) and
    /// [`scaling`](crate::ClusterReport::scaling) ledgers; with any faults
    /// or retries engaged the failure invariant extends to
    /// `succeeded + failed + shed == offered`.
    ///
    /// An inert (default) overload policy is byte-identical to
    /// [`run_with_faults`](ClusterSim::run_with_faults); an inert policy
    /// *and* inert plan/retry reproduce [`run`](ClusterSim::run) itself.
    ///
    /// # Errors
    ///
    /// As for [`run_with_faults`](ClusterSim::run_with_faults), plus
    /// [`ClusterError::InvalidOverloadPolicy`] for malformed policies.
    pub fn run_overloaded(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        plan: &FaultPlan,
        retry: &RetryPolicy,
        overload: &OverloadPolicy,
    ) -> Result<ClusterReport, ClusterError> {
        self.run_with_faults_impl(router, requests, plan, retry, overload, true)
    }

    /// [`run_overloaded`](ClusterSim::run_overloaded) driving every replica
    /// one scheduling step at a time — the fine-grained oracle for the
    /// overload differential suite.
    ///
    /// # Errors
    ///
    /// As for [`run_overloaded`](ClusterSim::run_overloaded).
    pub fn run_overloaded_single_stepped(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        plan: &FaultPlan,
        retry: &RetryPolicy,
        overload: &OverloadPolicy,
    ) -> Result<ClusterReport, ClusterError> {
        self.run_with_faults_impl(router, requests, plan, retry, overload, false)
    }

    /// [`run_with_faults`](ClusterSim::run_with_faults) driving every
    /// replica one scheduling step at a time — the fine-grained oracle the
    /// differential suite compares macro-stepped chaos runs against.
    ///
    /// The two modes agree byte for byte; the macro path bounds each window
    /// by the next known timed event (arrival, fault, rejoin, retry due,
    /// hedge timer, slowdown boundary) and falls back to fine-grained
    /// stepping on its own when retries can be born mid-window (transient
    /// errors with a retry budget), so the agreement is unconditional.
    ///
    /// # Errors
    ///
    /// As for [`run_with_faults`](ClusterSim::run_with_faults).
    pub fn run_with_faults_single_stepped(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        plan: &FaultPlan,
        retry: &RetryPolicy,
    ) -> Result<ClusterReport, ClusterError> {
        self.run_with_faults_impl(
            router,
            requests,
            plan,
            retry,
            &OverloadPolicy::default(),
            false,
        )
    }

    fn run_with_faults_impl(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        plan: &FaultPlan,
        retry: &RetryPolicy,
        overload: &OverloadPolicy,
        macro_steps: bool,
    ) -> Result<ClusterReport, ClusterError> {
        let config = *self.config();
        if config.replicas == 0 {
            return Err(ClusterError::InvalidConfig {
                reason: "need at least one replica",
            });
        }
        if config.queue_cap == 0 {
            return Err(ClusterError::InvalidConfig {
                reason: "queue capacity must be at least one",
            });
        }
        for (index, r) in requests.iter().enumerate() {
            if !r.arrival_s.is_finite() || r.arrival_s < 0.0 {
                return Err(ClusterError::InvalidArrival { index });
            }
        }
        plan.validate(config.replicas)?;
        retry.validate()?;
        overload.validate(config.replicas)?;
        let gated = !overload.admission.is_inert();
        let mut shed_stats = ShedStats::default();
        if gated {
            shed_stats.offered = requests.len();
        }
        // Autoscaler control-loop state: next check instant, last action
        // instant (for cooldown hysteresis), and the event ledger.
        let mut scale_state: Option<(ScalePolicy, f64, f64, ScaleStats)> =
            overload.scale.map(|p| {
                let stats = ScaleStats {
                    peak_replicas: config.replicas,
                    low_replicas: config.replicas,
                    ..ScaleStats::default()
                };
                (p, p.check_interval_s, f64::NEG_INFINITY, stats)
            });
        let mut seen_ids: HashSet<usize> = HashSet::with_capacity(requests.len());
        for r in requests {
            if !seen_ids.insert(r.request.id) {
                return Err(ClusterError::DuplicateRequestId { id: r.request.id });
            }
        }
        let engaged = !plan.is_empty() || !retry.is_disabled();
        // Scheduled faults, arrivals, rejoins, and hedge timers are known
        // (or fixed at placement) before any step runs, so they can bound a
        // macro window. A *transient-error retry* cannot: its due instant is
        // discovered only when the failed completion is harvested, and under
        // macro stepping that harvest happens after the window has already
        // run past the due — the single-stepped oracle would have re-admitted
        // the attempt earlier. Fine-grained stepping is the only sound mode
        // whenever that feedback is possible.
        let macro_steps = macro_steps && !(plan.transient_error_ppm > 0 && retry.max_attempts > 1);

        let obs_on = llmqo_obs::enabled();
        let mut replicas: Vec<ChaosReplica> = (0..config.replicas)
            .map(|i| {
                let mut session = self.engine().session()?;
                let lane = u32::try_from(i + 1).unwrap_or(u32::MAX);
                session.set_trace_lane(lane);
                if obs_on {
                    llmqo_obs::tracer().name_lane(lane, &format!("replica {i}"));
                }
                Ok(ChaosReplica {
                    session,
                    assigned: 0,
                    arrivals: Vec::new(),
                    occupancy: ReplicaOccupancy::default(),
                    harvested: 0,
                    pending: BTreeMap::new(),
                    up: true,
                    draining: false,
                    drain_rejoin: 0.0,
                    down_since: None,
                    scale_join: false,
                    departed: false,
                    idle_correction: 0.0,
                    stash: Vec::new(),
                    stash_idle: 0.0,
                    lane,
                })
            })
            .collect::<Result<_, llmqo_serve::EngineError>>()?;
        let mut prompt_buf: Vec<llmqo_tokenizer::TokenId> = Vec::new();

        // Arrival order: by time, original order on ties (stable sort).
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| requests[a].arrival_s.total_cmp(&requests[b].arrival_s));
        let mut next_arrival = 0usize;

        // Crash/drain schedule, sorted by (instant, plan position).
        // Slowdowns are time *windows*, queried per step, not events.
        let mut fault_events: Vec<(f64, usize)> = plan
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| !matches!(e, FaultEvent::Slowdown { .. }))
            .map(|(i, e)| (e.at_s(), i))
            .collect();
        fault_events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut next_fault = 0usize;
        // Scheduled cold rejoins `(instant, replica)`.
        let mut up_events: Vec<(f64, usize)> = Vec::new();

        let mut cs = ChaosState {
            plan,
            retry,
            requests,
            states: vec![ReqState::default(); requests.len()],
            stats: FaultStats::default(),
            retryq: Vec::new(),
            hedge_timers: Vec::new(),
        };
        cs.stats.offered = requests.len();
        let mut admission: VecDeque<AdmEntry> = VecDeque::new();
        let mut queue_waits: Vec<f64> = Vec::new();
        let mut now = 0.0f64;
        // Global placement counter feeding per-attempt transient rolls.
        let mut submissions = 0u64;
        // Macro events taken while admission was backpressured (retry-
        // insensitive routers only); scheduling bookkeeping, not behavior.
        let mut backpressure_macro_steps = 0u64;

        loop {
            // --- Placement: drain admission while replicas can take work.
            while let Some(&entry) = admission.front() {
                let j = entry.j;
                if cs.states[j].done || cs.states[j].failed {
                    admission.pop_front(); // Stale retry/hedge entry.
                    continue;
                }
                let snapshots: Vec<ReplicaSnapshot> = replicas
                    .iter()
                    .enumerate()
                    .map(|(index, r)| ReplicaSnapshot {
                        index,
                        queued: r.session.queued(),
                        running: r.session.running(),
                        kv_blocks_in_use: r.session.kv_blocks_in_use(),
                        capacity_blocks: r.session.capacity_blocks(),
                        clock_s: r.session.clock(),
                        assigned: r.assigned,
                        alive: r.up && entry.exclude != Some(index),
                    })
                    .collect();
                let choice = router.route(requests[j].prefix_key, &snapshots);
                if choice >= replicas.len() {
                    return Err(ClusterError::RouterOutOfRange {
                        chose: choice,
                        replicas: replicas.len(),
                    });
                }
                if entry.exclude == Some(choice) {
                    // A hedge with nowhere else to go is abandoned; its
                    // primary is still in flight.
                    admission.pop_front();
                    continue;
                }
                if !replicas[choice].up {
                    break; // Nowhere routable: wait for a rejoin (or fail).
                }
                if replicas[choice].session.queued() >= config.queue_cap {
                    break; // Backpressure: head-of-line waits for an event.
                }
                admission.pop_front();
                let replica = &mut replicas[choice];
                replica.session.advance_to(entry.arrival_s.max(now));
                let kv = replica.session.kv_blocks_in_use();
                prompt_buf.clear();
                for frag in &requests[j].request.prompt {
                    prompt_buf.extend_from_slice(frag);
                }
                let probed = replica.session.probe_cached_tokens(&prompt_buf);
                let occ = &mut replica.occupancy;
                occ.samples += 1;
                occ.kv_blocks_sum += kv as u64;
                occ.kv_blocks_peak = occ.kv_blocks_peak.max(kv);
                occ.capacity_blocks = replica.session.capacity_blocks();
                occ.probed_cached_tokens += probed as u64;
                if llmqo_obs::enabled() {
                    trace_chaos_placement(replica, choice, &requests[j], kv, probed);
                }
                replica.session.enqueue_ref(&requests[j].request);
                replica.assigned += 1;
                replica.arrivals.push(entry.arrival_s);
                let submission = submissions;
                submissions += 1;
                replica
                    .pending
                    .entry(requests[j].request.id)
                    .or_default()
                    .push_back((j, submission, entry.kind));
                let s = &mut cs.states[j];
                s.attempts += 1;
                s.outstanding += 1;
                if entry.kind != AttemptKind::First && s.last_replica.is_some_and(|p| p != choice) {
                    cs.stats.failovers += 1;
                    obs_count("cluster.failovers");
                }
                s.last_replica = Some(choice);
                match entry.kind {
                    AttemptKind::Hedge => {
                        cs.stats.hedges_issued += 1;
                        obs_count("cluster.hedge.issued");
                    }
                    AttemptKind::First => {
                        if let Some(h) = retry.hedge_after_s {
                            if !s.hedge_armed {
                                s.hedge_armed = true;
                                cs.hedge_timers.push((entry.arrival_s.max(now) + h, j));
                            }
                        }
                    }
                    AttemptKind::Retry => {}
                }
            }

            // --- Next event on the shared timeline.
            let mut busy: Option<usize> = None;
            for (i, r) in replicas.iter().enumerate() {
                if !r.session.is_idle()
                    && busy.is_none_or(|b| r.session.clock() < replicas[b].session.clock())
                {
                    busy = Some(i);
                }
            }
            // Purge hedge timers whose request no longer qualifies, so an
            // armed-but-dead timer cannot keep the loop alive.
            cs.hedge_timers.retain(|&(_, j)| {
                let s = &cs.states[j];
                !s.done && !s.failed
            });
            let mut timed: Option<f64> = None;
            let mut consider = |t: f64| {
                if timed.is_none_or(|m| t < m) {
                    timed = Some(t);
                }
            };
            if next_arrival < order.len() {
                consider(requests[order[next_arrival]].arrival_s);
            }
            if next_fault < fault_events.len() {
                consider(fault_events[next_fault].0);
            }
            for &(t, _) in &up_events {
                consider(t);
            }
            for &(t, _) in &cs.retryq {
                consider(t);
            }
            for &(t, _) in &cs.hedge_timers {
                consider(t);
            }
            // The autoscaler's next check is a timed event too — but only
            // while the job still has pending work, so an idle tail cannot
            // keep the loop alive forever.
            let work_pending = next_arrival < order.len()
                || !admission.is_empty()
                || busy.is_some()
                || !cs.retryq.is_empty()
                || !cs.hedge_timers.is_empty();
            if let Some((_, next_check, _, _)) = &scale_state {
                if work_pending {
                    consider(*next_check);
                }
            }

            let deliver = match (busy, timed) {
                (_, None) => false,
                (None, Some(_)) => true,
                (Some(b), Some(t)) => t <= replicas[b].session.clock(),
            };

            if deliver {
                let Some(t) = timed else { break };
                // Fixed priority among ties at instant `t`: rejoins first
                // (capacity returns before new demand), then crash/drain,
                // then arrivals, retries, hedges.
                for (t_u, i) in drain_due(&mut up_events, t) {
                    let rep = &mut replicas[i];
                    if rep.scale_join {
                        // A scaled-up replica finishing its warmup: it was
                        // never *un*available, so only the scaling ledger
                        // (not the fault ledger) sees the event.
                        rep.scale_join = false;
                        rep.session.advance_to(t_u);
                        rep.idle_correction = rep.session.idle_time_s();
                        rep.up = true;
                        obs_scale("joined", i, replicas.iter().filter(|r| r.up).count(), t_u);
                        continue;
                    }
                    let rep = &mut replicas[i];
                    let Some(since) = rep.down_since.take() else {
                        continue; // Already up (duplicate rejoin).
                    };
                    rep.session.advance_to(t_u);
                    rep.idle_correction = rep.session.idle_time_s();
                    rep.up = true;
                    cs.stats.restarts += 1;
                    cs.stats.unavailability_windows += 1;
                    cs.stats.unavailable_s += (t_u - since).max(0.0);
                    obs_count("cluster.fault.restarts");
                    if llmqo_obs::enabled() {
                        llmqo_obs::tracer().instant(
                            0,
                            i as u64,
                            "fault.rejoin",
                            "fault",
                            t_u,
                            &[("replica", i.into())],
                        );
                    }
                }
                while next_fault < fault_events.len() && fault_events[next_fault].0 <= t {
                    let (t_f, idx) = fault_events[next_fault];
                    next_fault += 1;
                    match plan.events[idx] {
                        FaultEvent::Crash {
                            replica, restart_s, ..
                        } => {
                            if let Some(rs) = restart_s {
                                up_events.push((rs.max(t_f), replica));
                            }
                            crash_replica(
                                &mut replicas[replica],
                                replica,
                                t_f,
                                self.engine(),
                                &mut cs,
                                &mut queue_waits,
                            )?;
                        }
                        FaultEvent::Drain {
                            replica, rejoin_s, ..
                        } => {
                            let rep = &mut replicas[replica];
                            if rep.down_since.is_some() || rep.draining {
                                continue; // Already leaving or gone.
                            }
                            rep.up = false;
                            rep.draining = true;
                            rep.drain_rejoin = rejoin_s;
                            cs.stats.drains += 1;
                            obs_count("cluster.fault.drains");
                            if rep.session.is_idle() {
                                complete_drain(
                                    rep,
                                    replica,
                                    t_f,
                                    self.engine(),
                                    &mut up_events,
                                    &mut queue_waits,
                                )?;
                            }
                        }
                        FaultEvent::Slowdown { .. } => {}
                    }
                }
                while next_arrival < order.len() && requests[order[next_arrival]].arrival_s <= t {
                    let j = order[next_arrival];
                    next_arrival += 1;
                    let entry = AdmEntry {
                        j,
                        kind: AttemptKind::First,
                        arrival_s: requests[j].arrival_s,
                        exclude: None,
                    };
                    if !gated {
                        admission.push_back(entry);
                        continue;
                    }
                    // Admission gates. Only first attempts are sheddable:
                    // retries and hedges were already admitted once and
                    // their attempts are on the fault ledger.
                    let kv_util = if overload.admission.max_kv_utilization.is_some() {
                        let (in_use, capacity) =
                            replicas
                                .iter()
                                .filter(|r| r.up)
                                .fold((0usize, 0usize), |acc, r| {
                                    (
                                        acc.0 + r.session.kv_blocks_in_use(),
                                        acc.1 + r.session.capacity_blocks(),
                                    )
                                });
                        if capacity == 0 {
                            0.0
                        } else {
                            in_use as f64 / capacity as f64
                        }
                    } else {
                        0.0
                    };
                    let sheddable: Vec<(usize, u32, u8)> = admission
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.kind == AttemptKind::First)
                        .map(|(pos, e)| (pos, requests[e.j].tenant, requests[e.j].priority))
                        .collect();
                    // The depth gate counts only first attempts: retries and
                    // hedges are work the cluster already admitted (and owes
                    // the fault ledger an outcome for), so in-flight recovery
                    // traffic neither fills the admission budget nor blocks a
                    // high-priority arrival from finding a sheddable victim.
                    match decide_admission(
                        &overload.admission,
                        requests[j].tenant,
                        requests[j].priority,
                        sheddable.len(),
                        &sheddable,
                        kv_util,
                    ) {
                        ShedDecision::Admit => admission.push_back(entry),
                        ShedDecision::ShedArrival(reason) => {
                            shed_stats.record(reason, requests[j].priority);
                            obs_shed(&requests[j], reason, t);
                        }
                        ShedDecision::EvictPending(pos, reason) => {
                            if let Some(victim) = admission.remove(pos) {
                                shed_stats.record(reason, requests[victim.j].priority);
                                obs_shed(&requests[victim.j], reason, t);
                            }
                            admission.push_back(entry);
                        }
                    }
                }
                for (due, j) in drain_due(&mut cs.retryq, t) {
                    admission.push_back(AdmEntry {
                        j,
                        kind: AttemptKind::Retry,
                        arrival_s: due,
                        exclude: None,
                    });
                }
                let up_count = replicas.iter().filter(|r| r.up).count();
                for (_, j) in drain_due(&mut cs.hedge_timers, t) {
                    let s = &cs.states[j];
                    // Hedge only a request that is still in flight, has
                    // budget left, and has somewhere else to run.
                    if s.done
                        || s.failed
                        || s.outstanding == 0
                        || s.attempts >= retry.max_attempts
                        || up_count < 2
                    {
                        continue;
                    }
                    admission.push_back(AdmEntry {
                        j,
                        kind: AttemptKind::Hedge,
                        arrival_s: t,
                        exclude: s.last_replica,
                    });
                }
                // --- Autoscaler control loop, last in the tie order: it
                // reads the queue as arrivals/retries at `t` left it
                // (admission → shed → scale).
                if let Some((policy, next_check, last_action, sstats)) = &mut scale_state {
                    if *next_check <= t {
                        while *next_check <= t {
                            *next_check += policy.check_interval_s;
                        }
                        sstats.checks += 1;
                        let routable = replicas.iter().filter(|r| r.up).count();
                        // Routable plus scheduled joins: the fleet the
                        // max_replicas bound applies to.
                        let fleet = routable + up_events.len();
                        sstats.peak_replicas = sstats.peak_replicas.max(fleet);
                        sstats.low_replicas = sstats.low_replicas.min(routable);
                        let cooled = t - *last_action >= policy.cooldown_s;
                        let oldest_pending = admission
                            .iter()
                            .map(|e| e.arrival_s)
                            .fold(f64::INFINITY, f64::min);
                        if cooled
                            && t - oldest_pending >= policy.queue_wait_up_s
                            && fleet < policy.max_replicas
                        {
                            // Scale up: provision a cold replica that joins
                            // (empty prefix cache, rendezvous remap) after
                            // its jittered warmup.
                            let index = replicas.len();
                            let mut session = self.engine().session()?;
                            let lane = u32::try_from(index + 1).unwrap_or(u32::MAX);
                            session.set_trace_lane(lane);
                            if obs_on {
                                llmqo_obs::tracer().name_lane(lane, &format!("replica {index}"));
                            }
                            replicas.push(ChaosReplica {
                                session,
                                assigned: 0,
                                arrivals: Vec::new(),
                                occupancy: ReplicaOccupancy::default(),
                                harvested: 0,
                                pending: BTreeMap::new(),
                                up: false,
                                draining: false,
                                drain_rejoin: 0.0,
                                down_since: None,
                                scale_join: true,
                                departed: false,
                                idle_correction: 0.0,
                                stash: Vec::new(),
                                stash_idle: 0.0,
                                lane,
                            });
                            up_events.push((t + policy.warmup_for(sstats.scale_ups), index));
                            sstats.scale_ups += 1;
                            sstats.peak_replicas = sstats.peak_replicas.max(fleet + 1);
                            *last_action = t;
                            obs_scale("up", index, fleet + 1, t);
                        } else if cooled && admission.is_empty() && routable > policy.min_replicas {
                            let (in_use, capacity) = replicas.iter().filter(|r| r.up).fold(
                                (0usize, 0usize),
                                |acc, r| {
                                    (
                                        acc.0 + r.session.kv_blocks_in_use(),
                                        acc.1 + r.session.capacity_blocks(),
                                    )
                                },
                            );
                            let util = if capacity == 0 {
                                0.0
                            } else {
                                in_use as f64 / capacity as f64
                            };
                            if util < policy.kv_low_watermark {
                                // Scale down: gracefully drain the least
                                // loaded routable replica (highest index on
                                // ties), for good.
                                let mut victim: Option<(usize, usize)> = None;
                                for (i, r) in replicas.iter().enumerate() {
                                    if r.up {
                                        let load = r.session.queued() + r.session.running();
                                        if victim.is_none_or(|(best, _)| load <= best) {
                                            victim = Some((load, i));
                                        }
                                    }
                                }
                                if let Some((_, i)) = victim {
                                    let rep = &mut replicas[i];
                                    rep.up = false;
                                    rep.draining = true;
                                    rep.drain_rejoin = f64::INFINITY;
                                    rep.departed = true;
                                    sstats.scale_downs += 1;
                                    sstats.low_replicas = sstats.low_replicas.min(routable - 1);
                                    *last_action = t;
                                    obs_scale("down", i, routable - 1, t);
                                    if rep.session.is_idle() {
                                        complete_drain(
                                            rep,
                                            i,
                                            t,
                                            self.engine(),
                                            &mut up_events,
                                            &mut queue_waits,
                                        )?;
                                    }
                                }
                            }
                        }
                    }
                }
                now = now.max(t);
            } else if let Some(b) = busy {
                let clock = replicas[b].session.clock();
                let slow = plan.slowdown_at(b, clock);
                replicas[b].session.set_slowdown(slow);
                if macro_steps && admission.is_empty() {
                    // Macro-step to the next timed event, additionally
                    // bounded by the replica's next slowdown boundary so
                    // every step starts with the factor the single-stepped
                    // loop would apply at that instant.
                    let mut horizon = timed;
                    if let Some(bound) = plan.next_slowdown_boundary(b, clock) {
                        horizon = Some(horizon.map_or(bound, |h| h.min(bound)));
                    }
                    replicas[b].session.step_until(horizon)?;
                } else if macro_steps && router.retry_insensitive() {
                    // Backpressured phase, same argument as the fault-free
                    // dispatcher: a retry-insensitive router's consultations
                    // mutate nothing and read only snapshot fields frozen
                    // during a pure-decode run, so the head-of-line request
                    // stays blocked at every skipped instant. The jump is
                    // bounded by every chaos event source (all folded into
                    // `timed`, including scale checks), every *other* busy
                    // replica's clock, and this replica's next slowdown
                    // boundary. On a tie the jump would be empty; fall back
                    // to a single step to keep the tie-break order.
                    let other_busy = replicas
                        .iter()
                        .enumerate()
                        .filter(|&(i, r)| i != b && !r.session.is_idle())
                        .map(|(_, r)| r.session.clock())
                        .fold(f64::INFINITY, f64::min);
                    let mut horizon = other_busy;
                    if let Some(t) = timed {
                        horizon = horizon.min(t);
                    }
                    if let Some(bound) = plan.next_slowdown_boundary(b, clock) {
                        horizon = horizon.min(bound);
                    }
                    if horizon > clock {
                        backpressure_macro_steps += 1;
                        replicas[b]
                            .session
                            .step_until(horizon.is_finite().then_some(horizon))?;
                    } else {
                        replicas[b].session.step()?;
                    }
                } else {
                    replicas[b].session.step()?;
                }
                let rep = &mut replicas[b];
                now = now.max(rep.session.clock());
                harvest(rep, &mut cs);
                if rep.draining && rep.session.is_idle() {
                    let t_done = rep.session.clock();
                    complete_drain(
                        rep,
                        b,
                        t_done,
                        self.engine(),
                        &mut up_events,
                        &mut queue_waits,
                    )?;
                }
            } else if admission.is_empty() {
                break; // No work, no pending events anywhere: done.
            } else if replicas.iter().any(|r| r.up) {
                // All replicas idle yet something is stuck in admission:
                // impossible with queue_cap >= 1 (idle means empty queue).
                return Err(ClusterError::InvalidConfig {
                    reason: "dispatcher stalled (router refuses idle replicas?)",
                });
            } else {
                // Every replica is gone and nothing will bring one back:
                // everything still waiting fails permanently.
                for entry in admission.drain(..) {
                    let s = &mut cs.states[entry.j];
                    if !s.done && !s.failed && s.outstanding == 0 {
                        s.failed = true;
                        cs.stats.failed += 1;
                        obs_count("cluster.requests_failed");
                    }
                }
            }
        }

        // --- Assembly: merge incarnations per replica, close open windows.
        // Scale-down departures are deliberate, not faults: their windows
        // stay out of the unavailability ledger.
        let open_windows: Vec<f64> = replicas
            .iter()
            .filter(|r| !r.departed)
            .filter_map(|r| r.down_since)
            .collect();
        let mut reports: Vec<ReplicaReport> = Vec::new();
        for mut rep in replicas {
            let idle_final = rep.session.idle_time_s() - rep.idle_correction;
            let assigned = rep.assigned;
            let occupancy = rep.occupancy;
            let arrivals = std::mem::take(&mut rep.arrivals);
            let outcome = rep.session.finish();
            let mut admissions: Vec<f64> =
                outcome.completions.iter().map(|c| c.admitted_s).collect();
            admissions.sort_by(f64::total_cmp);
            for (&arrival, &admitted) in arrivals.iter().zip(&admissions) {
                queue_waits.push((admitted - arrival).max(0.0));
            }
            let mut incarnations = rep.stash;
            incarnations.push((outcome.report, outcome.completions));
            let (engine, completions) = merge_incarnations(incarnations);
            reports.push(ReplicaReport {
                engine,
                completions,
                assigned,
                idle_s: rep.stash_idle + idle_final,
                occupancy,
            });
        }
        let mut report = ClusterReport::assemble(router.name(), reports, queue_waits);
        for since in open_windows {
            cs.stats.unavailability_windows += 1;
            cs.stats.unavailable_s += (report.makespan_s - since).max(0.0);
        }
        if engaged {
            report.faults = cs.stats;
        }
        report.shed = shed_stats;
        if let Some((_, _, _, sstats)) = scale_state {
            report.scaling = sstats;
        }
        report.backpressure_macro_steps = backpressure_macro_steps;
        Ok(report)
    }
}
