//! The sharded serving simulator: admission queue → router → N replica
//! engine sessions on one shared timeline.
//!
//! Discrete-event loop invariants:
//!
//! * Every replica is an [`EngineSession`] whose local clock lives on the
//!   shared cluster timeline (idle replicas are fast-forwarded via
//!   `advance_to` when work reaches them).
//! * An arrival is delivered only once every *busy* replica's clock has
//!   reached its arrival time, so routing decisions never see a replica
//!   state from the past.
//! * Each replica's waiting queue is bounded by `queue_cap`: when the
//!   router's chosen replica is full, the request blocks at the head of the
//!   global admission queue (backpressure) and the router is re-consulted
//!   after the next event.
//!
//! Everything is deterministic: fixed inputs and a deterministic router give
//! bit-identical [`ClusterReport`]s.
//!
//! Replicas advance in **macro-steps** whenever the admission queue is
//! empty: [`ClusterSim::run`] hands the chosen replica the next arrival
//! time as a horizon and lets the session collapse steady-state decode
//! runs ([`EngineSession::step_until`]), so a job with breathing room costs
//! events, not tokens. Backpressured phases macro-step too when the router
//! declares [`Router::retry_insensitive`] (all four built-ins do): the
//! skipped states are pure-decode instants where no snapshot field a
//! retry-insensitive router reads can change, so the blocked head-of-line
//! request would have failed placement at each of them identically. Custom
//! routers that keep the `false` default are served conservatively — one
//! step per event, every retry observable. Either way reports stay
//! byte-identical to [`ClusterSim::run_single_stepped`], the
//! one-step-per-event differential oracle, for every deterministic router.

use crate::overload::{decide_admission, obs_shed, AdmissionPolicy, ShedDecision, ShedStats};
use crate::report::{ClusterReport, ReplicaOccupancy, ReplicaReport};
use crate::request::ClusterRequest;
use crate::router::{ReplicaSnapshot, Router};
use llmqo_serve::{EngineError, EngineSession, SimEngine};
use std::collections::VecDeque;
use std::fmt;

/// Cluster topology and flow-control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of identical engine replicas.
    pub replicas: usize,
    /// Per-replica admission-queue bound (requests waiting, not running).
    /// The global admission queue stalls when the routed-to replica is full.
    pub queue_cap: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 4,
            queue_cap: 64,
        }
    }
}

/// Failures of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The configuration cannot serve anything.
    InvalidConfig {
        /// What is wrong.
        reason: &'static str,
    },
    /// A request carried a negative, NaN, or infinite arrival time.
    InvalidArrival {
        /// Index of the offending request.
        index: usize,
    },
    /// The router chose a replica outside `0..replicas`.
    RouterOutOfRange {
        /// The router's choice.
        chose: usize,
        /// Number of replicas.
        replicas: usize,
    },
    /// A replica engine failed.
    Engine(EngineError),
    /// A [`FaultPlan`](crate::FaultPlan) or
    /// [`RetryPolicy`](crate::RetryPolicy) is malformed.
    InvalidFaultPlan {
        /// What is wrong.
        reason: &'static str,
    },
    /// Two requests passed to
    /// [`run_with_faults`](crate::ClusterSim::run_with_faults) share an
    /// engine request id. Retry attribution (which logical request a
    /// completion belongs to) needs ids to be unique.
    DuplicateRequestId {
        /// The repeated id.
        id: usize,
    },
    /// An [`AdmissionPolicy`](crate::AdmissionPolicy) or
    /// [`ScalePolicy`](crate::ScalePolicy) is malformed.
    InvalidOverloadPolicy {
        /// What is wrong.
        reason: &'static str,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig { reason } => write!(f, "invalid cluster config: {reason}"),
            ClusterError::InvalidArrival { index } => {
                write!(
                    f,
                    "request {index} has a non-finite or negative arrival time"
                )
            }
            ClusterError::RouterOutOfRange { chose, replicas } => {
                write!(f, "router chose replica {chose} of {replicas}")
            }
            ClusterError::Engine(e) => write!(f, "replica engine error: {e}"),
            ClusterError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan or retry policy: {reason}")
            }
            ClusterError::DuplicateRequestId { id } => {
                write!(f, "duplicate request id {id} in a fault-injected run")
            }
            ClusterError::InvalidOverloadPolicy { reason } => {
                write!(f, "invalid admission or scale policy: {reason}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<EngineError> for ClusterError {
    fn from(e: EngineError) -> Self {
        ClusterError::Engine(e)
    }
}

/// A fleet of identical [`SimEngine`] replicas behind a routed admission
/// queue.
///
/// # Examples
///
/// ```
/// use llmqo_cluster::{ClusterConfig, ClusterRequest, ClusterSim, PrefixAffinity};
/// use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine,
///                   SimRequest};
///
/// let engine = SimEngine::new(
///     Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
///     EngineConfig::default(),
/// );
/// let sim = ClusterSim::new(engine, ClusterConfig { replicas: 2, queue_cap: 8 });
/// // Two prefix groups of 10 requests each.
/// let requests: Vec<ClusterRequest> = (0..20usize)
///     .map(|i| {
///         let group = (i / 10) as u32;
///         let mut toks: Vec<u32> = (0..32).map(|j| group * 1000 + j).collect();
///         toks.extend((0..8).map(|j| 10_000 + i as u32 * 64 + j));
///         ClusterRequest::new(SimRequest::from_tokens(i, toks, 2), u64::from(group))
///     })
///     .collect();
/// let report = sim.run(&mut PrefixAffinity::default(), &requests).unwrap();
/// assert_eq!(report.completed, 20);
/// assert!(report.prefix_hit_rate() > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSim {
    engine: SimEngine,
    config: ClusterConfig,
}

/// Mutable per-replica state during a run.
struct Replica {
    session: EngineSession,
    assigned: usize,
    /// Arrival times of requests enqueued here, in enqueue (= admission)
    /// order; zipped with admission-ordered completions for queue waits.
    arrivals: Vec<f64>,
    /// KV occupancy sampled at each placement decision (always on: the
    /// samples land in [`ReplicaReport::occupancy`]).
    occupancy: ReplicaOccupancy,
}

/// Cold path: emits the router-decision trace event and refreshes the
/// chosen replica's occupancy gauges. Only called when observability is on.
fn trace_placement(
    replica: &Replica,
    choice: usize,
    request: &ClusterRequest,
    kv_blocks_in_use: usize,
    probed_cached_tokens: usize,
) {
    let r = llmqo_obs::registry();
    r.gauge(&format!("cluster.replica{choice}.kv_blocks_in_use"))
        .set(kv_blocks_in_use as f64);
    r.gauge(&format!("cluster.replica{choice}.queued"))
        .set(replica.session.queued() as f64);
    r.counter("cluster.requests_routed").inc();
    llmqo_obs::tracer().instant(
        0,
        request.request.id as u64,
        "route",
        "router",
        replica.session.clock(),
        &[
            ("replica", choice.into()),
            ("prefix_key", request.prefix_key.into()),
            ("kv_blocks_in_use", kv_blocks_in_use.into()),
            ("probed_cached_tokens", probed_cached_tokens.into()),
        ],
    );
}

impl ClusterSim {
    /// Creates a cluster of identical replicas of `engine`.
    pub fn new(engine: SimEngine, config: ClusterConfig) -> Self {
        ClusterSim { engine, config }
    }

    /// The per-replica engine template.
    pub fn engine(&self) -> &SimEngine {
        &self.engine
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Serves `requests` (in arrival order) through `router` across the
    /// replica fleet and reports cluster metrics.
    ///
    /// While the admission queue is empty, replicas advance via
    /// [`EngineSession::step_until`](llmqo_serve::EngineSession::step_until)
    /// with the next pending arrival as the horizon, so steady-state decode
    /// runs are macro-stepped instead of simulated token by token; no
    /// routing can occur inside such a jump, so nothing any [`Router`]
    /// observes changes. While requests are blocked in admission
    /// (backpressure), the loop single-steps, because each event's router
    /// retry is observable — even in count, for stateful policies. Reports
    /// are therefore byte-identical to
    /// [`run_single_stepped`](ClusterSim::run_single_stepped), the
    /// step-by-step oracle the differential suite compares against, for
    /// every deterministic router.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] for a zero-replica or zero-capacity
    /// cluster, [`ClusterError::InvalidArrival`] for non-finite arrival
    /// times, [`ClusterError::RouterOutOfRange`] for a misbehaving router,
    /// and [`ClusterError::Engine`] when a replica rejects a request
    /// outright (model or request too large).
    pub fn run(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
    ) -> Result<ClusterReport, ClusterError> {
        self.run_impl(router, requests, &AdmissionPolicy::default(), true)
    }

    /// [`run`](ClusterSim::run) behind a KV-aware [`AdmissionPolicy`]:
    /// arrivals are gated on queue depth, fleet KV occupancy, and per-tenant
    /// quotas, and under pressure the lowest-priority pending work is shed
    /// deterministically (see the policy docs for the exact rules). The
    /// result's [`shed`](ClusterReport::shed) ledger satisfies
    /// `completed + shed == offered` — no request is ever silently lost.
    ///
    /// An inert (default) policy produces byte-identical reports to
    /// [`run`](ClusterSim::run).
    ///
    /// # Errors
    ///
    /// As for [`run`](ClusterSim::run), plus
    /// [`ClusterError::InvalidOverloadPolicy`] for a malformed policy.
    pub fn run_admitted(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        admission: &AdmissionPolicy,
    ) -> Result<ClusterReport, ClusterError> {
        self.run_impl(router, requests, admission, true)
    }

    /// [`run_admitted`](ClusterSim::run_admitted) driving every replica one
    /// scheduling step at a time — the fine-grained oracle for the overload
    /// differential suite.
    ///
    /// # Errors
    ///
    /// As for [`run_admitted`](ClusterSim::run_admitted).
    pub fn run_admitted_single_stepped(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        admission: &AdmissionPolicy,
    ) -> Result<ClusterReport, ClusterError> {
        self.run_impl(router, requests, admission, false)
    }

    /// [`run`](ClusterSim::run) driving every replica one scheduling step at
    /// a time, with no macro-stepping. Exists as the fine-grained oracle for
    /// the differential tests; it produces byte-identical reports to
    /// [`run`](ClusterSim::run) and is much slower on decode-heavy jobs.
    ///
    /// # Errors
    ///
    /// As for [`run`](ClusterSim::run).
    pub fn run_single_stepped(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
    ) -> Result<ClusterReport, ClusterError> {
        self.run_impl(router, requests, &AdmissionPolicy::default(), false)
    }

    fn run_impl(
        &self,
        router: &mut dyn Router,
        requests: &[ClusterRequest],
        admission_policy: &AdmissionPolicy,
        macro_steps: bool,
    ) -> Result<ClusterReport, ClusterError> {
        if self.config.replicas == 0 {
            return Err(ClusterError::InvalidConfig {
                reason: "need at least one replica",
            });
        }
        if self.config.queue_cap == 0 {
            return Err(ClusterError::InvalidConfig {
                reason: "queue capacity must be at least one",
            });
        }
        for (index, r) in requests.iter().enumerate() {
            if !r.arrival_s.is_finite() || r.arrival_s < 0.0 {
                return Err(ClusterError::InvalidArrival { index });
            }
        }
        admission_policy.validate()?;
        let gated = !admission_policy.is_inert();
        let mut shed_stats = ShedStats::default();
        if gated {
            shed_stats.offered = requests.len();
        }

        let obs_on = llmqo_obs::enabled();
        let mut replicas: Vec<Replica> = (0..self.config.replicas)
            .map(|i| {
                let mut session = self.engine.session()?;
                // Lane 0 is the default (single-engine / SQL) lane; replica
                // i's spans go to lane i + 1.
                let lane = u32::try_from(i + 1).unwrap_or(u32::MAX);
                session.set_trace_lane(lane);
                if obs_on {
                    llmqo_obs::tracer().name_lane(lane, &format!("replica {i}"));
                }
                Ok(Replica {
                    session,
                    assigned: 0,
                    arrivals: Vec::new(),
                    occupancy: ReplicaOccupancy::default(),
                })
            })
            .collect::<Result<_, EngineError>>()?;
        // Scratch buffer for flattening a request's prompt fragments when
        // probing the chosen replica's cache at placement time.
        let mut prompt_buf: Vec<llmqo_tokenizer::TokenId> = Vec::new();

        // Arrival order: by time, original order on ties (stable sort).
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| requests[a].arrival_s.total_cmp(&requests[b].arrival_s));
        let mut next_arrival = 0usize;
        // Requests that have arrived but not yet been placed on a replica.
        let mut admission: VecDeque<usize> = VecDeque::new();
        // The simulation's current instant: the time of the latest event
        // processed (arrival delivery or replica step). A request delayed in
        // the admission queue by backpressure can be dispatched no earlier
        // than `now`, whatever its arrival time.
        let mut now = 0.0f64;
        // Backpressured phases collapsed into `step_until` jumps (see below).
        let mut backpressure_macro_steps = 0u64;

        loop {
            // Place as many admission-queue requests as the routed-to
            // replicas can take. No simulated time passes while placing.
            while let Some(&j) = admission.front() {
                let snapshots: Vec<ReplicaSnapshot> = replicas
                    .iter()
                    .enumerate()
                    .map(|(index, r)| ReplicaSnapshot {
                        index,
                        queued: r.session.queued(),
                        running: r.session.running(),
                        kv_blocks_in_use: r.session.kv_blocks_in_use(),
                        capacity_blocks: r.session.capacity_blocks(),
                        clock_s: r.session.clock(),
                        assigned: r.assigned,
                        alive: true,
                    })
                    .collect();
                let choice = router.route(requests[j].prefix_key, &snapshots);
                if choice >= replicas.len() {
                    return Err(ClusterError::RouterOutOfRange {
                        chose: choice,
                        replicas: replicas.len(),
                    });
                }
                if replicas[choice].session.queued() >= self.config.queue_cap {
                    break; // Backpressure: head-of-line waits for an event.
                }
                admission.pop_front();
                let replica = &mut replicas[choice];
                // An idle replica has been frozen since it last worked;
                // catch it up to the moment the request reaches it — its
                // arrival, or later if backpressure held it in admission.
                replica.session.advance_to(requests[j].arrival_s.max(now));
                // Sample what the router could have known at this decision:
                // KV occupancy and the probed prefix hit on the chosen
                // replica. Pure reads, shared by both stepping modes, so
                // macro-stepped and single-stepped reports stay identical.
                let kv = replica.session.kv_blocks_in_use();
                prompt_buf.clear();
                for frag in &requests[j].request.prompt {
                    prompt_buf.extend_from_slice(frag);
                }
                let probed = replica.session.probe_cached_tokens(&prompt_buf);
                let occ = &mut replica.occupancy;
                occ.samples += 1;
                occ.kv_blocks_sum += kv as u64;
                occ.kv_blocks_peak = occ.kv_blocks_peak.max(kv);
                occ.capacity_blocks = replica.session.capacity_blocks();
                occ.probed_cached_tokens += probed as u64;
                if llmqo_obs::enabled() {
                    trace_placement(replica, choice, &requests[j], kv, probed);
                }
                replica.session.enqueue_ref(&requests[j].request);
                replica.assigned += 1;
                replica.arrivals.push(requests[j].arrival_s);
            }

            // Next event: the earliest busy replica step, or the next
            // arrival — whichever comes first on the shared timeline.
            let mut busy: Option<usize> = None;
            for (i, r) in replicas.iter().enumerate() {
                if !r.session.is_idle()
                    && busy.is_none_or(|b| r.session.clock() < replicas[b].session.clock())
                {
                    busy = Some(i);
                }
            }
            let arrival_due = next_arrival < order.len();
            let deliver_arrival = match (busy, arrival_due) {
                (_, false) => false,
                (None, true) => true,
                (Some(b), true) => {
                    requests[order[next_arrival]].arrival_s <= replicas[b].session.clock()
                }
            };

            if deliver_arrival {
                // Deliver every arrival due at (or before) this instant,
                // each through the admission gates (an inert policy admits
                // everything, preserving byte-identity with `run`).
                let t = requests[order[next_arrival]].arrival_s;
                while next_arrival < order.len() && requests[order[next_arrival]].arrival_s <= t {
                    let j = order[next_arrival];
                    next_arrival += 1;
                    if !gated {
                        admission.push_back(j);
                        continue;
                    }
                    let kv_util = if admission_policy.max_kv_utilization.is_some() {
                        let (in_use, capacity) =
                            replicas.iter().fold((0usize, 0usize), |acc, r| {
                                (
                                    acc.0 + r.session.kv_blocks_in_use(),
                                    acc.1 + r.session.capacity_blocks(),
                                )
                            });
                        if capacity == 0 {
                            0.0
                        } else {
                            in_use as f64 / capacity as f64
                        }
                    } else {
                        0.0
                    };
                    let sheddable: Vec<(usize, u32, u8)> = admission
                        .iter()
                        .enumerate()
                        .map(|(pos, &p)| (pos, requests[p].tenant, requests[p].priority))
                        .collect();
                    match decide_admission(
                        admission_policy,
                        requests[j].tenant,
                        requests[j].priority,
                        admission.len(),
                        &sheddable,
                        kv_util,
                    ) {
                        ShedDecision::Admit => admission.push_back(j),
                        ShedDecision::ShedArrival(reason) => {
                            shed_stats.record(reason, requests[j].priority);
                            obs_shed(&requests[j], reason, t);
                        }
                        ShedDecision::EvictPending(pos, reason) => {
                            if let Some(victim) = admission.remove(pos) {
                                shed_stats.record(reason, requests[victim].priority);
                                obs_shed(&requests[victim], reason, t);
                            }
                            admission.push_back(j);
                        }
                    }
                }
                now = now.max(t);
            } else if let Some(b) = busy {
                let next_arrival_s =
                    (next_arrival < order.len()).then(|| requests[order[next_arrival]].arrival_s);
                if macro_steps && admission.is_empty() {
                    // With nothing waiting for placement, no routing (and no
                    // `now` observation) can occur before the next arrival,
                    // so the replica may jump to its next internal event,
                    // bounded by that arrival — the single-stepped loop
                    // would pass through the same per-replica states, and
                    // it, too, performs the step that crosses the arrival
                    // before delivering it.
                    replicas[b].session.step_until(next_arrival_s)?;
                } else if macro_steps && router.retry_insensitive() {
                    // Backpressured phase. Every event normally triggers a
                    // router retry, but a retry-insensitive router's
                    // consultations mutate nothing and read only snapshot
                    // fields that are frozen during a pure-decode run (the
                    // states `step_until` skips change nothing but the
                    // stepping replica's clock). The head-of-line request
                    // therefore stays blocked at every skipped instant, and
                    // the replica may jump straight to its next internal
                    // event — bounded by the next arrival and by every
                    // *other* busy replica's clock, so cross-replica event
                    // order (and thus which event unblocks placement) is
                    // preserved. On clock ties the jump would be empty; fall
                    // back to a single step to keep the tie-break order.
                    let other_busy = replicas
                        .iter()
                        .enumerate()
                        .filter(|&(i, r)| i != b && !r.session.is_idle())
                        .map(|(_, r)| r.session.clock())
                        .fold(f64::INFINITY, f64::min);
                    let mut horizon = other_busy;
                    if let Some(t) = next_arrival_s {
                        horizon = horizon.min(t);
                    }
                    if horizon > replicas[b].session.clock() {
                        backpressure_macro_steps += 1;
                        replicas[b]
                            .session
                            .step_until(horizon.is_finite().then_some(horizon))?;
                    } else {
                        replicas[b].session.step()?;
                    }
                } else {
                    // Conservative path for custom (possibly stateful)
                    // routers: single-step so every event's retry stays
                    // observable.
                    replicas[b].session.step()?;
                }
                now = now.max(replicas[b].session.clock());
            } else if admission.is_empty() {
                break; // No work anywhere: the job is done.
            } else {
                // All replicas idle yet something is stuck in admission:
                // impossible with queue_cap >= 1 (idle means empty queue).
                return Err(ClusterError::InvalidConfig {
                    reason: "dispatcher stalled (router refuses idle replicas?)",
                });
            }
        }

        // Collect per-replica reports and queue waits. Engine admission is
        // FIFO, so completions sorted by admission time pair with arrivals
        // in enqueue order.
        let mut queue_waits: Vec<f64> = Vec::new();
        let mut reports: Vec<ReplicaReport> = Vec::new();
        for replica in replicas {
            let idle_s = replica.session.idle_time_s();
            let outcome = replica.session.finish();
            let mut admissions: Vec<f64> =
                outcome.completions.iter().map(|c| c.admitted_s).collect();
            admissions.sort_by(f64::total_cmp);
            for (&arrival, &admitted) in replica.arrivals.iter().zip(&admissions) {
                queue_waits.push((admitted - arrival).max(0.0));
            }
            reports.push(ReplicaReport {
                engine: outcome.report,
                completions: outcome.completions,
                assigned: replica.assigned,
                idle_s,
                occupancy: replica.occupancy,
            });
        }
        let mut report = ClusterReport::assemble(router.name(), reports, queue_waits);
        report.shed = shed_stats;
        report.backpressure_macro_steps = backpressure_macro_steps;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ArrivalProcess;
    use crate::router::{LeastLoaded, PrefixAffinity, RoundRobin};
    use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimRequest};

    fn engine() -> SimEngine {
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        )
    }

    /// `groups` prefix groups of `per_group` requests; each group shares a
    /// 64-token prefix and each request has a 16-token unique tail.
    fn grouped_requests(groups: usize, per_group: usize) -> Vec<ClusterRequest> {
        (0..groups * per_group)
            .map(|i| {
                let g = (i / per_group) as u32;
                let mut toks: Vec<u32> = (0..64).map(|j| g * 10_000 + j).collect();
                toks.extend((0..16).map(|j| 1_000_000 + i as u32 * 64 + j));
                ClusterRequest::new(SimRequest::from_tokens(i, toks, 2), u64::from(g))
            })
            .collect()
    }

    fn sim(replicas: usize) -> ClusterSim {
        ClusterSim::new(
            engine(),
            ClusterConfig {
                replicas,
                queue_cap: 16,
            },
        )
    }

    #[test]
    fn every_request_completes_exactly_once_under_every_policy() {
        let requests = grouped_requests(12, 10);
        for router in [
            &mut RoundRobin as &mut dyn Router,
            &mut LeastLoaded,
            &mut PrefixAffinity::default(),
        ] {
            let report = sim(4).run(router, &requests).unwrap();
            assert_eq!(report.completed, 120, "{}", router.name());
            let mut ids: Vec<usize> = report
                .replicas
                .iter()
                .flat_map(|r| r.completions.iter().map(|c| c.id))
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..120).collect::<Vec<_>>(), "{}", router.name());
        }
    }

    #[test]
    fn affinity_beats_round_robin_on_hit_rate() {
        let requests = grouped_requests(40, 8);
        let rr = sim(4).run(&mut RoundRobin, &requests).unwrap();
        let pa = sim(4)
            .run(&mut PrefixAffinity::default(), &requests)
            .unwrap();
        assert!(
            pa.prefix_hit_rate() > rr.prefix_hit_rate(),
            "affinity {} <= round-robin {}",
            pa.prefix_hit_rate(),
            rr.prefix_hit_rate()
        );
    }

    #[test]
    fn single_replica_matches_plain_engine_run() {
        // With one replica and a non-binding queue cap, the cluster layer
        // must be a transparent pass-through over the engine's batch run.
        let requests = grouped_requests(5, 6);
        let wide_queue = ClusterSim::new(
            engine(),
            ClusterConfig {
                replicas: 1,
                queue_cap: requests.len(),
            },
        );
        let cluster = wide_queue.run(&mut RoundRobin, &requests).unwrap();
        let plain = engine()
            .run(
                &requests
                    .iter()
                    .map(|r| r.request.clone())
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert_eq!(cluster.replicas[0].engine, plain);
        assert_eq!(cluster.makespan_s, plain.job_completion_time_s);
    }

    #[test]
    fn macro_stepping_matches_single_stepping_across_policies() {
        // Mid-flight Poisson arrivals, several prefix groups, every built-in
        // policy: the macro-stepped run must reproduce the single-stepped
        // oracle bit for bit.
        let mut requests = grouped_requests(15, 8);
        ArrivalProcess::Poisson {
            rate_rps: 800.0,
            seed: 3,
        }
        .assign(&mut requests);
        for router_pair in [
            (
                &mut RoundRobin as &mut dyn Router,
                &mut RoundRobin as &mut dyn Router,
            ),
            (&mut LeastLoaded, &mut LeastLoaded),
            (
                &mut PrefixAffinity::default(),
                &mut PrefixAffinity::default(),
            ),
            (
                &mut PrefixAffinity::bounded(1.25),
                &mut PrefixAffinity::bounded(1.25),
            ),
        ] {
            let (fine_router, coarse_router) = router_pair;
            let fine = sim(3).run_single_stepped(fine_router, &requests).unwrap();
            let coarse = sim(3).run(coarse_router, &requests).unwrap();
            assert_eq!(fine, coarse, "{}", fine_router.name());
        }
    }

    #[test]
    fn macro_stepping_matches_single_stepping_under_backpressure() {
        let requests = grouped_requests(30, 4);
        let tight = |queue_cap| {
            ClusterSim::new(
                engine(),
                ClusterConfig {
                    replicas: 3,
                    queue_cap,
                },
            )
        };
        for cap in [1usize, 2, 8] {
            let fine = tight(cap)
                .run_single_stepped(&mut LeastLoaded, &requests)
                .unwrap();
            let coarse = tight(cap).run(&mut LeastLoaded, &requests).unwrap();
            assert_eq!(fine, coarse, "queue_cap {cap}");
        }
    }

    #[test]
    fn macro_stepping_matches_oracle_on_long_heterogeneous_backpressured_jobs() {
        // Regression shape for the horizon bug: long *heterogeneous* decode
        // runs make replicas' events interleave finely, Poisson arrivals +
        // queue_cap 1 keep the admission queue non-empty for most of the
        // job, and the stateful round-robin router makes even the *count*
        // of placement retries observable. A macro-step that overruns
        // another replica's pending event (or swallows router retries)
        // diverges here.
        let mut requests: Vec<ClusterRequest> = (0..24usize)
            .map(|i| {
                let toks: Vec<u32> = (0..96).map(|j| i as u32 * 4096 + j).collect();
                let output = 8 + (i as u32 * 83) % 200;
                ClusterRequest::new(SimRequest::from_tokens(i, toks, output), (i % 5) as u64)
            })
            .collect();
        ArrivalProcess::Poisson {
            rate_rps: 400.0,
            seed: 0,
        }
        .assign(&mut requests);
        for cap in [1usize, 2] {
            let tight = || {
                ClusterSim::new(
                    engine(),
                    ClusterConfig {
                        replicas: 2,
                        queue_cap: cap,
                    },
                )
            };
            let fine = tight()
                .run_single_stepped(&mut LeastLoaded, &requests)
                .unwrap();
            let coarse = tight().run(&mut LeastLoaded, &requests).unwrap();
            assert_eq!(fine, coarse, "least-loaded, queue_cap {cap}");
            let fine = tight()
                .run_single_stepped(&mut RoundRobin, &requests)
                .unwrap();
            let coarse = tight().run(&mut RoundRobin, &requests).unwrap();
            assert_eq!(fine, coarse, "round-robin (stateful), queue_cap {cap}");
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let mut requests = grouped_requests(20, 6);
        ArrivalProcess::Poisson {
            rate_rps: 500.0,
            seed: 11,
        }
        .assign(&mut requests);
        let a = sim(4)
            .run(&mut PrefixAffinity::default(), &requests)
            .unwrap();
        let b = sim(4)
            .run(&mut PrefixAffinity::default(), &requests)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backpressure_never_loses_requests() {
        let requests = grouped_requests(30, 4);
        let tight = ClusterSim::new(
            engine(),
            ClusterConfig {
                replicas: 3,
                queue_cap: 1,
            },
        );
        let report = tight.run(&mut LeastLoaded, &requests).unwrap();
        assert_eq!(report.completed, 120);
    }

    #[test]
    fn staggered_arrivals_record_queue_waits() {
        let mut requests = grouped_requests(10, 10);
        ArrivalProcess::Uniform { rate_rps: 2000.0 }.assign(&mut requests);
        let report = sim(2).run(&mut LeastLoaded, &requests).unwrap();
        assert_eq!(report.completed, 100);
        assert!(report.queue_wait_p50_s >= 0.0);
        assert!(report.queue_wait_p99_s >= report.queue_wait_p50_s);
        assert!(report.queue_wait_max_s >= report.queue_wait_p99_s);
        // Replicas that started late must carry idle time on the shared
        // timeline rather than compressing history.
        assert!(report.makespan_s >= requests.last().unwrap().arrival_s);
    }

    #[test]
    fn config_validation() {
        let requests = grouped_requests(1, 2);
        let no_replicas = ClusterSim::new(
            engine(),
            ClusterConfig {
                replicas: 0,
                queue_cap: 4,
            },
        );
        assert!(matches!(
            no_replicas.run(&mut LeastLoaded, &requests),
            Err(ClusterError::InvalidConfig { .. })
        ));
        let no_queue = ClusterSim::new(
            engine(),
            ClusterConfig {
                replicas: 2,
                queue_cap: 0,
            },
        );
        assert!(matches!(
            no_queue.run(&mut LeastLoaded, &requests),
            Err(ClusterError::InvalidConfig { .. })
        ));
        let mut bad = requests.clone();
        bad[1].arrival_s = f64::NAN;
        assert!(matches!(
            sim(2).run(&mut LeastLoaded, &bad),
            Err(ClusterError::InvalidArrival { index: 1 })
        ));
    }

    #[test]
    fn backpressure_delay_is_not_served_retroactively() {
        // Key = target replica. Six long-prompt requests for replica 0 with
        // queue_cap 1 block the admission queue's head; the final request
        // (for idle replica 1) arrives at t=0 but can only be *dispatched*
        // once replica 0 unblocks the head of the line — its admission time
        // must reflect that delay, not its arrival time.
        struct ByKey;
        impl Router for ByKey {
            fn name(&self) -> &'static str {
                "by-key"
            }
            fn route(&mut self, key: u64, _replicas: &[ReplicaSnapshot]) -> usize {
                key as usize
            }
        }
        let mut requests: Vec<ClusterRequest> = (0..6)
            .map(|i| {
                let toks: Vec<u32> = (0..2048).map(|j| i as u32 * 4096 + j).collect();
                ClusterRequest::new(SimRequest::from_tokens(i, toks, 2), 0)
            })
            .collect();
        requests.push(ClusterRequest::new(
            SimRequest::from_tokens(99, (0..64).map(|j| 900_000 + j).collect(), 2),
            1,
        ));
        let tight = ClusterSim::new(
            engine(),
            ClusterConfig {
                replicas: 2,
                queue_cap: 1,
            },
        );
        let report = tight.run(&mut ByKey, &requests).unwrap();
        assert_eq!(report.completed, 7);
        let late = report.replicas[1]
            .completions
            .iter()
            .find(|c| c.id == 99)
            .expect("request 99 served on replica 1");
        // One engine step on replica 0 costs at least a full weight read
        // (~50ms on an L4); request 99 cannot be admitted before that.
        assert!(
            late.admitted_s > 0.04,
            "blocked request served retroactively at {}s",
            late.admitted_s
        );
        assert!(report.queue_wait_max_s > 0.02);
    }

    #[test]
    fn rogue_router_is_rejected() {
        struct Rogue;
        impl Router for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn route(&mut self, _k: u64, replicas: &[ReplicaSnapshot]) -> usize {
                replicas.len() + 7
            }
        }
        assert!(matches!(
            sim(2).run(&mut Rogue, &grouped_requests(1, 2)),
            Err(ClusterError::RouterOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_job_reports_cleanly() {
        let report = sim(3).run(&mut PrefixAffinity::default(), &[]).unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan_s, 0.0);
        assert_eq!(report.prefix_hit_rate(), 0.0);
    }
}
