//! Routing policies: which replica serves the next request.
//!
//! The dispatcher consults the [`Router`] at *placement* time — when a
//! request leaves the admission queue for a replica's bounded queue — with a
//! live [`ReplicaSnapshot`] of every replica. Policies therefore see
//! backpressure as it happens: a router that returns a replica whose queue
//! is full simply leaves the request at the head of the admission queue
//! until the situation changes (the dispatcher re-asks after every
//! simulation event).

use std::fmt;

/// Point-in-time view of one replica, handed to [`Router::route`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSnapshot {
    /// Replica index in `0..replicas`.
    pub index: usize,
    /// Requests waiting in the replica's admission queue.
    pub queued: usize,
    /// Sequences currently in the replica's running batch.
    pub running: usize,
    /// KV blocks referenced or cached on the replica.
    pub kv_blocks_in_use: usize,
    /// The replica's total KV capacity in blocks.
    pub capacity_blocks: usize,
    /// The replica's local clock, seconds.
    pub clock_s: f64,
    /// Requests routed to this replica so far.
    pub assigned: usize,
}

impl ReplicaSnapshot {
    /// Queued plus running work — the scalar load most policies compare.
    pub fn load(&self) -> usize {
        self.queued + self.running
    }
}

/// A routing policy. Implementations must return an index `< replicas.len()`
/// and should be deterministic: the cluster simulator's reports are
/// reproducible only if its router is.
pub trait Router {
    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// Chooses the replica for a request with `prefix_key`.
    ///
    /// Called once per placement attempt; if the chosen replica's queue is
    /// full the dispatcher retries after the next simulation event, so
    /// stateful policies observe one extra call per retry.
    fn route(&mut self, prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize;
}

impl fmt::Debug for dyn Router + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Router({})", self.name())
    }
}

/// Cycles through replicas in order, ignoring both load and prefix
/// identity. The classic default of dispatch layers — and the policy that
/// destroys solver-created prefix locality, since consecutive rows of a
/// shared-prefix group land on different replicas.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
        let choice = self.next % replicas.len();
        self.next = (self.next + 1) % replicas.len();
        choice
    }
}

/// Sends each request to the replica with the least outstanding work
/// (queued + running), breaking ties toward lower KV pressure, then lower
/// index. Balances load tightly but is as prefix-blind as round-robin.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
        replicas
            .iter()
            .min_by_key(|r| (r.load(), r.kv_blocks_in_use, r.index))
            .expect("route is never called with zero replicas")
            .index
    }
}

/// Consistent routing on shared-prefix identity via rendezvous (highest
/// random weight) hashing: every request with the same `prefix_key` maps to
/// the same replica, so a shared-prefix group's KV blocks are computed once
/// cluster-wide instead of once per replica. Adding or removing a replica
/// remaps only the groups whose winner changed — the standard consistent-
/// hashing property, which keeps caches warm across resizes.
///
/// The pure form ([`PrefixAffinity::default`]) always takes the top-ranked
/// replica: maximal locality, but a workload with few large prefix groups
/// can pile onto one replica and serialize the job. The bounded form
/// ([`PrefixAffinity::bounded`]) applies consistent hashing with bounded
/// loads: replicas are tried in rendezvous rank order and the first whose
/// outstanding work is below `factor ×` the cluster mean wins, so a group
/// spills to its *second*-ranked replica only while its first is genuinely
/// overloaded — trading a bounded amount of prefix recomputation for
/// parallelism.
#[derive(Debug, Clone, Default)]
pub struct PrefixAffinity {
    max_load_factor: Option<f64>,
}

impl PrefixAffinity {
    /// Bounded-load affinity: spill down the rendezvous ranking whenever the
    /// candidate's queued+running work reaches `factor` times the cluster
    /// mean (`factor` ≥ 1; 1.25 is the classic choice).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` or is not finite.
    pub fn bounded(factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "load factor must be finite and at least 1.0"
        );
        PrefixAffinity {
            max_load_factor: Some(factor),
        }
    }
}

/// SplitMix64 finalizer — mixes a (key, replica) pair into a rank.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Router for PrefixAffinity {
    fn name(&self) -> &'static str {
        match self.max_load_factor {
            None => "prefix-affinity",
            Some(_) => "prefix-affinity-bounded",
        }
    }

    fn route(&mut self, prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
        let mut ranked: Vec<(u64, usize)> = replicas
            .iter()
            .map(|r| (mix(prefix_key ^ mix(r.index as u64)), r.index))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        let Some(factor) = self.max_load_factor else {
            return ranked[0].1;
        };
        // Consistent hashing with bounded loads: capacity is `factor` times
        // the mean outstanding work counting the incoming request, so at
        // least one replica is always below it.
        let total: usize = replicas.iter().map(|r| r.load()).sum();
        let capacity = (factor * (total + 1) as f64 / replicas.len() as f64).ceil();
        ranked
            .iter()
            .find(|&&(_, i)| (replicas[i].load() as f64) < capacity)
            .unwrap_or(&ranked[0])
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshots(loads: &[(usize, usize)]) -> Vec<ReplicaSnapshot> {
        loads
            .iter()
            .enumerate()
            .map(|(index, &(queued, running))| ReplicaSnapshot {
                index,
                queued,
                running,
                kv_blocks_in_use: 0,
                capacity_blocks: 1000,
                clock_s: 0.0,
                assigned: 0,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles() {
        let snaps = snapshots(&[(0, 0), (0, 0), (0, 0)]);
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..6).map(|k| rr.route(k, &snaps)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_picks_min_and_breaks_ties_low() {
        let mut ll = LeastLoaded;
        assert_eq!(ll.route(0, &snapshots(&[(5, 1), (0, 2), (4, 0)])), 1);
        assert_eq!(ll.route(0, &snapshots(&[(1, 1), (2, 0), (0, 2)])), 0);
    }

    #[test]
    fn bounded_affinity_spills_only_under_overload() {
        let mut pa = PrefixAffinity::bounded(1.25);
        // Balanced cluster: behaves exactly like pure affinity.
        let balanced = snapshots(&[(2, 1), (2, 1), (2, 1), (2, 1)]);
        let mut pure = PrefixAffinity::default();
        for key in 0..100u64 {
            assert_eq!(pa.route(key, &balanced), pure.route(key, &balanced));
        }
        // One replica hogging nearly all work: keys ranked onto it must
        // spill to their next-ranked replica instead.
        let skewed = snapshots(&[(40, 8), (0, 0), (0, 0), (0, 0)]);
        for key in 0..200u64 {
            assert_ne!(pa.route(key, &skewed), 0, "key {key} routed to hot spot");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1.0")]
    fn bounded_affinity_rejects_sub_unit_factor() {
        let _ = PrefixAffinity::bounded(0.5);
    }

    #[test]
    fn prefix_affinity_is_sticky_per_key() {
        let snaps = snapshots(&[(0, 0); 8]);
        let mut pa = PrefixAffinity::default();
        for key in 0..200u64 {
            let first = pa.route(key, &snaps);
            for _ in 0..3 {
                assert_eq!(pa.route(key, &snaps), first);
            }
        }
    }

    #[test]
    fn prefix_affinity_spreads_keys_roughly_evenly() {
        let snaps = snapshots(&[(0, 0); 4]);
        let mut pa = PrefixAffinity::default();
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[pa.route(mix(key), &snaps)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "replica share {c} of 4000");
        }
    }

    #[test]
    fn prefix_affinity_resize_moves_only_remapped_keys() {
        let four = snapshots(&[(0, 0); 4]);
        let five = snapshots(&[(0, 0); 5]);
        let mut pa = PrefixAffinity::default();
        let moved = (0..2000u64)
            .filter(|&k| {
                let a = pa.route(k, &four);
                let b = pa.route(k, &five);
                a != b && b != 4
            })
            .count();
        // Rendezvous hashing: keys either stay or move to the new replica.
        assert_eq!(moved, 0, "{moved} keys moved between surviving replicas");
    }
}
