//! Routing policies: which replica serves the next request.
//!
//! The dispatcher consults the [`Router`] at *placement* time — when a
//! request leaves the admission queue for a replica's bounded queue — with a
//! live [`ReplicaSnapshot`] of every replica. Policies therefore see
//! backpressure as it happens: a router that returns a replica whose queue
//! is full simply leaves the request at the head of the admission queue
//! until the situation changes (the dispatcher re-asks after every
//! simulation event).

use std::fmt;

/// Point-in-time view of one replica, handed to [`Router::route`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSnapshot {
    /// Replica index in `0..replicas`.
    pub index: usize,
    /// Requests waiting in the replica's admission queue.
    pub queued: usize,
    /// Sequences currently in the replica's running batch.
    pub running: usize,
    /// KV blocks referenced or cached on the replica.
    pub kv_blocks_in_use: usize,
    /// The replica's total KV capacity in blocks.
    pub capacity_blocks: usize,
    /// The replica's local clock, seconds.
    pub clock_s: f64,
    /// Requests routed to this replica so far.
    pub assigned: usize,
    /// Whether the replica accepts new work. `false` for crashed, drained,
    /// or otherwise excluded replicas; the fault-free dispatcher always
    /// passes `true`.
    pub alive: bool,
}

impl ReplicaSnapshot {
    /// Queued plus running work — the scalar load most policies compare.
    pub fn load(&self) -> usize {
        self.queued + self.running
    }
}

/// Picks the routable subset: the alive replicas, or — when none are (the
/// dispatcher is asking with nowhere to go) — every replica, so a policy
/// stays a total function and the dispatcher's backpressure/stall handling
/// deals with the consequences.
fn pool(replicas: &[ReplicaSnapshot]) -> Vec<&ReplicaSnapshot> {
    let alive: Vec<&ReplicaSnapshot> = replicas.iter().filter(|r| r.alive).collect();
    if alive.is_empty() {
        replicas.iter().collect()
    } else {
        alive
    }
}

/// A routing policy. Implementations must return an index `< replicas.len()`
/// and should be deterministic: the cluster simulator's reports are
/// reproducible only if its router is.
///
/// # The retry-insensitive contract
///
/// All four built-in routers ([`RoundRobin`], [`LeastLoaded`], and both
/// [`PrefixAffinity`] forms) are **pure functions of their arguments**: the
/// same `(prefix_key, replicas)` pair always yields the same choice, and a
/// consultation mutates nothing. The dispatcher may therefore consult them
/// any number of times — per backpressure retry, per failover, per hedge —
/// without perturbing later decisions, which is what lets chaos re-routing
/// reuse the ordinary routing path and is the contract the macro-stepped
/// backpressure phases of ROADMAP item 3 build on. The property is enforced
/// by proptests in `tests/chaos_differential.rs`.
///
/// Custom implementations *may* be stateful (the receiver is `&mut self`),
/// but then observe one extra call per backpressure retry and forfeit the
/// guarantees above; the simulator stays correct but conservative around
/// them.
///
/// Routers should prefer replicas with [`ReplicaSnapshot::alive`] set;
/// when no alive replica exists they must still return *some* index (the
/// dispatcher treats a routed-to-down replica as backpressure).
pub trait Router {
    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// Chooses the replica for a request with `prefix_key`.
    ///
    /// Called once per placement attempt; if the chosen replica's queue is
    /// full the dispatcher retries after the next simulation event, so
    /// stateful policies observe one extra call per retry.
    fn route(&mut self, prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize;

    /// Whether this policy honors the retry-insensitive contract above: a
    /// pure function of `(prefix_key, replicas)` whose consultations mutate
    /// nothing, so the dispatcher may skip consultations it can prove would
    /// fail identically. Declaring `true` lets backpressured phases
    /// macro-step to the next timed event instead of single-stepping;
    /// declaring it falsely yields wrong (non-single-step-equivalent)
    /// schedules. Defaults to `false`, which is always safe — the
    /// dispatcher stays conservative and consults after every event.
    fn retry_insensitive(&self) -> bool {
        false
    }
}

impl fmt::Debug for dyn Router + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Router({})", self.name())
    }
}

/// Cycles through replicas in order, ignoring both load and prefix
/// identity. The classic default of dispatch layers — and the policy that
/// destroys solver-created prefix locality, since consecutive rows of a
/// shared-prefix group land on different replicas.
///
/// Stateless: the cycle position is recovered from the snapshots (total
/// placements so far, mod the routable pool), so the decision is a pure
/// function of the fleet state — see the trait-level contract. Under
/// backpressure this differs from a counter-per-consultation round-robin
/// (retries no longer advance the cycle), which only makes the policy
/// *more* round-robin: the cycle advances exactly once per placed request.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
        let pool = pool(replicas);
        if pool.is_empty() {
            return 0;
        }
        let placed: usize = pool.iter().map(|r| r.assigned).sum();
        pool[placed % pool.len()].index
    }

    fn retry_insensitive(&self) -> bool {
        true
    }
}

/// Sends each request to the replica with the least outstanding work
/// (queued + running), breaking ties toward lower KV pressure, then lower
/// index. Balances load tightly but is as prefix-blind as round-robin.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
        pool(replicas)
            .iter()
            .min_by_key(|r| (r.load(), r.kv_blocks_in_use, r.index))
            .map_or(0, |r| r.index)
    }

    fn retry_insensitive(&self) -> bool {
        true
    }
}

/// Consistent routing on shared-prefix identity via rendezvous (highest
/// random weight) hashing: every request with the same `prefix_key` maps to
/// the same replica, so a shared-prefix group's KV blocks are computed once
/// cluster-wide instead of once per replica. Adding or removing a replica
/// remaps only the groups whose winner changed — the standard consistent-
/// hashing property, which keeps caches warm across resizes.
///
/// The pure form ([`PrefixAffinity::default`]) always takes the top-ranked
/// replica: maximal locality, but a workload with few large prefix groups
/// can pile onto one replica and serialize the job. The bounded form
/// ([`PrefixAffinity::bounded`]) applies consistent hashing with bounded
/// loads: replicas are tried in rendezvous rank order and the first whose
/// outstanding work is below `factor ×` the cluster mean wins, so a group
/// spills to its *second*-ranked replica only while its first is genuinely
/// overloaded — trading a bounded amount of prefix recomputation for
/// parallelism.
#[derive(Debug, Clone, Default)]
pub struct PrefixAffinity {
    max_load_factor: Option<f64>,
}

impl PrefixAffinity {
    /// Bounded-load affinity: spill down the rendezvous ranking whenever the
    /// candidate's queued+running work reaches `factor` times the cluster
    /// mean (`factor` ≥ 1; 1.25 is the classic choice).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` or is not finite.
    pub fn bounded(factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "load factor must be finite and at least 1.0"
        );
        PrefixAffinity {
            max_load_factor: Some(factor),
        }
    }
}

/// SplitMix64 finalizer — mixes a (key, replica) pair into a rank.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Router for PrefixAffinity {
    fn name(&self) -> &'static str {
        match self.max_load_factor {
            None => "prefix-affinity",
            Some(_) => "prefix-affinity-bounded",
        }
    }

    fn route(&mut self, prefix_key: u64, replicas: &[ReplicaSnapshot]) -> usize {
        let pool = pool(replicas);
        if pool.is_empty() {
            return 0;
        }
        // Ranking only the routable pool is what makes failover
        // prefix-affinity-aware: with a group's top-ranked replica down,
        // every request of the group lands on its *second*-ranked replica —
        // together, preserving locality — and returns home on rejoin.
        let mut ranked: Vec<(u64, usize, usize)> = pool
            .iter()
            .map(|r| (mix(prefix_key ^ mix(r.index as u64)), r.index, r.load()))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        let Some(factor) = self.max_load_factor else {
            return ranked[0].1;
        };
        // Consistent hashing with bounded loads: capacity is `factor` times
        // the mean outstanding work counting the incoming request, so at
        // least one replica is always below it.
        let total: usize = pool.iter().map(|r| r.load()).sum();
        let capacity = (factor * (total + 1) as f64 / pool.len() as f64).ceil();
        ranked
            .iter()
            .find(|&&(_, _, load)| (load as f64) < capacity)
            .unwrap_or(&ranked[0])
            .1
    }

    fn retry_insensitive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshots(loads: &[(usize, usize)]) -> Vec<ReplicaSnapshot> {
        loads
            .iter()
            .enumerate()
            .map(|(index, &(queued, running))| ReplicaSnapshot {
                index,
                queued,
                running,
                kv_blocks_in_use: 0,
                capacity_blocks: 1000,
                clock_s: 0.0,
                assigned: 0,
                alive: true,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_with_placements() {
        // The cycle position is the number of placed requests, so the
        // policy walks the fleet as `assigned` counts grow — and repeating
        // the consultation on an unchanged snapshot repeats the choice.
        let mut snaps = snapshots(&[(0, 0), (0, 0), (0, 0)]);
        let mut rr = RoundRobin;
        let mut picks = Vec::new();
        for k in 0..6 {
            let choice = rr.route(k, &snaps);
            assert_eq!(choice, rr.route(k, &snaps), "retry changed the choice");
            picks.push(choice);
            snaps[choice].assigned += 1;
        }
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_dead_replicas() {
        let mut snaps = snapshots(&[(0, 0), (0, 0), (0, 0)]);
        snaps[1].alive = false;
        let mut rr = RoundRobin;
        let mut picks = Vec::new();
        for k in 0..4 {
            let choice = rr.route(k, &snaps);
            picks.push(choice);
            snaps[choice].assigned += 1;
        }
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn routers_stay_total_with_no_replica_alive() {
        let mut snaps = snapshots(&[(0, 0), (0, 0)]);
        for s in &mut snaps {
            s.alive = false;
        }
        assert!(RoundRobin.route(7, &snaps) < snaps.len());
        assert!(LeastLoaded.route(7, &snaps) < snaps.len());
        assert!(PrefixAffinity::default().route(7, &snaps) < snaps.len());
        assert!(PrefixAffinity::bounded(1.25).route(7, &snaps) < snaps.len());
    }

    #[test]
    fn least_loaded_ignores_dead_replicas() {
        let mut snaps = snapshots(&[(0, 0), (3, 2), (5, 1)]);
        snaps[0].alive = false;
        assert_eq!(LeastLoaded.route(0, &snaps), 1);
    }

    #[test]
    fn prefix_affinity_fails_over_to_next_ranked_and_returns_home() {
        let alive = snapshots(&[(0, 0); 8]);
        let mut pa = PrefixAffinity::default();
        for key in 0..100u64 {
            let home = pa.route(key, &alive);
            let mut down = alive.clone();
            down[home].alive = false;
            let failover = pa.route(key, &down);
            assert_ne!(failover, home, "key {key} routed to a dead replica");
            // Stable while down, and back home once the replica rejoins.
            assert_eq!(pa.route(key, &down), failover);
            assert_eq!(pa.route(key, &alive), home);
        }
    }

    #[test]
    fn least_loaded_picks_min_and_breaks_ties_low() {
        let mut ll = LeastLoaded;
        assert_eq!(ll.route(0, &snapshots(&[(5, 1), (0, 2), (4, 0)])), 1);
        assert_eq!(ll.route(0, &snapshots(&[(1, 1), (2, 0), (0, 2)])), 0);
    }

    #[test]
    fn bounded_affinity_spills_only_under_overload() {
        let mut pa = PrefixAffinity::bounded(1.25);
        // Balanced cluster: behaves exactly like pure affinity.
        let balanced = snapshots(&[(2, 1), (2, 1), (2, 1), (2, 1)]);
        let mut pure = PrefixAffinity::default();
        for key in 0..100u64 {
            assert_eq!(pa.route(key, &balanced), pure.route(key, &balanced));
        }
        // One replica hogging nearly all work: keys ranked onto it must
        // spill to their next-ranked replica instead.
        let skewed = snapshots(&[(40, 8), (0, 0), (0, 0), (0, 0)]);
        for key in 0..200u64 {
            assert_ne!(pa.route(key, &skewed), 0, "key {key} routed to hot spot");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1.0")]
    fn bounded_affinity_rejects_sub_unit_factor() {
        let _ = PrefixAffinity::bounded(0.5);
    }

    #[test]
    fn prefix_affinity_is_sticky_per_key() {
        let snaps = snapshots(&[(0, 0); 8]);
        let mut pa = PrefixAffinity::default();
        for key in 0..200u64 {
            let first = pa.route(key, &snaps);
            for _ in 0..3 {
                assert_eq!(pa.route(key, &snaps), first);
            }
        }
    }

    #[test]
    fn prefix_affinity_spreads_keys_roughly_evenly() {
        let snaps = snapshots(&[(0, 0); 4]);
        let mut pa = PrefixAffinity::default();
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[pa.route(mix(key), &snaps)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "replica share {c} of 4000");
        }
    }

    #[test]
    fn prefix_affinity_resize_moves_only_remapped_keys() {
        let four = snapshots(&[(0, 0); 4]);
        let five = snapshots(&[(0, 0); 5]);
        let mut pa = PrefixAffinity::default();
        let moved = (0..2000u64)
            .filter(|&k| {
                let a = pa.route(k, &four);
                let b = pa.route(k, &five);
                a != b && b != 4
            })
            .count();
        // Rendezvous hashing: keys either stay or move to the new replica.
        assert_eq!(moved, 0, "{moved} keys moved between surviving replicas");
    }
}
