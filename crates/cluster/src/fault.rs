//! Deterministic fault injection and failure-handling policy.
//!
//! A [`FaultPlan`] is a seeded, sim-time schedule of replica faults —
//! crashes (with optional warm restart), drains (graceful hand-off and cold
//! rejoin), straggler slowdown windows — plus a per-attempt transient error
//! rate. A [`RetryPolicy`] bounds how the cluster reacts: retry budgets with
//! exponential backoff and deterministic jitter, per-request deadlines, and
//! optional hedging. Both are plain data consumed by
//! [`ClusterSim::run_with_faults`](crate::ClusterSim::run_with_faults);
//! nothing here touches a wall clock or an OS random source, so a chaos run
//! is reproducible byte for byte from `(plan, policy, workload)` alone.
//!
//! [`FaultStats`] is the failure-metrics block the chaos run adds to its
//! [`ClusterReport`](crate::ClusterReport).

use crate::sim::ClusterError;
use llmqo_serve::fault_unit;

/// One scheduled fault in a [`FaultPlan`]. All times are sim-time seconds on
/// the shared cluster timeline; faults take effect at the targeted replica's
/// next step boundary at or after the scheduled instant (the same place
/// arrivals are delivered).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Replica `replica` fails abruptly at `at_s`: every request queued or
    /// running there fails (and re-enters the retry machinery), its prefix
    /// cache is lost, and — if `restart_s` is `Some` — a cold replacement
    /// rejoins at `max(at_s, restart_s)`.
    Crash {
        /// Target replica index.
        replica: usize,
        /// Crash instant, seconds.
        at_s: f64,
        /// Cold-restart instant, or `None` for a permanent failure.
        restart_s: Option<f64>,
    },
    /// Replica `replica` runs `factor`× slower (straggler) while the sim
    /// clock is in `[from_s, until_s)`.
    Slowdown {
        /// Target replica index.
        replica: usize,
        /// Window start, seconds (inclusive).
        from_s: f64,
        /// Window end, seconds (exclusive).
        until_s: f64,
        /// Step-time multiplier; must be ≥ 1.
        factor: f64,
    },
    /// Replica `replica` drains starting at `at_s`: it takes no new work,
    /// finishes what it holds, then leaves; a cold replacement rejoins at
    /// `max(rejoin_s, drain-complete instant)`. This is the graceful half of
    /// elastic resize.
    Drain {
        /// Target replica index.
        replica: usize,
        /// Drain start instant, seconds.
        at_s: f64,
        /// Earliest cold-rejoin instant, seconds.
        rejoin_s: f64,
    },
}

impl FaultEvent {
    /// The instant the event first takes effect.
    pub fn at_s(&self) -> f64 {
        match *self {
            FaultEvent::Crash { at_s, .. } | FaultEvent::Drain { at_s, .. } => at_s,
            FaultEvent::Slowdown { from_s, .. } => from_s,
        }
    }

    fn validate(&self, replicas: usize) -> Result<(), ClusterError> {
        let bad = |reason| Err(ClusterError::InvalidFaultPlan { reason });
        let finite_time = |t: f64| t.is_finite() && t >= 0.0;
        match *self {
            FaultEvent::Crash {
                replica,
                at_s,
                restart_s,
            } => {
                if replica >= replicas {
                    return bad("crash targets a replica outside the fleet");
                }
                if !finite_time(at_s) {
                    return bad("crash time must be finite and non-negative");
                }
                if let Some(r) = restart_s {
                    if !finite_time(r) {
                        return bad("restart time must be finite and non-negative");
                    }
                }
            }
            FaultEvent::Slowdown {
                replica,
                from_s,
                until_s,
                factor,
            } => {
                if replica >= replicas {
                    return bad("slowdown targets a replica outside the fleet");
                }
                if !finite_time(from_s) || !finite_time(until_s) || until_s <= from_s {
                    return bad("slowdown window must be finite, non-negative, and non-empty");
                }
                if !factor.is_finite() || factor < 1.0 {
                    return bad("slowdown factor must be finite and at least 1");
                }
            }
            FaultEvent::Drain {
                replica,
                at_s,
                rejoin_s,
            } => {
                if replica >= replicas {
                    return bad("drain targets a replica outside the fleet");
                }
                if !finite_time(at_s) || !finite_time(rejoin_s) {
                    return bad("drain times must be finite and non-negative");
                }
            }
        }
        Ok(())
    }
}

/// A seeded, deterministic fault schedule for
/// [`ClusterSim::run_with_faults`](crate::ClusterSim::run_with_faults).
///
/// The default plan is empty and injects nothing: running with it (and a
/// disabled [`RetryPolicy`]) is byte-identical to
/// [`ClusterSim::run`](crate::ClusterSim::run).
///
/// # Examples
///
/// ```
/// use llmqo_cluster::FaultPlan;
///
/// let plan = FaultPlan::seeded(7)
///     .crash_restart(0, 0.5, 1.5)
///     .slowdown(2, 0.2, 0.9, 4.0)
///     .transient_errors_ppm(100_000); // 10% of attempts fail
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::default().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled faults, in any order.
    pub events: Vec<FaultEvent>,
    /// Probability that any single serving attempt fails with a transient
    /// error, in parts per million (`100_000` = 10%). Rolled
    /// deterministically per attempt from `seed`.
    pub transient_error_ppm: u32,
    /// Seed for every random decision the plan induces (transient rolls,
    /// backoff jitter).
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a permanent crash of `replica` at `at_s`.
    #[must_use]
    pub fn crash(mut self, replica: usize, at_s: f64) -> Self {
        self.events.push(FaultEvent::Crash {
            replica,
            at_s,
            restart_s: None,
        });
        self
    }

    /// Adds a crash of `replica` at `at_s` with a cold restart at
    /// `max(at_s, restart_s)`.
    #[must_use]
    pub fn crash_restart(mut self, replica: usize, at_s: f64, restart_s: f64) -> Self {
        self.events.push(FaultEvent::Crash {
            replica,
            at_s,
            restart_s: Some(restart_s),
        });
        self
    }

    /// Adds a straggler window: `replica` runs `factor`× slower during
    /// `[from_s, until_s)`.
    #[must_use]
    pub fn slowdown(mut self, replica: usize, from_s: f64, until_s: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::Slowdown {
            replica,
            from_s,
            until_s,
            factor,
        });
        self
    }

    /// Adds a graceful drain of `replica` at `at_s` with a cold rejoin no
    /// earlier than `rejoin_s`.
    #[must_use]
    pub fn drain(mut self, replica: usize, at_s: f64, rejoin_s: f64) -> Self {
        self.events.push(FaultEvent::Drain {
            replica,
            at_s,
            rejoin_s,
        });
        self
    }

    /// Sets the per-attempt transient error probability in parts per
    /// million.
    #[must_use]
    pub fn transient_errors_ppm(mut self, ppm: u32) -> Self {
        self.transient_error_ppm = ppm;
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.transient_error_ppm == 0
    }

    /// Whether serving attempt `(request_id, submission)` fails with a
    /// transient error under this plan. Pure and deterministic.
    pub(crate) fn transient_fails(&self, request_id: u64, submission: u64) -> bool {
        self.transient_error_ppm > 0
            && fault_unit(self.seed, request_id, submission)
                < f64::from(self.transient_error_ppm) / 1e6
    }

    /// The straggler multiplier in effect for `replica` at instant `t`:
    /// the product of every active slowdown window. Pure function of time.
    pub(crate) fn slowdown_at(&self, replica: usize, t: f64) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if let FaultEvent::Slowdown {
                replica: r,
                from_s,
                until_s,
                factor: f,
            } = *e
            {
                if r == replica && from_s <= t && t < until_s {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// The next instant strictly after `t` at which `replica`'s straggler
    /// multiplier changes, if any — a macro-step horizon bound so both
    /// stepping modes evaluate every slowdown window identically.
    pub(crate) fn next_slowdown_boundary(&self, replica: usize, t: f64) -> Option<f64> {
        let mut next: Option<f64> = None;
        for e in &self.events {
            if let FaultEvent::Slowdown {
                replica: r,
                from_s,
                until_s,
                ..
            } = *e
            {
                if r != replica {
                    continue;
                }
                for b in [from_s, until_s] {
                    if b > t && next.is_none_or(|n| b < n) {
                        next = Some(b);
                    }
                }
            }
        }
        next
    }

    pub(crate) fn validate(&self, replicas: usize) -> Result<(), ClusterError> {
        for e in &self.events {
            e.validate(replicas)?;
        }
        if self.transient_error_ppm > 1_000_000 {
            return Err(ClusterError::InvalidFaultPlan {
                reason: "transient error rate exceeds 1_000_000 ppm (100%)",
            });
        }
        Ok(())
    }
}

/// How the cluster reacts to failed or slow serving attempts.
///
/// The default policy is [`disabled`](RetryPolicy::disabled): one attempt
/// per request, no deadline, no hedging — requests fail permanently on
/// their first error, and running with it plus an empty [`FaultPlan`] is
/// byte-identical to the fault-free path.
///
/// # Examples
///
/// ```
/// use llmqo_cluster::RetryPolicy;
///
/// let policy = RetryPolicy::retries(3).with_hedging(0.5).with_deadline(30.0);
/// assert_eq!(policy.max_attempts, 3);
/// assert!(RetryPolicy::disabled().is_disabled());
/// assert!(!policy.is_disabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total serving attempts allowed per request, **including** the first
    /// (`1` = no retries). Hedge attempts count toward the budget.
    pub max_attempts: u32,
    /// Backoff before retry attempt 2, seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff per further attempt.
    pub backoff_multiplier: f64,
    /// Upper bound on any single backoff delay, seconds.
    pub backoff_cap_s: f64,
    /// Deterministic jitter amplitude: each delay is scaled by a factor in
    /// `[1 − jitter_frac, 1 + jitter_frac)` drawn from the plan seed.
    pub jitter_frac: f64,
    /// Give up on a request this long after its first arrival, seconds.
    /// Attempts already running are not cancelled; a completion past the
    /// deadline is delivered but counted as a deadline miss (and excluded
    /// from goodput).
    pub deadline_s: Option<f64>,
    /// Issue one duplicate (hedge) attempt on a *different* replica this
    /// long after a request's first placement if it has not completed,
    /// seconds. The first completion wins; the loser's work is counted as
    /// wasted.
    pub hedge_after_s: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

impl RetryPolicy {
    /// No retries, no deadline, no hedging: every request gets exactly one
    /// attempt.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_s: 0.0,
            backoff_multiplier: 1.0,
            backoff_cap_s: 0.0,
            jitter_frac: 0.0,
            deadline_s: None,
            hedge_after_s: None,
        }
    }

    /// Exponential backoff with `max_attempts` total attempts: 50 ms base,
    /// doubling, capped at 2 s, with ±50% deterministic jitter.
    pub fn retries(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_base_s: 0.05,
            backoff_multiplier: 2.0,
            backoff_cap_s: 2.0,
            jitter_frac: 0.5,
            deadline_s: None,
            hedge_after_s: None,
        }
    }

    /// Adds hedging: a still-unfinished request gets one duplicate attempt
    /// on another replica `after_s` seconds after first placement.
    #[must_use]
    pub fn with_hedging(mut self, after_s: f64) -> Self {
        self.hedge_after_s = Some(after_s);
        self
    }

    /// Adds a per-request deadline measured from first arrival.
    #[must_use]
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Whether the policy changes nothing relative to single-attempt
    /// serving.
    pub fn is_disabled(&self) -> bool {
        self.max_attempts <= 1 && self.deadline_s.is_none() && self.hedge_after_s.is_none()
    }

    /// The jittered backoff delay before attempt `attempt + 1` of request
    /// `id` (i.e. after `attempt` attempts have failed; the first retry
    /// passes `attempt = 1`). Pure and deterministic.
    pub(crate) fn backoff_s(&self, seed: u64, id: u64, attempt: u32) -> f64 {
        let exp = i32::try_from(attempt.saturating_sub(1)).unwrap_or(i32::MAX);
        let nominal =
            (self.backoff_base_s * self.backoff_multiplier.powi(exp)).min(self.backoff_cap_s);
        // Distinct draw stream from transient rolls: attempt numbers are
        // offset far beyond any realistic submission counter.
        let u = fault_unit(seed, id, u64::from(attempt) | (1 << 63));
        (nominal * (1.0 + self.jitter_frac * (2.0 * u - 1.0))).max(0.0)
    }

    pub(crate) fn validate(&self) -> Result<(), ClusterError> {
        let bad = |reason| Err(ClusterError::InvalidFaultPlan { reason });
        if self.max_attempts == 0 {
            return bad("retry policy must allow at least one attempt");
        }
        if !self.backoff_base_s.is_finite() || self.backoff_base_s < 0.0 {
            return bad("backoff base must be finite and non-negative");
        }
        if !self.backoff_multiplier.is_finite() || self.backoff_multiplier < 0.0 {
            return bad("backoff multiplier must be finite and non-negative");
        }
        if !self.backoff_cap_s.is_finite() || self.backoff_cap_s < 0.0 {
            return bad("backoff cap must be finite and non-negative");
        }
        if !self.jitter_frac.is_finite() || !(0.0..=1.0).contains(&self.jitter_frac) {
            return bad("jitter fraction must be in [0, 1]");
        }
        if let Some(d) = self.deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return bad("deadline must be finite and positive");
            }
        }
        if let Some(h) = self.hedge_after_s {
            if !h.is_finite() || h <= 0.0 {
                return bad("hedge delay must be finite and positive");
            }
        }
        Ok(())
    }
}

/// Failure metrics of a chaos run, attached to
/// [`ClusterReport::faults`](crate::ClusterReport). All zeros (the default)
/// on fault-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Logical requests offered to the cluster. Zero means the failure
    /// machinery was not engaged at all (plain
    /// [`ClusterSim::run`](crate::ClusterSim::run) or an inert plan +
    /// policy).
    pub offered: usize,
    /// Requests that completed successfully (including late successes).
    pub succeeded: usize,
    /// Requests that permanently failed (budget exhausted, deadline passed,
    /// or no replica left to serve them). `succeeded + failed == offered`
    /// always — no request is ever silently lost. Under a gating
    /// [`AdmissionPolicy`](crate::AdmissionPolicy) the invariant extends to
    /// `succeeded + failed + shed == offered`, with `shed` ledgered in
    /// [`ClusterReport::shed`](crate::ClusterReport).
    pub failed: usize,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Attempts that failed with an injected transient error.
    pub transient_errors: u64,
    /// Attempts killed by a replica crash.
    pub crash_failures: u64,
    /// Replica crashes that fired.
    pub crashes: u64,
    /// Replica drains that started.
    pub drains: u64,
    /// Cold rejoins (after crash restart or drain).
    pub restarts: u64,
    /// Hedge attempts placed.
    pub hedges_issued: u64,
    /// Requests whose hedge attempt finished first.
    pub hedges_won: u64,
    /// Retry or hedge attempts placed on a different replica than the
    /// previous attempt (prefix-affinity failover included).
    pub failovers: u64,
    /// Requests that missed their deadline (failed there, or completed
    /// late).
    pub deadline_misses: u64,
    /// Requests that completed after their deadline (delivered, but not
    /// goodput).
    pub late_successes: u64,
    /// Completions that arrived after their request was already done
    /// (hedge losers racing to the finish).
    pub wasted_completions: u64,
    /// Completed replica-down windows.
    pub unavailability_windows: u64,
    /// Total replica-seconds of unavailability (open windows clipped at the
    /// makespan).
    pub unavailable_s: f64,
}

impl FaultStats {
    /// Whether the failure machinery ran (fault plan or retry policy was
    /// non-inert).
    pub fn engaged(&self) -> bool {
        self.offered > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.transient_fails(0, 0));
        assert_eq!(plan.slowdown_at(0, 1.0), 1.0);
        assert_eq!(plan.next_slowdown_boundary(0, 0.0), None);
        assert!(plan.validate(1).is_ok());
        assert!(RetryPolicy::default().is_disabled());
        assert!(RetryPolicy::default().validate().is_ok());
    }

    #[test]
    fn transient_rate_is_roughly_honoured() {
        let plan = FaultPlan::seeded(11).transient_errors_ppm(100_000);
        let n = 10_000u64;
        let fails = (0..n).filter(|&i| plan.transient_fails(i, 0)).count();
        let frac = fails as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "observed rate {frac}");
        // Deterministic: the same attempt always rolls the same way.
        for i in 0..100 {
            assert_eq!(plan.transient_fails(i, 3), plan.transient_fails(i, 3));
        }
    }

    #[test]
    fn slowdown_windows_compose_and_bound() {
        let plan = FaultPlan::seeded(0)
            .slowdown(1, 1.0, 3.0, 2.0)
            .slowdown(1, 2.0, 4.0, 3.0)
            .slowdown(0, 0.0, 10.0, 5.0);
        assert_eq!(plan.slowdown_at(1, 0.5), 1.0);
        assert_eq!(plan.slowdown_at(1, 1.5), 2.0);
        assert_eq!(plan.slowdown_at(1, 2.5), 6.0);
        assert_eq!(plan.slowdown_at(1, 3.5), 3.0);
        assert_eq!(plan.slowdown_at(1, 4.0), 1.0);
        assert_eq!(plan.next_slowdown_boundary(1, 0.0), Some(1.0));
        assert_eq!(plan.next_slowdown_boundary(1, 1.0), Some(2.0));
        assert_eq!(plan.next_slowdown_boundary(1, 3.0), Some(4.0));
        assert_eq!(plan.next_slowdown_boundary(1, 4.0), None);
        assert_eq!(plan.slowdown_at(2, 5.0), 1.0);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(FaultPlan::seeded(0).crash(3, 1.0).validate(2).is_err());
        assert!(FaultPlan::seeded(0).crash(0, -1.0).validate(2).is_err());
        assert!(FaultPlan::seeded(0)
            .slowdown(0, 2.0, 1.0, 2.0)
            .validate(2)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .slowdown(0, 0.0, 1.0, 0.5)
            .validate(2)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .drain(0, 0.0, f64::NAN)
            .validate(2)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .transient_errors_ppm(2_000_000)
            .validate(2)
            .is_err());

        let mut p = RetryPolicy::retries(0);
        assert!(p.validate().is_err());
        p = RetryPolicy::retries(3);
        p.jitter_frac = 2.0;
        assert!(p.validate().is_err());
        assert!(RetryPolicy::retries(3)
            .with_deadline(-1.0)
            .validate()
            .is_err());
        assert!(RetryPolicy::retries(3)
            .with_hedging(0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let mut p = RetryPolicy::retries(8);
        p.jitter_frac = 0.0;
        assert_eq!(p.backoff_s(0, 1, 1), 0.05);
        assert_eq!(p.backoff_s(0, 1, 2), 0.10);
        assert_eq!(p.backoff_s(0, 1, 3), 0.20);
        assert_eq!(p.backoff_s(0, 1, 7), 2.0); // capped
        let j = RetryPolicy::retries(8);
        let d = j.backoff_s(42, 7, 2);
        assert_eq!(d, j.backoff_s(42, 7, 2));
        assert!((0.05..=0.15).contains(&d), "jittered delay {d}");
        assert_ne!(j.backoff_s(42, 7, 2), j.backoff_s(42, 8, 2));
    }
}
