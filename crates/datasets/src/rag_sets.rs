//! SQuAD and FEVER RAG tables (paper: 22 665 × 5 @ 1 047 tokens and
//! 19 929 × 5 @ 1 302 tokens; T5 queries).
//!
//! Construction follows the paper's pipeline (§6.2 "RAG"): contexts are
//! embedded into a vector index, and for every question the top-k contexts
//! are fetched and placed in the row as fields `context1..k` in similarity
//! order. Questions cluster around topics with Zipf popularity, so popular
//! contexts are retrieved by many questions — but in *different field
//! positions* per row, which is precisely the per-row field reordering
//! opportunity GGR exploits (the paper's 56–59% hit-rate improvements).
//!
//! Topicality is modeled with per-topic vocabularies so the feature-hash
//! embedder retrieves same-topic contexts reliably.
//!
//! Note: the paper's Table 1 lists five fields for SQuAD while its Appendix
//! B lists `question, context1..5` (six); we follow Table 1 (question + 4
//! contexts) and record the discrepancy here.

use crate::gen::ZipfSampler;
use llmqo_core::FunctionalDeps;
use llmqo_rag::{retrieve_contexts, Embedder};
use llmqo_relational::{LlmQuery, Schema, Table};
use llmqo_tokenizer::Tokenizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Shape parameters for one RAG dataset.
struct RagShape {
    seed: u64,
    questions_per_topic: usize,
    contexts_per_topic: usize,
    k: usize,
    context_tokens: usize,
    question_tokens: usize,
}

/// Builds topical text: `frac_topic` of words from the topic vocabulary,
/// the rest global filler, until `target_tokens` is reached.
struct TopicText {
    tokenizer: Tokenizer,
    cache: HashMap<String, usize>,
}

impl TopicText {
    fn new() -> Self {
        TopicText {
            tokenizer: Tokenizer::new(),
            cache: HashMap::new(),
        }
    }

    fn word_tokens(&mut self, word: &str) -> usize {
        if let Some(&n) = self.cache.get(word) {
            return n;
        }
        let n = self.tokenizer.count(&format!(" {word}"));
        self.cache.insert(word.to_owned(), n);
        n
    }

    fn text(
        &mut self,
        rng: &mut StdRng,
        topic_vocab: &[String],
        frac_topic: f64,
        target_tokens: usize,
    ) -> String {
        let mut out = String::new();
        let mut tokens = 0usize;
        while tokens < target_tokens {
            let word = if rng.random_bool(frac_topic) {
                topic_vocab[rng.random_range(0..topic_vocab.len())].clone()
            } else {
                format!("w{}", rng.random_range(0..400u32))
            };
            if !out.is_empty() {
                out.push(' ');
            }
            tokens += self.word_tokens(&word);
            out.push_str(&word);
        }
        out
    }
}

fn generate_rag(nrows: usize, shape: &RagShape, question_field: &str) -> Table {
    let mut rng = StdRng::seed_from_u64(shape.seed);
    let mut tt = TopicText::new();
    let ntopics = (nrows / shape.questions_per_topic).max(1);

    // Per-topic vocabularies of distinctive words.
    let vocabs: Vec<Vec<String>> = (0..ntopics)
        .map(|t| (0..12).map(|w| format!("t{t}x{w}")).collect())
        .collect();

    // Corpus: `contexts_per_topic` contexts per topic.
    let mut corpus = Vec::with_capacity(ntopics * shape.contexts_per_topic);
    for vocab in &vocabs {
        for _ in 0..shape.contexts_per_topic {
            corpus.push(tt.text(&mut rng, vocab, 0.75, shape.context_tokens));
        }
    }

    // Questions: Zipf-popular topics.
    let zipf = ZipfSampler::new(ntopics, 1.05);
    let questions: Vec<String> = (0..nrows)
        .map(|_| {
            let t = zipf.sample(&mut rng);
            tt.text(&mut rng, &vocabs[t], 0.75, shape.question_tokens)
        })
        .collect();

    // Retrieval through the vector index (the FAISS stand-in).
    let embedder = Embedder::new(96);
    let retrieved = retrieve_contexts(&embedder, &corpus, &questions, shape.k);

    let mut fields = vec![question_field.to_string()];
    for i in 1..=shape.k {
        fields.push(format!("context{i}"));
    }
    let field_refs: Vec<&str> = fields.iter().map(String::as_str).collect();
    let mut table = Table::new(Schema::of_strings(&field_refs));
    for (q, ctx) in questions.iter().zip(&retrieved) {
        let mut row = vec![q.clone().into()];
        for i in 0..shape.k {
            let text = ctx.get(i).map(|&id| corpus[id].clone()).unwrap_or_default();
            row.push(text.into());
        }
        table.push_row(row).expect("rag schema arity");
    }
    table
}

/// SQuAD: question + 4 retrieved contexts, free-text answers (11 tokens).
pub(crate) fn generate_squad(nrows: usize) -> (Table, FunctionalDeps, Vec<LlmQuery>) {
    let shape = RagShape {
        seed: 0x5351_5541,
        questions_per_topic: 30,
        contexts_per_topic: 5,
        k: 4,
        context_tokens: 228,
        question_tokens: 22,
    };
    let table = generate_rag(nrows, &shape, "question");
    let fds = FunctionalDeps::empty(table.ncols());
    let fields: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let queries = vec![LlmQuery::rag(
        "squad-rag",
        "Given a question and supporting contexts, answer the provided question.",
        fields,
        Vec::new(),
        11.0,
    )
    .with_key_field("question")];
    (table, fds, queries)
}

/// FEVER: claim + 4 retrieved evidence passages, 3-way verdicts (3 tokens).
pub(crate) fn generate_fever(nrows: usize) -> (Table, FunctionalDeps, Vec<LlmQuery>) {
    let shape = RagShape {
        seed: 0x4645_5645,
        questions_per_topic: 30,
        contexts_per_topic: 5,
        k: 4,
        context_tokens: 282,
        question_tokens: 28,
    };
    let table = generate_rag(nrows, &shape, "claim");
    let fds = FunctionalDeps::empty(table.ncols());
    let mut fields: Vec<String> = Vec::new();
    // The paper's FEVER prompt names the evidence before the claim.
    for i in 1..=shape.k {
        fields.push(format!("context{i}"));
    }
    fields.insert(0, "claim".to_string());
    let queries = vec![LlmQuery::rag(
        "fever-rag",
        "You are given 4 pieces of evidence as {evidence1}, {evidence2}, {evidence3}, and \
         {evidence4}. You are also given a claim as {claim}. Answer SUPPORTS if the pieces \
         of evidence support the given {claim}, REFUTES if the evidence refutes the given \
         {claim}, or NOT ENOUGH INFO if there is not enough information to answer. Your \
         answer should just be SUPPORTS, REFUTES, or NOT ENOUGH INFO and nothing else.",
        fields,
        vec![
            "SUPPORTS".to_string(),
            "REFUTES".to_string(),
            "NOT ENOUGH INFO".to_string(),
        ],
        3.0,
    )
    .with_key_field("claim")];
    (table, fds, queries)
}
