//! RateBeer reviews (paper: 28 479 rows × 8 fields, 156 input tokens,
//! outputs {2, 38} for T1–T2).
//!
//! Structure: short rows — per-beer metadata (id, name, style) plus
//! small-cardinality review scores, a reviewer name from a large pool, and a
//! unique timestamp. Rows arrive substantially grouped by beer (the source
//! data orders reviews by item), which with the instruction prefix gives the
//! paper's ~50% original hit rate. Functional dependency:
//! {beer/beerId, beer/name} (Appendix B).

use crate::gen::{clustered_assignment, TextGen, ZipfSampler};
use llmqo_core::FunctionalDeps;
use llmqo_relational::{LlmQuery, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub(crate) const FIELDS: [&str; 8] = [
    "beer/beerId",
    "beer/name",
    "beer/style",
    "review/appearance",
    "review/overall",
    "review/palate",
    "review/profileName",
    "review/time",
];

const STYLES: [&str; 18] = [
    "India Pale Ale",
    "Imperial Stout",
    "Pilsner",
    "Hefeweizen",
    "Saison",
    "Porter",
    "Amber Lager",
    "Belgian Tripel",
    "Brown Ale",
    "Barleywine",
    "Witbier",
    "Pale Lager",
    "Golden Ale",
    "Dunkel",
    "Schwarzbier",
    "Bock",
    "Quadrupel",
    "Altbier",
];

pub(crate) fn generate(nrows: usize) -> (Table, FunctionalDeps, Vec<LlmQuery>) {
    let mut rng = StdRng::seed_from_u64(0x4245_4552);
    let tg = TextGen::new();
    let nbeers = (nrows / 25).max(1);
    let nreviewers = (nrows / 4).max(1);

    struct Beer {
        id: String,
        name: String,
        style: &'static str,
        /// Index into the score table around which this beer's reviews
        /// cluster (reviews of one beer broadly agree).
        quality: usize,
    }
    let beers: Vec<Beer> = (0..nbeers)
        .map(|i| Beer {
            id: format!("{}", 10_000 + i),
            name: tg.name(&mut rng, 3, Some(i)),
            style: STYLES[rng.random_range(0..STYLES.len())],
            quality: rng.random_range(1..=7usize),
        })
        .collect();
    let reviewers: Vec<String> = (0..nreviewers)
        .map(|i| tg.name(&mut rng, 1, Some(i)))
        .collect();

    // Reviews arrive grouped by beer; reviewer activity is Zipf (a few
    // power reviewers write much of the corpus) and scores concentrate
    // around 3.5–4.5, so sorted rows agree on long score prefixes.
    let assignment = clustered_assignment(&mut rng, nrows, nbeers, 0.15);
    let reviewer_zipf = ZipfSampler::new(reviewers.len(), 1.05);
    let mut table = Table::new(Schema::of_strings(&FIELDS));
    for (row, &b) in assignment.iter().enumerate() {
        let beer = &beers[b];
        const LADDER: [&str; 9] = ["1", "1.5", "2", "2.5", "3", "3.5", "4", "4.5", "5"];
        let score = |rng: &mut StdRng| {
            // Mostly the beer's consensus score, occasionally ±one step.
            let offset: i64 = *[0i64, 0, 0, 0, 1, -1]
                .get(rng.random_range(0..6usize))
                .unwrap();
            let idx = (beer.quality as i64 + offset).clamp(0, 8) as usize;
            LADDER[idx].to_string()
        };
        table
            .push_row(vec![
                beer.id.clone().into(),
                beer.name.clone().into(),
                beer.style.into(),
                score(&mut rng).into(),
                score(&mut rng).into(),
                score(&mut rng).into(),
                reviewers[reviewer_zipf.sample(&mut rng)].clone().into(),
                format!(
                    "{}",
                    1_100_000_000u64 + row as u64 * 977 + rng.random_range(0..900u64)
                )
                .into(),
            ])
            .expect("beer schema arity");
    }

    // Appendix B: beer/beerId ↔ beer/name.
    let fds =
        FunctionalDeps::from_groups(FIELDS.len(), vec![vec![0, 1]]).expect("indices in range");

    let all_fields: Vec<String> = FIELDS.iter().map(|s| s.to_string()).collect();
    let queries = vec![
        LlmQuery::filter(
            "beer-filter",
            "Based on the beer descriptions, does this beer have European origin? Answer \
             'YES' if it does or 'NO' if it doesn't.",
            all_fields.clone(),
            vec!["YES".to_string(), "NO".to_string()],
            "YES",
            2.0,
        )
        .with_key_field("beer/style"),
        LlmQuery::projection(
            "beer-projection",
            "Given the following fields, provide an high-level overview on the beer and \
             review in a 20 words paragraph.",
            all_fields,
            38.0,
        ),
    ];
    (table, fds, queries)
}
