//! Rotten Tomatoes Movies (paper: 15 000 rows × 8 fields, 276 input tokens,
//! outputs {2, 29, 16, 2} for T1–T4).
//!
//! Structure: each review row joins per-movie metadata (info, title, RT
//! link, production company, genres) with a unique review. ~10 reviews per
//! movie; in the *original* row order ~25% of adjacent rows belong to the
//! same movie (reviews arrive partially grouped), which reproduces the
//! paper's 35% original-order hit rate once the shared instruction prefix is
//! added. Functional dependencies: {movieinfo, movietitle,
//! rottentomatoeslink} (Appendix B).

use crate::gen::{clustered_assignment, TextGen};
use llmqo_core::FunctionalDeps;
use llmqo_relational::{LlmQuery, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub(crate) const FIELDS: [&str; 8] = [
    "genres",
    "movieinfo",
    "movietitle",
    "productioncompany",
    "reviewcontent",
    "reviewtype",
    "rottentomatoeslink",
    "topcritic",
];

const GENRES: [&str; 12] = [
    "Drama",
    "Comedy",
    "Action",
    "Romance",
    "Thriller",
    "Documentary",
    "Animation",
    "Horror",
    "Mystery",
    "Adventure",
    "Fantasy",
    "Musical",
];

struct Movie {
    genres: String,
    info: String,
    title: String,
    company: String,
    link: String,
}

pub(crate) fn generate(nrows: usize) -> (Table, FunctionalDeps, Vec<LlmQuery>) {
    let mut rng = StdRng::seed_from_u64(0x4d4f_5649);
    let tg = TextGen::new();
    let nmovies = (nrows / 20).max(1);

    let companies: Vec<String> = (0..40).map(|i| tg.name(&mut rng, 2, Some(i))).collect();
    let movies: Vec<Movie> = (0..nmovies)
        .map(|i| {
            let title = tg.name(&mut rng, 2, Some(i));
            let slug = title.to_lowercase().replace(' ', "_");
            let n_genres = rng.random_range(1..=2);
            let genres = (0..n_genres)
                .map(|_| GENRES[rng.random_range(0..GENRES.len())])
                .collect::<Vec<_>>()
                .join(", ");
            Movie {
                genres,
                info: tg.text(&mut rng, 95),
                title,
                company: companies[rng.random_range(0..companies.len())].clone(),
                link: format!("https://www.rottentomatoes.com/m/{slug}"),
            }
        })
        .collect();

    // Reviews arrive nearly unordered; the instruction prefix dominates the
    // original ordering's hit rate (paper: 35%).
    let assignment = clustered_assignment(&mut rng, nrows, nmovies, 0.03);
    let mut table = Table::new(Schema::of_strings(&FIELDS));
    for &m in &assignment {
        let movie = &movies[m];
        // Rotten Tomatoes critic blurbs are short.
        let review = tg.text(&mut rng, 16);
        let review_type = if rng.random_bool(0.6) {
            "Fresh"
        } else {
            "Rotten"
        };
        let top_critic = if rng.random_bool(0.3) {
            "true"
        } else {
            "false"
        };
        table
            .push_row(vec![
                movie.genres.clone().into(),
                movie.info.clone().into(),
                movie.title.clone().into(),
                movie.company.clone().into(),
                review.into(),
                review_type.into(),
                movie.link.clone().into(),
                top_critic.into(),
            ])
            .expect("movies schema arity");
    }

    // Appendix B: movieinfo ↔ movietitle ↔ rottentomatoeslink.
    let fds =
        FunctionalDeps::from_groups(FIELDS.len(), vec![vec![1, 2, 6]]).expect("indices in range");

    let all_fields: Vec<String> = FIELDS.iter().map(|s| s.to_string()).collect();
    let yes_no = vec!["Yes".to_string(), "No".to_string()];
    let sentiment = vec!["POSITIVE".to_string(), "NEGATIVE".to_string()];
    let queries = vec![
        LlmQuery::filter(
            "movies-filter",
            "Given the following fields, answer in one word, 'Yes' or 'No', whether the \
             movie would be suitable for kids. Answer with ONLY 'Yes' or 'No'.",
            all_fields.clone(),
            yes_no,
            "Yes",
            2.0,
        )
        .with_key_field("movieinfo"),
        LlmQuery::projection(
            "movies-projection",
            "Given information including movie descriptions and critic reviews, summarize \
             the good qualities in this movie that led to a favorable rating.",
            all_fields.clone(),
            29.0,
        ),
        LlmQuery::filter(
            "movies-multi-1",
            "Given the following review, answer whether the sentiment associated is \
             'POSITIVE' or 'NEGATIVE'. Answer in all caps with ONLY 'POSITIVE' or 'NEGATIVE':",
            vec!["reviewcontent".to_string()],
            sentiment,
            "NEGATIVE",
            2.0,
        )
        .with_key_field("reviewcontent"),
        LlmQuery::projection(
            "movies-multi-2",
            "Given the information about a movie, summarize the good qualities that led to \
             a favorable rating.",
            all_fields.clone(),
            29.0,
        ),
        LlmQuery::aggregation(
            "movies-agg",
            "Given the following fields of a movie description and a user review, assign a \
             sentiment score for the review out of 5. Answer with ONLY a single integer \
             between 1 (bad) and 5 (good).",
            all_fields,
            (1, 5),
            2.0,
        ),
    ];
    (table, fds, queries)
}
