//! Shared synthetic-data machinery: seeded text generation, entity pools,
//! Zipf sampling, and clustered row orders.
//!
//! The generators do not try to produce *meaningful* text — only text with
//! the right **shape**: target token lengths (so Table 1's averages hold),
//! controlled duplication across rows (so Table 2's hit rates hold), and
//! exact-match repetition (the paper's §3.1 assumption).

use llmqo_tokenizer::Tokenizer;
use rand::rngs::StdRng;
use rand::Rng;

/// A compact English vocabulary; enough variety that hashing/embedding see
/// realistic token diversity.
const WORDS: &[&str] = &[
    "the",
    "quiet",
    "mountain",
    "river",
    "follows",
    "ancient",
    "stone",
    "path",
    "toward",
    "evening",
    "light",
    "small",
    "village",
    "market",
    "opens",
    "before",
    "dawn",
    "farmers",
    "carry",
    "baskets",
    "fresh",
    "bread",
    "warm",
    "honey",
    "children",
    "laugh",
    "narrow",
    "streets",
    "music",
    "drifts",
    "open",
    "windows",
    "travelers",
    "rest",
    "under",
    "willow",
    "trees",
    "stories",
    "gather",
    "around",
    "fires",
    "winter",
    "brings",
    "heavy",
    "snow",
    "across",
    "northern",
    "hills",
    "spring",
    "melts",
    "into",
    "bright",
    "meadows",
    "full",
    "wild",
    "flowers",
    "summer",
    "days",
    "stretch",
    "long",
    "golden",
    "autumn",
    "turns",
    "forest",
    "crimson",
    "amber",
    "harvest",
    "moon",
    "rises",
    "over",
    "fields",
    "wheat",
    "sailors",
    "watch",
    "distant",
    "storms",
    "roll",
    "across",
    "gray",
    "water",
    "lanterns",
    "glow",
    "along",
    "harbor",
    "wall",
    "old",
    "clock",
    "tower",
    "marks",
    "slow",
    "hours",
    "library",
    "holds",
    "countless",
    "maps",
    "forgotten",
    "roads",
    "scholars",
    "debate",
    "meaning",
    "faded",
    "letters",
    "garden",
    "gates",
    "creak",
    "wind",
    "shifts",
    "south",
    "birds",
    "return",
    "carrying",
    "seeds",
    "new",
    "seasons",
    "bells",
    "ring",
    "twice",
    "noon",
    "merchants",
    "close",
    "shutters",
    "against",
    "heat",
    "rain",
    "washes",
    "dust",
    "from",
    "cobblestones",
    "morning",
    "fog",
    "lifts",
    "reveal",
    "valley",
    "below",
];

/// Deterministic text generator with token-count targets.
///
/// Per-word token counts (with the leading space) are precomputed against
/// the real tokenizer, so building a text of ~N tokens is O(words).
#[derive(Debug, Clone)]
pub struct TextGen {
    /// Token count of each word standalone (first word of a text).
    bare_tokens: Vec<usize>,
    /// Token count of each word with its leading space (the in-context form;
    /// the tokenizer attaches whitespace to the following word, so this is
    /// exact for every non-first word).
    spaced_tokens: Vec<usize>,
}

impl Default for TextGen {
    fn default() -> Self {
        Self::new()
    }
}

impl TextGen {
    /// Creates the generator (tokenizes the vocabulary once).
    pub fn new() -> Self {
        let tok = Tokenizer::new();
        TextGen {
            bare_tokens: WORDS.iter().map(|w| tok.count(w)).collect(),
            spaced_tokens: WORDS.iter().map(|w| tok.count(&format!(" {w}"))).collect(),
        }
    }

    /// Generates prose of roughly `target_tokens` tokens.
    pub fn text(&self, rng: &mut StdRng, target_tokens: usize) -> String {
        let mut out = String::new();
        let mut tokens = 0usize;
        while tokens < target_tokens {
            let i = rng.random_range(0..WORDS.len());
            if out.is_empty() {
                tokens += self.bare_tokens[i];
            } else {
                out.push(' ');
                tokens += self.spaced_tokens[i];
            }
            out.push_str(WORDS[i]);
        }
        out
    }

    /// Generates a short capitalized name of `words` words (titles, artist
    /// names); `tag` guarantees uniqueness across a pool when needed.
    pub fn name(&self, rng: &mut StdRng, words: usize, tag: Option<usize>) -> String {
        let mut out = String::new();
        for w in 0..words {
            if w > 0 {
                out.push(' ');
            }
            let word = WORDS[rng.random_range(0..WORDS.len())];
            let mut chars = word.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase());
                out.push_str(chars.as_str());
            }
        }
        if let Some(t) = tag {
            out.push_str(&format!(" {t}"));
        }
        out
    }
}

/// Zipf-distributed index sampler over `0..n` (exponent `s`), the standard
/// model for item popularity (hot products, frequently cited evidence).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Samples an index in `0..n`, lower indices being more popular.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Produces a row→entity assignment where consecutive rows repeat the same
/// entity with probability `repeat_p` — the knob that sets the *original
/// ordering's* adjacent-duplicate rate (and therefore its prefix hit rate).
pub fn clustered_assignment(
    rng: &mut StdRng,
    nrows: usize,
    nentities: usize,
    repeat_p: f64,
) -> Vec<usize> {
    assert!(nentities > 0, "need at least one entity");
    let mut out = Vec::with_capacity(nrows);
    let mut current = 0usize;
    for i in 0..nrows {
        if i == 0 || rng.random::<f64>() >= repeat_p {
            current = rng.random_range(0..nentities);
        }
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn text_hits_token_target() {
        let tg = TextGen::new();
        let tok = Tokenizer::new();
        let mut r = rng();
        for target in [5, 40, 200] {
            let t = tg.text(&mut r, target);
            let n = tok.count(&t);
            assert!(
                n >= target && n <= target + 4,
                "target {target}, got {n}: {t:?}"
            );
        }
    }

    #[test]
    fn text_is_deterministic_per_seed() {
        let tg = TextGen::new();
        let a = tg.text(&mut rng(), 30);
        let b = tg.text(&mut rng(), 30);
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_capitalized_and_tagged() {
        let tg = TextGen::new();
        let n = tg.name(&mut rng(), 2, Some(7));
        assert!(n.ends_with(" 7"));
        assert!(n.chars().next().unwrap().is_uppercase());
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let z = ZipfSampler::new(100, 1.1);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn zipf_covers_support() {
        let z = ZipfSampler::new(5, 1.0);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(z.sample(&mut r));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_zero_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn clustering_matches_repeat_probability() {
        let mut r = rng();
        let assign = clustered_assignment(&mut r, 50_000, 500, 0.3);
        let repeats = assign.windows(2).filter(|w| w[0] == w[1]).count();
        let rate = repeats as f64 / 49_999.0;
        // Random re-draws collide with probability 1/500 on top of 0.3.
        assert!((rate - 0.3).abs() < 0.02, "adjacent repeat rate {rate}");
    }

    #[test]
    fn clustering_zero_probability_is_iid() {
        let mut r = rng();
        let assign = clustered_assignment(&mut r, 10_000, 10, 0.0);
        let repeats = assign.windows(2).filter(|w| w[0] == w[1]).count();
        let rate = repeats as f64 / 9_999.0;
        assert!((rate - 0.1).abs() < 0.02, "iid collision rate {rate}");
    }
}
