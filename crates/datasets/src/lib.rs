//! # llmqo-datasets — the paper's seven datasets and 16-query benchmark
//!
//! Seeded synthetic reproductions of the evaluation corpus (paper §6.1,
//! Table 1, Appendix A/B). Real datasets are unavailable here, and PHC
//! behaviour depends only on value-repetition *structure*, so each generator
//! reproduces its dataset's shape — row/field counts, token-length averages,
//! functional dependencies, join-induced duplication, retrieval-induced
//! context sharing, and the original row order's adjacency rate — calibrated
//! against the paper's published original-order and GGR hit rates (Table 2).
//!
//! ```
//! use llmqo_datasets::{Dataset, DatasetId};
//! // A scaled-down Movies dataset for quick experiments:
//! let ds = Dataset::generate_with_rows(DatasetId::Movies, 200);
//! assert_eq!(ds.table.nrows(), 200);
//! assert_eq!(ds.table.ncols(), 8);
//! assert!(ds.query("movies-filter").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beer;
mod bird;
mod gen;
mod movies;
mod pdmx;
mod products;
mod rag_sets;

pub use gen::{clustered_assignment, TextGen, ZipfSampler};

use llmqo_core::FunctionalDeps;
use llmqo_relational::{LlmQuery, QueryKind, Table};

/// The seven benchmark datasets (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Rotten Tomatoes movie reviews.
    Movies,
    /// Amazon product reviews.
    Products,
    /// BIRD posts ⨝ comments.
    Bird,
    /// Public Domain MusicXML.
    Pdmx,
    /// RateBeer reviews.
    Beer,
    /// Stanford Question Answering (RAG).
    Squad,
    /// Fact Extraction and Verification (RAG).
    Fever,
}

impl DatasetId {
    /// All datasets, in the paper's Table 1 order.
    pub fn all() -> [DatasetId; 7] {
        [
            DatasetId::Movies,
            DatasetId::Products,
            DatasetId::Bird,
            DatasetId::Pdmx,
            DatasetId::Beer,
            DatasetId::Squad,
            DatasetId::Fever,
        ]
    }

    /// Short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Movies => "Movies",
            DatasetId::Products => "Products",
            DatasetId::Bird => "BIRD",
            DatasetId::Pdmx => "PDMX",
            DatasetId::Beer => "Beer",
            DatasetId::Squad => "SQuAD",
            DatasetId::Fever => "FEVER",
        }
    }

    /// The paper-reported shape and hit rates for this dataset.
    pub fn paper(&self) -> PaperShape {
        match self {
            DatasetId::Movies => PaperShape {
                nrows: 15000,
                nfields: 8,
                input_avg: 276,
                output_avg: &[2.0, 29.0, 16.0, 2.0],
                original_phr: 0.35,
                ggr_phr: 0.86,
                solver_time_s: 3.3,
            },
            DatasetId::Products => PaperShape {
                nrows: 14890,
                nfields: 8,
                input_avg: 377,
                output_avg: &[3.0, 107.0, 62.0, 2.0],
                original_phr: 0.27,
                ggr_phr: 0.83,
                solver_time_s: 4.5,
            },
            DatasetId::Bird => PaperShape {
                nrows: 14920,
                nfields: 4,
                input_avg: 765,
                output_avg: &[2.0, 43.0],
                original_phr: 0.10,
                ggr_phr: 0.85,
                solver_time_s: 1.2,
            },
            DatasetId::Pdmx => PaperShape {
                nrows: 10000,
                nfields: 57,
                input_avg: 738,
                output_avg: &[2.0, 72.0],
                original_phr: 0.12,
                ggr_phr: 0.57,
                solver_time_s: 12.6,
            },
            DatasetId::Beer => PaperShape {
                nrows: 28479,
                nfields: 8,
                input_avg: 156,
                output_avg: &[2.0, 38.0],
                original_phr: 0.50,
                ggr_phr: 0.80,
                solver_time_s: 8.0,
            },
            DatasetId::Squad => PaperShape {
                nrows: 22665,
                nfields: 5,
                input_avg: 1047,
                output_avg: &[11.0],
                original_phr: 0.11,
                ggr_phr: 0.70,
                solver_time_s: 4.5,
            },
            DatasetId::Fever => PaperShape {
                nrows: 19929,
                nfields: 5,
                input_avg: 1302,
                output_avg: &[3.0],
                original_phr: 0.11,
                ggr_phr: 0.67,
                solver_time_s: 5.6,
            },
        }
    }
}

/// Paper-reported numbers for one dataset (Tables 1, 2 and 5) — the targets
/// every reproduction harness prints next to its measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperShape {
    /// Rows (Table 1).
    pub nrows: usize,
    /// Fields (Table 1).
    pub nfields: usize,
    /// Average input tokens (Table 1).
    pub input_avg: u64,
    /// Average output tokens per applicable query type (Table 1).
    pub output_avg: &'static [f64],
    /// Original-order prefix hit rate (Table 2).
    pub original_phr: f64,
    /// GGR prefix hit rate (Table 2).
    pub ggr_phr: f64,
    /// GGR solver time in seconds (Table 5).
    pub solver_time_s: f64,
}

/// One generated dataset: table, declared functional dependencies
/// (Appendix B) and its query suite (Appendix A).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which dataset this is.
    pub id: DatasetId,
    /// The data.
    pub table: Table,
    /// Functional dependencies over the full schema.
    pub fds: FunctionalDeps,
    /// The dataset's queries (T1–T5 as applicable).
    pub queries: Vec<LlmQuery>,
}

impl Dataset {
    /// Generates the dataset at the paper's full size.
    pub fn generate(id: DatasetId) -> Dataset {
        Self::generate_with_rows(id, id.paper().nrows)
    }

    /// Generates a scaled version with `nrows` rows (entity pools scale
    /// proportionally, preserving duplication structure).
    pub fn generate_with_rows(id: DatasetId, nrows: usize) -> Dataset {
        let (table, fds, queries) = match id {
            DatasetId::Movies => movies::generate(nrows),
            DatasetId::Products => products::generate(nrows),
            DatasetId::Bird => bird::generate(nrows),
            DatasetId::Pdmx => pdmx::generate(nrows),
            DatasetId::Beer => beer::generate(nrows),
            DatasetId::Squad => rag_sets::generate_squad(nrows),
            DatasetId::Fever => rag_sets::generate_fever(nrows),
        };
        Dataset {
            id,
            table,
            fds,
            queries,
        }
    }

    /// Looks up a query by name (e.g. `"movies-filter"`).
    pub fn query(&self, name: &str) -> Option<&LlmQuery> {
        self.queries.iter().find(|q| q.name == name)
    }

    /// The first query of the given kind, if any.
    pub fn query_of_kind(&self, kind: QueryKind) -> Option<&LlmQuery> {
        self.queries.iter().find(|q| q.kind == kind)
    }

    /// The multi-invocation (T3) stages, if this dataset has them.
    pub fn multi_stages(&self) -> Option<(&LlmQuery, &LlmQuery)> {
        let s1 = self.queries.iter().find(|q| q.name.ends_with("multi-1"))?;
        let s2 = self.queries.iter().find(|q| q.name.ends_with("multi-2"))?;
        Some((s1, s2))
    }

    /// Deterministic ground truth for `query` per row: uniformly distributed
    /// over the query's label space (free-text queries get a synthetic
    /// summary). Stable across runs and orderings, which is what lets the
    /// accuracy study attribute differences to reordering alone.
    pub fn truth_fn<'a>(&self, query: &'a LlmQuery) -> Box<dyn Fn(usize) -> String + 'a> {
        let seed = truth_seed(self.id.name(), &query.name);
        if query.label_space.is_empty() {
            Box::new(move |row| format!("A concise synthesized answer for record {row}."))
        } else {
            let labels = query.label_space.clone();
            Box::new(move |row| {
                let idx = (mix(seed, row as u64) % labels.len() as u64) as usize;
                labels[idx].clone()
            })
        }
    }
}

fn truth_seed(dataset: &str, query: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in dataset.bytes().chain("/".bytes()).chain(query.bytes()) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn mix(seed: u64, row: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(row.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmqo_relational::encode_table;
    use llmqo_tokenizer::Tokenizer;

    #[test]
    fn all_datasets_generate_scaled() {
        for id in DatasetId::all() {
            let ds = Dataset::generate_with_rows(id, 120);
            assert_eq!(ds.table.nrows(), 120, "{}", id.name());
            assert_eq!(ds.table.ncols(), id.paper().nfields, "{}", id.name());
            assert!(!ds.queries.is_empty(), "{}", id.name());
            assert_eq!(ds.fds.ncols(), ds.table.ncols(), "{}", id.name());
        }
    }

    #[test]
    fn query_counts_match_the_16_query_suite() {
        // 5 T1 + 5 T2 + 2 T3 (two stages each) + 2 T4 + 2 T5 = 16 queries,
        // stored as 18 LlmQuery values because T3 has two stages.
        let mut filters = 0;
        let mut projections = 0;
        let mut multis = 0;
        let mut aggs = 0;
        let mut rags = 0;
        for id in DatasetId::all() {
            let ds = Dataset::generate_with_rows(id, 30);
            for q in &ds.queries {
                if q.name.contains("multi") {
                    multis += 1;
                } else {
                    match q.kind {
                        QueryKind::Filter => filters += 1,
                        QueryKind::Projection => projections += 1,
                        QueryKind::Aggregation => aggs += 1,
                        QueryKind::Rag => rags += 1,
                    }
                }
            }
        }
        assert_eq!(filters, 5);
        assert_eq!(projections, 5);
        assert_eq!(multis, 4, "two T3 queries, two stages each");
        assert_eq!(aggs, 2);
        assert_eq!(rags, 2);
    }

    #[test]
    fn declared_fds_hold_exactly_in_the_data() {
        for id in DatasetId::all() {
            let ds = Dataset::generate_with_rows(id, 200);
            let filter = ds
                .query_of_kind(QueryKind::Filter)
                .or_else(|| ds.query_of_kind(QueryKind::Rag))
                .unwrap();
            let encoded = encode_table(&Tokenizer::new(), &ds.table, filter).unwrap();
            for group in ds.fds.groups() {
                for pair in group.windows(2) {
                    let (a, b) = (pair[0] as usize, pair[1] as usize);
                    let mut fwd = std::collections::HashMap::new();
                    let mut bwd = std::collections::HashMap::new();
                    for r in 0..encoded.reorder.nrows() {
                        let va = encoded.reorder.cell(r, a).value;
                        let vb = encoded.reorder.cell(r, b).value;
                        assert_eq!(
                            *fwd.entry(va).or_insert(vb),
                            vb,
                            "{}: FD {a}→{b} violated",
                            id.name()
                        );
                        assert_eq!(
                            *bwd.entry(vb).or_insert(va),
                            va,
                            "{}: FD {b}→{a} violated",
                            id.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate_with_rows(DatasetId::Beer, 64);
        let b = Dataset::generate_with_rows(DatasetId::Beer, 64);
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn truth_is_deterministic_and_in_label_space() {
        let ds = Dataset::generate_with_rows(DatasetId::Movies, 50);
        let q = ds.query("movies-filter").unwrap();
        let truth = ds.truth_fn(q);
        for row in 0..50 {
            let t = truth(row);
            assert!(q.label_space.contains(&t));
            assert_eq!(t, truth(row));
        }
    }

    #[test]
    fn truth_distribution_is_roughly_uniform() {
        let ds = Dataset::generate_with_rows(DatasetId::Movies, 10);
        let q = ds.query("movies-agg").unwrap();
        let truth = ds.truth_fn(q);
        let mut counts = std::collections::HashMap::new();
        for row in 0..5000 {
            *counts.entry(truth(row)).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 5);
        for (label, &n) in &counts {
            assert!(
                (800..1200).contains(&n),
                "label {label} count {n} not ≈ 1000"
            );
        }
    }

    #[test]
    fn free_text_truth_mentions_the_row() {
        let ds = Dataset::generate_with_rows(DatasetId::Squad, 10);
        let q = ds.query("squad-rag").unwrap();
        let truth = ds.truth_fn(q);
        assert!(truth(7).contains('7'));
    }

    #[test]
    fn multi_stage_lookup() {
        let movies = Dataset::generate_with_rows(DatasetId::Movies, 20);
        let (s1, s2) = movies.multi_stages().unwrap();
        assert_eq!(s1.kind, QueryKind::Filter);
        assert_eq!(s2.kind, QueryKind::Projection);
        let bird = Dataset::generate_with_rows(DatasetId::Bird, 20);
        assert!(bird.multi_stages().is_none());
    }

    #[test]
    fn rag_rows_have_retrieved_contexts() {
        let ds = Dataset::generate_with_rows(DatasetId::Fever, 60);
        for r in 0..ds.table.nrows() {
            for c in 1..ds.table.ncols() {
                let v = ds.table.value(r, c).to_string();
                assert!(!v.is_empty(), "row {r} context {c} empty");
            }
        }
    }

    #[test]
    fn rag_contexts_are_shared_across_rows() {
        let ds = Dataset::generate_with_rows(DatasetId::Squad, 200);
        let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for r in 0..ds.table.nrows() {
            for c in 1..ds.table.ncols() {
                *seen.entry(ds.table.value(r, c).to_string()).or_insert(0) += 1;
            }
        }
        let max_reuse = seen.values().copied().max().unwrap();
        assert!(
            max_reuse >= 10,
            "popular contexts should recur heavily, max {max_reuse}"
        );
    }

    #[test]
    fn paper_shapes_are_consistent() {
        for id in DatasetId::all() {
            let p = id.paper();
            assert!(p.ggr_phr > p.original_phr, "{}", id.name());
            assert!(p.nrows >= 10_000);
            assert!(!p.output_avg.is_empty());
        }
    }
}
