//! BIRD Posts⨝Comments (paper: 14 920 rows × 4 fields, 765 input tokens,
//! outputs {2, 43} for T1–T2).
//!
//! Structure: comments joined to their post by `PostId`; the long post
//! `Body` repeats across a post's ~15 comments. Comments arrive unordered
//! (the paper's 10% original hit rate is essentially the instruction prefix
//! alone). Functional dependency: {Body, PostId} (Appendix B).

use crate::gen::{clustered_assignment, TextGen};
use llmqo_core::FunctionalDeps;
use llmqo_relational::{LlmQuery, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub(crate) const FIELDS: [&str; 4] = ["Body", "PostDate", "PostId", "Text"];

pub(crate) fn generate(nrows: usize) -> (Table, FunctionalDeps, Vec<LlmQuery>) {
    let mut rng = StdRng::seed_from_u64(0x4249_5244);
    let tg = TextGen::new();
    let nposts = (nrows / 20).max(1);

    struct Post {
        body: String,
        date: String,
        id: String,
    }
    let posts: Vec<Post> = (0..nposts)
        .map(|i| Post {
            body: tg.text(&mut rng, 500),
            date: format!(
                "2023-{:02}-{:02}",
                rng.random_range(1..=12u32),
                rng.random_range(1..=28u32)
            ),
            id: format!("post-{i:06}"),
        })
        .collect();

    // Comments are effectively shuffled relative to posts in the source data.
    let assignment = clustered_assignment(&mut rng, nrows, nposts, 0.02);
    let mut table = Table::new(Schema::of_strings(&FIELDS));
    for &p in &assignment {
        let post = &posts[p];
        table
            .push_row(vec![
                post.body.clone().into(),
                post.date.clone().into(),
                post.id.clone().into(),
                tg.text(&mut rng, 85).into(),
            ])
            .expect("bird schema arity");
    }

    // Appendix B: Body ↔ PostId.
    let fds =
        FunctionalDeps::from_groups(FIELDS.len(), vec![vec![0, 2]]).expect("indices in range");

    let all_fields: Vec<String> = FIELDS.iter().map(|s| s.to_string()).collect();
    let queries = vec![
        LlmQuery::filter(
            "bird-filter",
            "Given the following fields related to posts in an online codebase community, \
             answer whether the post is related to statistics. Answer with only 'YES' or \
             'NO'.",
            all_fields.clone(),
            vec!["YES".to_string(), "NO".to_string()],
            "YES",
            2.0,
        )
        .with_key_field("Body"),
        LlmQuery::projection(
            "bird-projection",
            "Given the following fields related to posts in an online codebase community, \
             summarize how the comment Text related to the post body.",
            all_fields,
            43.0,
        ),
    ];
    (table, fds, queries)
}
