//! Public Domain MusicXML (paper: 10 000 rows × 57 fields, 738 input tokens,
//! outputs {2, 72} for T1–T2).
//!
//! The widest table in the suite: a mix of per-row-unique lengthy text
//! (paths, metadata ids, descriptions), wide-range numerics that rarely
//! repeat, small-cardinality categoricals, and many booleans. Roughly 43% of
//! the token mass is unique, which caps GGR near the paper's 57% hit rate.
//! Functional dependencies (Appendix B): {metadata, path} and a group of six
//! co-varying flags {hasannotations, hasmetadata, isdraft, isofficial,
//! isuserpublisher, subsetall}.

use crate::gen::{TextGen, ZipfSampler};
use llmqo_core::FunctionalDeps;
use llmqo_relational::{LlmQuery, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 57 PDMX fields, in schema (alphabetical) order.
pub(crate) const FIELDS: [&str; 57] = [
    "artistname",
    "bestarrangement",
    "bestpath",
    "bestuniquearrangement",
    "composername",
    "complexity",
    "genre",
    "grooveconsistency",
    "groups",
    "hasannotations",
    "hascustomaudio",
    "hascustomvideo",
    "haslyrics",
    "hasmetadata",
    "haspaywall",
    "id",
    "isbestarrangement",
    "isbestpath",
    "isbestuniquearrangement",
    "isdraft",
    "isofficial",
    "isoriginal",
    "isuserpro",
    "isuserpublisher",
    "isuserstaff",
    "license",
    "licenseurl",
    "metadata",
    "nannotations",
    "ncomments",
    "nfavorites",
    "nlyrics",
    "notesperbar",
    "nnotes",
    "nratings",
    "ntracks",
    "ntokens",
    "nviews",
    "path",
    "pitchclassentropy",
    "postdate",
    "postid",
    "publisher",
    "rating",
    "scaleconsistency",
    "songlength",
    "songlengthbars",
    "songlengthbeats",
    "songlengthseconds",
    "songname",
    "subsetall",
    "subtitle",
    "tags",
    "text",
    "title",
    "tracks",
    "version",
];

const GENRES: [&str; 20] = [
    "classical",
    "folk",
    "jazz",
    "march",
    "waltz",
    "hymn",
    "ragtime",
    "polka",
    "tango",
    "overture",
    "sonata",
    "etude",
    "nocturne",
    "prelude",
    "fugue",
    "minuet",
    "ballad",
    "carol",
    "anthem",
    "serenade",
];
const LICENSES: [(&str, &str); 6] = [
    ("CC-BY-4.0", "https://creativecommons.org/licenses/by/4.0/"),
    (
        "CC-BY-SA-4.0",
        "https://creativecommons.org/licenses/by-sa/4.0/",
    ),
    (
        "CC0-1.0",
        "https://creativecommons.org/publicdomain/zero/1.0/",
    ),
    (
        "CC-BY-NC-4.0",
        "https://creativecommons.org/licenses/by-nc/4.0/",
    ),
    (
        "PD-Mark",
        "https://creativecommons.org/publicdomain/mark/1.0/",
    ),
    (
        "CC-BY-ND-4.0",
        "https://creativecommons.org/licenses/by-nd/4.0/",
    ),
];
const INSTRUMENT_SETS: [&str; 8] = [
    "piano",
    "piano, violin",
    "voice, piano",
    "string quartet",
    "flute, harp",
    "organ",
    "brass ensemble",
    "guitar",
];

pub(crate) fn generate(nrows: usize) -> (Table, FunctionalDeps, Vec<LlmQuery>) {
    let mut rng = StdRng::seed_from_u64(0x5044_4d58);
    let tg = TextGen::new();
    let nartists = (nrows / 50).max(1);
    let ncomposers = (nrows / 60).max(1);
    let npublishers = 150.min(nrows).max(1);

    let artists: Vec<String> = (0..nartists)
        .map(|i| tg.name(&mut rng, 2, Some(i)))
        .collect();
    let composers: Vec<String> = (0..ncomposers)
        .map(|i| tg.name(&mut rng, 2, Some(i)))
        .collect();
    let publishers: Vec<String> = (0..npublishers)
        .map(|i| tg.name(&mut rng, 1, Some(i)))
        .collect();

    // Distributions are deliberately skewed — most flags are rare, most
    // counters are zero-inflated, licenses/genres follow popularity — which
    // is what makes sorted rows agree on long field prefixes in the real
    // PDMX (and caps GGR near the paper's 57% because the lengthy per-song
    // text/path/metadata fields never repeat).
    let license_zipf = ZipfSampler::new(LICENSES.len(), 1.6);
    let genre_zipf = ZipfSampler::new(GENRES.len(), 1.3);
    let publisher_zipf = ZipfSampler::new(publishers.len(), 1.2);
    let artist_zipf = ZipfSampler::new(nartists, 1.1);
    let composer_zipf = ZipfSampler::new(ncomposers, 1.1);
    let mut table = Table::new(Schema::of_strings(&FIELDS));
    for row in 0..nrows {
        let flag = rng.random_bool(0.2); // drives the 6-flag FD group
        let b = |rng: &mut StdRng, p: f64| -> Value {
            if rng.random_bool(p) { "true" } else { "false" }.into()
        };
        // Zero-inflated counter: mostly 0, occasionally small.
        let zcount = |rng: &mut StdRng, max: i64| -> Value {
            if rng.random_bool(0.85) {
                "0".into()
            } else {
                rng.random_range(1..=max).to_string().into()
            }
        };
        let (license, license_url) = LICENSES[license_zipf.sample(&mut rng)];
        let uuid = format!("{:08x}{:04x}", rng.random::<u32>(), row);
        let fb = |x: bool| -> Value { if x { "true" } else { "false" }.into() };
        // One latent song length drives every length-derived field, exactly
        // as in real MusicXML corpora (seconds, bars, beats, note and token
        // counts are mutually determined) — so once one of them leads a
        // sorted prefix, the rest ride along for free.
        let length_k = rng.random_range(3..=43i64);
        let complexity = [1i64, 1, 1, 2, 2, 3, 4][rng.random_range(0..7usize)];
        let genre = GENRES[genre_zipf.sample(&mut rng)];
        let values: Vec<Value> = vec![
            artists[artist_zipf.sample(&mut rng)].clone().into(), // artistname
            b(&mut rng, 0.06),                                    // bestarrangement
            b(&mut rng, 0.93),                                    // bestpath
            b(&mut rng, 0.04),                                    // bestuniquearrangement
            composers[composer_zipf.sample(&mut rng)].clone().into(), // composername
            complexity.to_string().into(),                        // complexity
            genre.into(),                                         // genre
            format!("{:.1}", rng.random::<f64>()).into(),         // grooveconsistency
            format!("set-{}", rng.random_range(0..8u32)).into(),  // groups
            fb(flag),                                             // hasannotations (FD)
            b(&mut rng, 0.03),                                    // hascustomaudio
            b(&mut rng, 0.01),                                    // hascustomvideo
            b(&mut rng, 0.2),                                     // haslyrics
            fb(flag),                                             // hasmetadata (FD)
            b(&mut rng, 0.02),                                    // haspaywall
            format!("pdmx-{row:07}").into(),                      // id
            b(&mut rng, 0.08),                                    // isbestarrangement
            b(&mut rng, 0.92),                                    // isbestpath
            b(&mut rng, 0.04),                                    // isbestuniquearrangement
            fb(!flag),                                            // isdraft (FD)
            fb(flag),                                             // isofficial (FD)
            b(&mut rng, 0.94),                                    // isoriginal
            b(&mut rng, 0.04),                                    // isuserpro
            fb(!flag),                                            // isuserpublisher (FD)
            b(&mut rng, 0.01),                                    // isuserstaff
            license.into(),                                       // license
            license_url.into(),                                   // licenseurl
            format!("meta/{uuid}").into(),                        // metadata (FD w/ path)
            zcount(&mut rng, 12),                                 // nannotations
            zcount(&mut rng, 30),                                 // ncomments
            zcount(&mut rng, 40),                                 // nfavorites
            zcount(&mut rng, 60),                                 // nlyrics
            format!("{:.1}", 2.0 + complexity as f64 * 0.8).into(), // notesperbar (≈complexity)
            (length_k * 100).to_string().into(),                  // nnotes (≈length)
            zcount(&mut rng, 20),                                 // nratings
            [1i64, 1, 1, 2, 2, 4][rng.random_range(0..6usize)]
                .to_string()
                .into(), // ntracks
            (length_k * 240).to_string().into(),                  // ntokens (≈length)
            zcount(&mut rng, 300),                                // nviews
            format!("data/scores/{uuid}.musicxml").into(),        // path (FD w/ metadata)
            format!("{:.3}", rng.random::<f64>() * 3.5).into(),   // pitchclassentropy
            format!(
                "20{:02}-{:02}",
                rng.random_range(20..24u32),
                rng.random_range(1..=12u32),
            )
            .into(), // postdate
            format!("p{row:07}").into(),                          // postid
            publishers[publisher_zipf.sample(&mut rng)].clone().into(), // publisher
            ["0.0", "4.5", "4.0", "5.0", "3.5"][rng.random_range(0..5usize)].into(), // rating
            format!("{:.1}", rng.random::<f64>()).into(),         // scaleconsistency
            (length_k * 10).to_string().into(),                   // songlength
            (length_k * 4).to_string().into(),                    // songlengthbars
            (length_k * 16).to_string().into(),                   // songlengthbeats
            (length_k * 10).to_string().into(),                   // songlengthseconds
            tg.name(&mut rng, 2, Some(row)).into(),               // songname
            fb(flag),                                             // subsetall (FD)
            tg.name(&mut rng, 1, None).into(),                    // subtitle
            format!("{}, {}", genre, GENRES[genre_zipf.sample(&mut rng)]).into(), // tags (lead tag = genre)
            tg.text(&mut rng, 70).into(),                                         // text
            tg.name(&mut rng, 3, Some(row)).into(),                               // title
            INSTRUMENT_SETS[rng.random_range(0..INSTRUMENT_SETS.len())].into(),   // tracks
            ["1.0", "2.0", "3.0"][rng.random_range(0..3usize)].into(),            // version
        ];
        table.push_row(values).expect("pdmx schema arity");
    }

    // Appendix B: [metadata, path] and the six co-varying flags.
    let idx = |name: &str| FIELDS.iter().position(|f| *f == name).expect("known field") as u32;
    let fds = FunctionalDeps::from_groups(
        FIELDS.len(),
        vec![
            vec![idx("metadata"), idx("path")],
            vec![
                idx("hasannotations"),
                idx("hasmetadata"),
                idx("isdraft"),
                idx("isofficial"),
                idx("isuserpublisher"),
                idx("subsetall"),
            ],
        ],
    )
    .expect("indices in range");

    let all_fields: Vec<String> = FIELDS.iter().map(|s| s.to_string()).collect();
    let queries = vec![
        LlmQuery::filter(
            "pdmx-filter",
            "Based on following fields, answer 'YES' or 'NO' if any of the song information \
             references a specific individual. Answer only 'YES' or 'NO', nothing else.",
            all_fields.clone(),
            vec!["YES".to_string(), "NO".to_string()],
            "YES",
            2.0,
        )
        .with_key_field("text"),
        LlmQuery::projection(
            "pdmx-projection",
            "Given the following fields, provide an overview on the music type, and analyze \
             the given scores. Give exactly 50 words of summary.",
            all_fields,
            72.0,
        ),
    ];
    (table, fds, queries)
}
