//! Amazon Product Reviews (paper: 14 890 rows × 8 fields, 377 input tokens,
//! outputs {3, 107, 62, 2} for T1–T4).
//!
//! Structure: review rows joined with per-product metadata. The long shared
//! `description` leads the schema, so even the original order gets some hits
//! when adjacent reviews cover the same product (~18% adjacency → the
//! paper's 27% original hit rate with the instruction prefix). Functional
//! dependency: {parent_asin, product_title} (Appendix B).

use crate::gen::{clustered_assignment, TextGen};
use llmqo_core::FunctionalDeps;
use llmqo_relational::{LlmQuery, Schema, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub(crate) const FIELDS: [&str; 8] = [
    "description",
    "id",
    "parent_asin",
    "product_title",
    "rating",
    "review_title",
    "text",
    "verified_purchase",
];

struct Product {
    description: String,
    asin: String,
    title: String,
}

pub(crate) fn generate(nrows: usize) -> (Table, FunctionalDeps, Vec<LlmQuery>) {
    let mut rng = StdRng::seed_from_u64(0x5052_4f44);
    let tg = TextGen::new();
    let nproducts = (nrows / 20).max(1);

    let products: Vec<Product> = (0..nproducts)
        .map(|i| Product {
            description: tg.text(&mut rng, 150),
            asin: format!("B{:08X}", 0x00A0_0000u64 + i as u64),
            title: tg.name(&mut rng, 3, Some(i)),
        })
        .collect();

    let assignment = clustered_assignment(&mut rng, nrows, nproducts, 0.02);
    let mut table = Table::new(Schema::of_strings(&FIELDS));
    for (row, &p) in assignment.iter().enumerate() {
        let product = &products[p];
        // Ratings skew positive on retail platforms.
        let rating = *[5i64, 5, 5, 4, 4, 3, 2, 1]
            .get(rng.random_range(0..8usize))
            .expect("non-empty choices");
        table
            .push_row(vec![
                product.description.clone().into(),
                format!("R{row:08}").into(),
                product.asin.clone().into(),
                product.title.clone().into(),
                rating.to_string().into(),
                tg.name(&mut rng, 2, None).into(),
                tg.text(&mut rng, 36).into(),
                if rng.random_bool(0.85) {
                    "true"
                } else {
                    "false"
                }
                .into(),
            ])
            .expect("products schema arity");
    }

    // Appendix B: parent_asin ↔ product_title.
    let fds =
        FunctionalDeps::from_groups(FIELDS.len(), vec![vec![2, 3]]).expect("indices in range");

    let all_fields: Vec<String> = FIELDS.iter().map(|s| s.to_string()).collect();
    let tri = vec![
        "POSITIVE".to_string(),
        "NEGATIVE".to_string(),
        "NEUTRAL".to_string(),
    ];
    let duo = vec!["POSITIVE".to_string(), "NEGATIVE".to_string()];
    let queries = vec![
        LlmQuery::filter(
            "products-filter",
            "Given the following fields determine if the review speaks positively \
             ('POSITIVE'), negatively ('NEGATIVE'), or neutral ('NEUTRAL') about the \
             product. Answer only 'POSITIVE', 'NEGATIVE', or 'NEUTRAL', nothing else.",
            all_fields.clone(),
            tri,
            "POSITIVE",
            3.0,
        )
        .with_key_field("text"),
        LlmQuery::projection(
            "products-projection",
            "Given the following fields related to amazon products, summarize the product, \
             then answer whether the product description is consistent with the quality \
             expressed in the review.",
            all_fields.clone(),
            107.0,
        ),
        LlmQuery::filter(
            "products-multi-1",
            "Given the following review, answer whether the sentiment associated is \
             'POSITIVE' or 'NEGATIVE'. Answer in all caps with ONLY 'POSITIVE' or 'NEGATIVE':",
            vec!["text".to_string()],
            duo,
            "NEGATIVE",
            2.0,
        )
        .with_key_field("text"),
        LlmQuery::projection(
            "products-multi-2",
            "Given the following fields related to amazon products, summarize the product, \
             then answer whether the product description is consistent with the quality \
             expressed in the review.",
            all_fields.clone(),
            107.0,
        ),
        LlmQuery::aggregation(
            "products-agg",
            "Given the following fields of a product description and a user review, assign \
             a sentiment score for the review out of 5. Answer with ONLY a single integer \
             between 1 (bad) and 5 (good).",
            all_fields,
            (1, 5),
            2.0,
        ),
    ];
    (table, fds, queries)
}
