//! The pre-macro-stepping engine loop, frozen verbatim as a differential
//! oracle.
//!
//! [`SessionReference`] is the per-token [`EngineSession`] exactly as it
//! stood before the event-driven rewrite: every scheduling step re-scans all
//! running sequences, re-flattens the head-of-line waiting prompt into a
//! scratch buffer, and re-hashes it through the token-based cache API. It is
//! intentionally **not** optimized — its job is to define the semantics the
//! macro-stepping [`EngineSession`] must reproduce byte for byte
//! (`tests/engine_differential.rs`), the same contract the solver rewrite
//! established with `GgrReference`/`OphrReference`.
//!
//! [`EngineSession`]: crate::EngineSession

use crate::cache::{CacheConfig, CacheStats, PrefixCache, SeqAlloc};
use crate::engine::{Deployment, EngineConfig, EngineError, EngineReport, SimRequest};
use crate::model::ModelSpec;
use crate::session::{percentile, Completion, SessionReport};
use llmqo_tokenizer::TokenId;
use std::collections::VecDeque;

struct Running {
    idx: usize,
    alloc: SeqAlloc,
    prompt_len: usize,
    prefilled: usize,
    output_done: u32,
    admitted_at: f64,
    first_token_at: Option<f64>,
}

/// The frozen per-token stepping loop. Construct with
/// [`SimEngine::reference_session`](crate::SimEngine::reference_session);
/// drive exactly like an [`EngineSession`](crate::EngineSession).
pub struct SessionReference {
    model: ModelSpec,
    config: EngineConfig,
    capacity_blocks: usize,
    flops: f64,
    bw: f64,
    kv_bytes: f64,
    weight_bytes: f64,
    cache: PrefixCache,
    /// Every request ever enqueued; `waiting`/`running` index into it.
    store: Vec<SimRequest>,
    waiting: VecDeque<usize>,
    running: Vec<Running>,
    scratch: Vec<TokenId>,
    clock: f64,
    idle_s: f64,
    report: EngineReport,
    ttfts: Vec<f64>,
    latencies: Vec<f64>,
    completions: Vec<Completion>,
}

impl std::fmt::Debug for SessionReference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionReference")
            .field("clock", &self.clock)
            .field("waiting", &self.waiting.len())
            .field("running", &self.running.len())
            .field("completed", &self.report.completed)
            .finish_non_exhaustive()
    }
}

impl SessionReference {
    pub(crate) fn new(deployment: &Deployment, config: EngineConfig) -> Result<Self, EngineError> {
        let capacity_blocks = deployment.kv_capacity_blocks(&config);
        if capacity_blocks == 0 {
            return Err(EngineError::ModelTooLarge {
                weight_bytes: deployment.model.weight_bytes(),
                mem_bytes: deployment.cluster.total_mem_bytes(),
            });
        }
        let cache = PrefixCache::new(CacheConfig {
            block_size: config.block_size,
            capacity_blocks,
            enabled: config.enable_prefix_cache,
            share_in_flight: config.in_flight_sharing,
        });
        Ok(SessionReference {
            flops: deployment.cluster.total_flops(),
            bw: deployment.cluster.total_mem_bw(),
            kv_bytes: deployment.model.kv_bytes_per_token() as f64,
            weight_bytes: deployment.model.weight_bytes() as f64,
            model: deployment.model.clone(),
            config,
            capacity_blocks,
            cache,
            store: Vec::new(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            scratch: Vec::new(),
            clock: 0.0,
            idle_s: 0.0,
            report: EngineReport::default(),
            ttfts: Vec::new(),
            latencies: Vec::new(),
            completions: Vec::new(),
        })
    }

    /// Adds a request to the tail of the admission queue.
    pub fn enqueue(&mut self, request: SimRequest) {
        self.store.push(request);
        self.waiting.push_back(self.store.len() - 1);
    }

    /// Current session clock, seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Whether the session has no queued and no running work.
    pub fn is_idle(&self) -> bool {
        self.waiting.is_empty() && self.running.is_empty()
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Sequences currently in the running batch.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Requests completed so far.
    pub fn completed(&self) -> usize {
        self.report.completed
    }

    /// KV blocks currently referenced or cached (capacity minus free).
    pub fn kv_blocks_in_use(&self) -> usize {
        self.capacity_blocks - self.cache.free_blocks()
    }

    /// Lifetime prefix-cache statistics.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Cumulative idle time accrued via [`advance_to`].
    ///
    /// [`advance_to`]: SessionReference::advance_to
    pub fn idle_time_s(&self) -> f64 {
        self.idle_s
    }

    /// Idles the session until `t` (seconds on the session clock). Only an
    /// idle session can be advanced; no-ops when `t` is in the past.
    pub fn advance_to(&mut self, t: f64) {
        if self.is_idle() && t > self.clock {
            self.idle_s += t - self.clock;
            self.clock = t;
        }
    }

    /// One scheduling step of the frozen per-token loop: admit within the
    /// prefill budget (re-flattening and re-hashing the head-of-line
    /// prompt), decode one token per running sequence, advance the clock by
    /// the roofline step time, retire finished sequences.
    ///
    /// # Errors
    ///
    /// [`EngineError::RequestTooLarge`] if the head-of-queue request can
    /// never fit in KV memory even with the batch drained.
    pub fn step(&mut self) -> Result<bool, EngineError> {
        if self.is_idle() {
            return Ok(false);
        }
        // Build the step: decode every running sequence that finished
        // prefill, plus chunked prefill within the token budget.
        let mut decode_tokens = 0u64;
        let mut decode_ctx = 0u64;
        for r in &self.running {
            if r.prefilled >= r.prompt_len && r.output_done < self.store[r.idx].output_len {
                decode_tokens += 1;
                decode_ctx += (r.prompt_len as u64) + u64::from(r.output_done);
            }
        }
        let mut budget = self
            .config
            .max_batch_tokens
            .saturating_sub(decode_tokens as usize);
        let mut prefill_flops = 0.0f64;
        let mut prefill_kv_bytes = 0.0f64;
        let mut chunks: Vec<(usize, usize)> = Vec::new(); // (running idx, chunk)
        let model = &self.model;
        let kv_bytes = self.kv_bytes;
        let take_chunk = |r: &Running,
                          i: usize,
                          budget: &mut usize,
                          prefill_flops: &mut f64,
                          prefill_kv_bytes: &mut f64,
                          chunks: &mut Vec<(usize, usize)>| {
            let chunk = (r.prompt_len - r.prefilled).min(*budget);
            if chunk == 0 {
                return;
            }
            *budget -= chunk;
            let ctx_mid = r.prefilled as f64 + chunk as f64 / 2.0;
            *prefill_flops +=
                chunk as f64 * (model.flops_per_token() + model.attn_flops(ctx_mid as u64));
            *prefill_kv_bytes += (r.prefilled + chunk) as f64 * kv_bytes;
            chunks.push((i, chunk));
        };
        // In-flight prefills continue first (FIFO, vLLM-style) …
        for (i, r) in self.running.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if r.prefilled < r.prompt_len {
                take_chunk(
                    r,
                    i,
                    &mut budget,
                    &mut prefill_flops,
                    &mut prefill_kv_bytes,
                    &mut chunks,
                );
            }
        }
        // … then waiting requests are admitted lazily, only when the step
        // has prefill budget for them.
        while (budget > 0 || decode_tokens + chunks.len() as u64 == 0)
            && self.running.len() < self.config.max_num_seqs
        {
            let Some(&idx) = self.waiting.front() else {
                break;
            };
            let req = &self.store[idx];
            self.scratch.clear();
            for frag in &req.prompt {
                self.scratch.extend_from_slice(frag);
            }
            match self.cache.try_admit(&self.scratch, req.output_len as usize) {
                Some(alloc) => {
                    self.waiting.pop_front();
                    self.clock += self.config.per_request_overhead_s;
                    self.report.overhead_time_s += self.config.per_request_overhead_s;
                    self.report.total_prompt_tokens += alloc.prompt_tokens as u64;
                    self.report.cached_prompt_tokens += alloc.cached_tokens as u64;
                    self.running.push(Running {
                        idx,
                        prompt_len: alloc.prompt_tokens,
                        prefilled: alloc.cached_tokens,
                        output_done: 0,
                        alloc,
                        admitted_at: self.clock,
                        first_token_at: None,
                    });
                    let i = self.running.len() - 1;
                    let r = &self.running[i];
                    if r.prefilled < r.prompt_len {
                        take_chunk(
                            r,
                            i,
                            &mut budget,
                            &mut prefill_flops,
                            &mut prefill_kv_bytes,
                            &mut chunks,
                        );
                    }
                }
                None => {
                    if self.running.is_empty() {
                        let needed = (self.scratch.len() + req.output_len as usize)
                            .div_ceil(self.config.block_size);
                        return Err(EngineError::RequestTooLarge {
                            id: req.id,
                            needed_blocks: needed,
                            capacity_blocks: self.capacity_blocks,
                        });
                    }
                    break;
                }
            }
        }
        self.report.peak_running = self.report.peak_running.max(self.running.len());
        if self.running.is_empty() {
            return Ok(false);
        }

        // Roofline step time.
        let decode_flops =
            decode_tokens as f64 * model.flops_per_token() + model.attn_flops(decode_ctx);
        let compute_t = (prefill_flops + decode_flops) / self.flops;
        let mem_t = (self.weight_bytes + decode_ctx as f64 * kv_bytes + prefill_kv_bytes) / self.bw;
        let step_t = compute_t.max(mem_t) + self.config.step_overhead_s;

        // Attribute time to phases for the report (by compute share).
        let total_work = (prefill_flops + decode_flops).max(1.0);
        self.report.prefill_time_s += step_t * prefill_flops / total_work;
        self.report.decode_time_s += step_t * decode_flops / total_work;
        self.clock += step_t;
        self.report.steps += 1;

        // Apply effects: prefill progress (marking blocks computed) and
        // one decoded token per decoding sequence.
        for (i, chunk) in chunks {
            let r = &mut self.running[i];
            r.prefilled += chunk;
            self.report.computed_prompt_tokens += chunk as u64;
            self.cache.mark_computed(&r.alloc, r.prefilled);
        }
        let mut i = 0;
        while i < self.running.len() {
            let done_prefill = self.running[i].prefilled >= self.running[i].prompt_len;
            if done_prefill {
                let out_target = self.store[self.running[i].idx].output_len;
                if self.running[i].output_done < out_target {
                    self.running[i].output_done += 1;
                    self.report.total_output_tokens += 1;
                    if self.running[i].first_token_at.is_none() {
                        self.running[i].first_token_at = Some(self.clock);
                        self.ttfts.push(self.clock - self.running[i].admitted_at);
                    }
                }
                if self.running[i].output_done >= out_target {
                    let r = self.running.swap_remove(i);
                    let first_token_at = match r.first_token_at {
                        Some(t) => t,
                        // Zero-output request: first "token" is completion.
                        None => {
                            self.ttfts.push(self.clock - r.admitted_at);
                            self.clock
                        }
                    };
                    self.latencies.push(self.clock - r.admitted_at);
                    self.completions.push(Completion {
                        id: self.store[r.idx].id,
                        admitted_s: r.admitted_at,
                        finished_s: self.clock,
                        ttft_s: first_token_at - r.admitted_at,
                        prompt_tokens: r.prompt_len,
                        cached_tokens: r.alloc.cached_tokens,
                        output_tokens: r.output_done,
                    });
                    self.cache.release(r.alloc);
                    self.report.completed += 1;
                    continue;
                }
            }
            i += 1;
        }
        Ok(true)
    }

    /// Submits `requests` (cloning each, as the pre-rewrite loop did) and
    /// steps until idle, returning the completions this call produced.
    ///
    /// # Errors
    ///
    /// [`EngineError::RequestTooLarge`] if a request can never be admitted.
    pub fn run_batch(&mut self, requests: &[SimRequest]) -> Result<&[Completion], EngineError> {
        let before = self.completions.len();
        for request in requests {
            self.enqueue(request.clone());
        }
        while self.step()? {}
        Ok(&self.completions[before..])
    }

    /// Finalizes the session: computes latency percentiles and returns the
    /// aggregate report plus per-request completion records.
    pub fn finish(mut self) -> SessionReport {
        self.ttfts.sort_by(f64::total_cmp);
        self.latencies.sort_by(f64::total_cmp);
        self.report.ttft_p50_s = percentile(&self.ttfts, 0.50);
        self.report.ttft_p99_s = percentile(&self.ttfts, 0.99);
        self.report.latency_p50_s = percentile(&self.latencies, 0.50);
        self.report.latency_p99_s = percentile(&self.latencies, 0.99);
        self.report.job_completion_time_s = self.clock;
        self.report.peak_blocks = self.cache.stats().peak_blocks;
        self.report.evictions = self.cache.stats().evictions;
        SessionReport {
            report: self.report,
            completions: self.completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimEngine;
    use crate::hardware::{GpuCluster, GpuSpec};

    #[test]
    fn reference_session_completes_a_batch() {
        let engine = SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        );
        let reqs: Vec<SimRequest> = (0..20)
            .map(|i| {
                let mut t: Vec<TokenId> = (0..64).collect();
                t.extend((0..16).map(|j| 70_000 + i as u32 * 100 + j));
                SimRequest::from_tokens(i, t, 3)
            })
            .collect();
        let mut s = engine.reference_session().unwrap();
        let done = s.run_batch(&reqs).unwrap().len();
        assert_eq!(done, 20);
        let out = s.finish();
        assert_eq!(out.report.completed, 20);
        assert_eq!(out.report.total_output_tokens, 60);
    }
}
