//! # llmqo-serve — a discrete-time LLM serving simulator
//!
//! Stand-in for the paper's vLLM + NVIDIA L4 serving stack (§5, §6.1.3).
//! The simulator reproduces the two mechanisms through which prefix reuse
//! speeds up batch analytics jobs:
//!
//! 1. **Compute**: prompt tokens found in the prefix cache skip prefill
//!    FLOPs entirely (and their attention reads).
//! 2. **Memory**: shared prefixes occupy one set of KV blocks regardless of
//!    how many running sequences reference them, so higher hit rates admit
//!    more concurrent sequences and raise decode throughput — the effect the
//!    paper isolates in Appendix D.2.
//!
//! Components:
//!
//! * [`ModelSpec`] / [`GpuSpec`] / [`GpuCluster`] / [`Deployment`] — real
//!   architecture shapes (Llama-3 8B/70B, Llama-3.2 1B; L4, 8×L4).
//! * [`PrefixCache`] — paged KV blocks with hash-chain prefix identity,
//!   refcounts, computed-ness tracking and LRU leaf eviction.
//! * [`SimEngine`] — continuous batching with chunked prefill and a
//!   roofline step-time model; produces an [`EngineReport`] with job
//!   completion time and the prefix hit rate (the paper's two headline
//!   serving metrics). [`EngineSession`] drives the same loop
//!   incrementally, macro-stepping steady-state decode runs into a scalar
//!   recurrence; [`SessionReference`] is the frozen per-token loop kept as
//!   the differential oracle.
//! * [`ModelProfile`] / [`SimLlm`] — deterministic answer generation with
//!   positional sensitivity for the accuracy study (Fig. 6).
//!
//! # Example
//!
//! ```
//! use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec,
//!                   SimEngine, SimRequest};
//!
//! // Small prefill budget so requests are scheduled one per step and later
//! // ones can reuse the blocks earlier ones computed.
//! let config = EngineConfig { max_batch_tokens: 64, ..EngineConfig::default() };
//! let engine = SimEngine::new(
//!     Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
//!     config,
//! );
//! // Ten requests sharing a 48-token instruction prefix.
//! let requests: Vec<SimRequest> = (0..10u32)
//!     .map(|i| {
//!         let mut toks: Vec<u32> = (0..48).collect();
//!         toks.extend((0..16).map(|j| 1000 + i * 100 + j));
//!         SimRequest::from_tokens(i as usize, toks, 4)
//!     })
//!     .collect();
//! let report = engine.run(&requests).unwrap();
//! assert_eq!(report.completed, 10);
//! assert!(report.prefix_hit_rate() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cache;
mod engine;
mod fault;
mod group;
mod hardware;
mod labeler;
mod model;
pub mod obs;
mod session;
mod session_reference;

pub use cache::{BlockChain, CacheConfig, CacheInternals, CacheStats, PrefixCache, SeqAlloc};
pub use engine::{Deployment, EngineConfig, EngineError, EngineReport, SimEngine, SimRequest};
pub use fault::{confidence_unit, fault_unit, CONFIDENCE_DRAW};
pub use group::SessionGroup;
pub use hardware::{GpuCluster, GpuSpec};
pub use labeler::{GenRequest, KeyFieldPreference, ModelProfile, OracleLlm, SimLlm};
pub use model::ModelSpec;
pub use session::{percentile, Completion, EngineSession, SessionReport};
pub use session_reference::SessionReference;
