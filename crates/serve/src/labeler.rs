//! Simulated LLM outputs for accuracy experiments (paper §6.4, Fig. 6).
//!
//! The paper's accuracy finding is *behavioural*: reordering fields changes
//! the prompt the model sees, and model answers shift slightly with field
//! position — within ±5% for large models, and up to +14.2% for Llama-3-8B
//! on FEVER, which answers better when the `claim` field lands at the end of
//! the prompt. We reproduce that behaviour with a deterministic labeler:
//!
//! * each row carries a ground-truth label (generated with the dataset);
//! * a [`ModelProfile`] answers correctly with probability
//!   `base_accuracy + order_sensitivity · alignment(key-field position)`;
//! * randomness is a hash of `(seed, row)`, so the *same* row uses the same
//!   underlying draw under both orderings (monotone coupling) — accuracy
//!   deltas between orderings are then exactly the probability shift plus
//!   bootstrap noise, mirroring Fig. 6's methodology.

use serde::{Deserialize, Serialize};

/// Where a model answers best when the semantically key field moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KeyFieldPreference {
    /// Better when the key field is near the end of the prompt (recency) —
    /// the paper observes this for Llama-3-8B on FEVER.
    Late,
    /// Better when the key field leads the prompt (primacy).
    Early,
    /// Insensitive to position.
    #[default]
    None,
}

/// A simulated model's answering behaviour.
///
/// # Examples
///
/// ```
/// use llmqo_serve::{GenRequest, ModelProfile, SimLlm};
/// let model = ModelProfile::llama3_70b().with_base_accuracy(0.9);
/// let labels = ["Yes".to_string(), "No".to_string()];
/// let out = model.generate(&GenRequest {
///     row_id: 3,
///     truth: "Yes",
///     label_space: &labels,
///     key_field_pos: 0.5,
/// });
/// assert!(out == "Yes" || out == "No");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name for reports.
    pub name: String,
    /// Probability of a correct answer with the key field mid-prompt.
    pub base_accuracy: f64,
    /// Maximum accuracy shift attributable to key-field position.
    pub order_sensitivity: f64,
    /// Direction of the positional effect.
    pub preference: KeyFieldPreference,
    /// Seed decorrelating models from each other.
    pub seed: u64,
}

impl ModelProfile {
    /// Llama-3-8B: noticeably order-sensitive, prefers the key field late
    /// (the +14.2% FEVER effect in Fig. 6a).
    pub fn llama3_8b() -> Self {
        ModelProfile {
            name: "Llama-3-8B-Instruct".to_owned(),
            base_accuracy: 0.78,
            order_sensitivity: 0.071,
            preference: KeyFieldPreference::Late,
            seed: 0x8b,
        }
    }

    /// Llama-3-70B: robust to reordering (Fig. 6b, deltas within ±4%).
    pub fn llama3_70b() -> Self {
        ModelProfile {
            name: "Llama-3-70B-Instruct".to_owned(),
            base_accuracy: 0.88,
            order_sensitivity: 0.01,
            preference: KeyFieldPreference::Late,
            seed: 0x70b,
        }
    }

    /// GPT-4o: robust, slight primacy preference (Fig. 6c shows small
    /// negative deltas under GGR, which tends to push key fields later).
    pub fn gpt4o() -> Self {
        ModelProfile {
            name: "GPT-4o".to_owned(),
            base_accuracy: 0.91,
            order_sensitivity: 0.012,
            preference: KeyFieldPreference::Early,
            seed: 0x40,
        }
    }

    /// Returns the profile with a different base accuracy (datasets differ).
    pub fn with_base_accuracy(mut self, base: f64) -> Self {
        self.base_accuracy = base;
        self
    }

    /// Probability of answering correctly given the key field's relative
    /// position in the prompt (`0.0` = first field, `1.0` = last).
    pub fn p_correct(&self, key_field_pos: f64) -> f64 {
        let pos = key_field_pos.clamp(0.0, 1.0);
        let alignment = match self.preference {
            KeyFieldPreference::Late => 2.0 * pos - 1.0,
            KeyFieldPreference::Early => 1.0 - 2.0 * pos,
            KeyFieldPreference::None => 0.0,
        };
        (self.base_accuracy + self.order_sensitivity * alignment).clamp(0.02, 0.995)
    }
}

/// One labeling request.
#[derive(Debug, Clone, Copy)]
pub struct GenRequest<'a> {
    /// Stable row identifier (drives the coupled random draw).
    pub row_id: u64,
    /// The ground-truth answer.
    pub truth: &'a str,
    /// Possible answers for classification queries; empty for free text.
    pub label_space: &'a [String],
    /// Relative position of the semantically key field in the serialized
    /// prompt (`0.0` first … `1.0` last).
    pub key_field_pos: f64,
}

/// Anything that produces an output string for a row.
pub trait SimLlm {
    /// Generates the model's answer for one row.
    fn generate(&self, request: &GenRequest<'_>) -> String;
}

impl SimLlm for ModelProfile {
    fn generate(&self, request: &GenRequest<'_>) -> String {
        let p = self.p_correct(request.key_field_pos);
        let draw = unit_hash(self.seed, request.row_id);
        if draw < p {
            return request.truth.to_owned();
        }
        // Deterministic wrong answer: the next label in the space, or a
        // generic free-text miss.
        if request.label_space.len() > 1 {
            let idx = request
                .label_space
                .iter()
                .position(|l| l == request.truth)
                .unwrap_or(0);
            let offset = 1
                + (mix(self.seed ^ 0xabcd, request.row_id) % (request.label_space.len() as u64 - 1))
                    as usize;
            request.label_space[(idx + offset) % request.label_space.len()].clone()
        } else {
            "UNCLEAR".to_owned()
        }
    }
}

/// A perfectly order-insensitive oracle — answers the ground truth always.
/// Used by tests asserting that reordering preserves query semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleLlm;

impl SimLlm for OracleLlm {
    fn generate(&self, request: &GenRequest<'_>) -> String {
        request.truth.to_owned()
    }
}

/// Uniform draw in `[0, 1)` from a seed/row pair.
fn unit_hash(seed: u64, row: u64) -> f64 {
    (mix(seed, row) >> 11) as f64 / (1u64 << 53) as f64
}

/// SplitMix64-style mixing.
fn mix(seed: u64, row: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(row.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<String> {
        vec!["Yes".to_owned(), "No".to_owned()]
    }

    fn accuracy(profile: &ModelProfile, pos: f64, n: u64) -> f64 {
        let ls = labels();
        let correct = (0..n)
            .filter(|&row| {
                profile.generate(&GenRequest {
                    row_id: row,
                    truth: "Yes",
                    label_space: &ls,
                    key_field_pos: pos,
                }) == "Yes"
            })
            .count();
        correct as f64 / n as f64
    }

    #[test]
    fn deterministic_per_row() {
        let m = ModelProfile::llama3_8b();
        let ls = labels();
        let req = GenRequest {
            row_id: 42,
            truth: "Yes",
            label_space: &ls,
            key_field_pos: 0.2,
        };
        assert_eq!(m.generate(&req), m.generate(&req));
    }

    #[test]
    fn accuracy_tracks_p_correct() {
        let m = ModelProfile::llama3_8b().with_base_accuracy(0.7);
        let measured = accuracy(&m, 0.5, 20_000);
        assert!(
            (measured - 0.7).abs() < 0.02,
            "measured {measured}, expected ≈0.7"
        );
    }

    #[test]
    fn late_preference_improves_with_late_key() {
        let m = ModelProfile::llama3_8b();
        let early = accuracy(&m, 0.0, 20_000);
        let late = accuracy(&m, 1.0, 20_000);
        assert!(
            late > early + 0.10,
            "late {late} should beat early {early} by ≈2·sensitivity (14pp)"
        );
    }

    #[test]
    fn early_preference_mirrors() {
        let m = ModelProfile::gpt4o();
        let early = accuracy(&m, 0.0, 20_000);
        let late = accuracy(&m, 1.0, 20_000);
        assert!(early > late);
        assert!((early - late) < 0.1, "large models are robust");
    }

    #[test]
    fn none_preference_is_flat() {
        let m = ModelProfile {
            preference: KeyFieldPreference::None,
            ..ModelProfile::llama3_70b()
        };
        assert_eq!(m.p_correct(0.0), m.p_correct(1.0));
    }

    #[test]
    fn monotone_coupling_only_flips_marginal_rows() {
        // Moving the key field later can only flip answers in one direction
        // for a Late-preference model: incorrect → correct.
        let m = ModelProfile::llama3_8b();
        let ls = labels();
        for row in 0..2_000 {
            let at = |pos: f64| {
                m.generate(&GenRequest {
                    row_id: row,
                    truth: "Yes",
                    label_space: &ls,
                    key_field_pos: pos,
                }) == "Yes"
            };
            assert!(!at(0.0) || at(1.0), "row {row} flipped backwards");
        }
    }

    #[test]
    fn wrong_answers_stay_in_label_space() {
        // base 0.0 clamps to 0.02, so nearly all answers are wrong.
        let m = ModelProfile::llama3_8b().with_base_accuracy(0.0);
        let ls = vec!["A".to_owned(), "B".to_owned(), "C".to_owned()];
        let mut wrong = 0;
        for row in 0..200 {
            let out = m.generate(&GenRequest {
                row_id: row,
                truth: "A",
                label_space: &ls,
                key_field_pos: 0.5,
            });
            assert!(ls.contains(&out), "answer {out} escaped the label space");
            if out != "A" {
                wrong += 1;
            }
        }
        assert!(wrong >= 180, "only {wrong}/200 wrong at p≈0.02");
    }

    #[test]
    fn free_text_miss_is_marked() {
        let m = ModelProfile::llama3_8b().with_base_accuracy(0.0);
        let out = m.generate(&GenRequest {
            row_id: 1,
            truth: "a summary",
            label_space: &[],
            key_field_pos: 0.5,
        });
        assert_eq!(out, "UNCLEAR");
    }

    #[test]
    fn oracle_is_always_right() {
        let ls = labels();
        for row in 0..50 {
            let out = OracleLlm.generate(&GenRequest {
                row_id: row,
                truth: "No",
                label_space: &ls,
                key_field_pos: row as f64 / 50.0,
            });
            assert_eq!(out, "No");
        }
    }

    #[test]
    fn p_correct_is_clamped() {
        let m = ModelProfile {
            base_accuracy: 1.5,
            ..ModelProfile::llama3_8b()
        };
        assert!(m.p_correct(1.0) <= 0.995);
        let m = ModelProfile {
            base_accuracy: -1.0,
            ..ModelProfile::llama3_8b()
        };
        assert!(m.p_correct(0.0) >= 0.02);
    }
}
