//! GPU and cluster specifications.
//!
//! The paper runs Llama-3-8B on one NVIDIA L4 (GCP `g2-standard-4`) and
//! Llama-3-70B on 8×L4 with tensor parallelism (`g2-standard-48`). The
//! simulator models a GPU by its memory capacity, *effective* memory
//! bandwidth, and *effective* compute throughput — "effective" meaning
//! calibrated end-to-end values (hardware peak × achievable utilization for
//! this serving stack), not datasheet peaks.

use serde::{Deserialize, Serialize};

/// One GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable name.
    pub name: String,
    /// HBM/GDDR capacity in bytes.
    pub mem_bytes: u64,
    /// Effective memory bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Effective dense compute throughput in FLOPs/second.
    pub effective_flops: f64,
}

impl GpuSpec {
    /// NVIDIA L4: 24 GB, ~300 GB/s GDDR6 (≈240 GB/s effective), 121 TFLOPs
    /// peak fp16 of which vLLM-class serving realizes roughly 11% on small
    /// batches — calibrated so that Llama-3-8B prefill lands near the
    /// paper's observed job times (≈800 tokens/s/GPU end to end).
    pub fn l4() -> Self {
        GpuSpec {
            name: "NVIDIA L4".to_owned(),
            mem_bytes: 24 * (1 << 30),
            mem_bw: 240e9,
            effective_flops: 13.2e12,
        }
    }
}

/// A tensor-parallel group of identical GPUs acting as one serving engine.
///
/// # Examples
///
/// ```
/// use llmqo_serve::{GpuCluster, GpuSpec};
/// let single = GpuCluster::single(GpuSpec::l4());
/// let tp8 = GpuCluster::tensor_parallel(GpuSpec::l4(), 8);
/// assert_eq!(tp8.total_mem_bytes(), 8 * single.total_mem_bytes());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuCluster {
    /// The GPU model.
    pub gpu: GpuSpec,
    /// Number of GPUs in the tensor-parallel group.
    pub count: u32,
}

impl GpuCluster {
    /// A single-GPU deployment.
    pub fn single(gpu: GpuSpec) -> Self {
        GpuCluster { gpu, count: 1 }
    }

    /// A tensor-parallel deployment over `count` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn tensor_parallel(gpu: GpuSpec, count: u32) -> Self {
        assert!(count > 0, "cluster needs at least one GPU");
        GpuCluster { gpu, count }
    }

    /// Total memory across the group.
    pub fn total_mem_bytes(&self) -> u64 {
        self.gpu.mem_bytes * u64::from(self.count)
    }

    /// Aggregate effective bandwidth (weights and KV are sharded under TP,
    /// so reads proceed in parallel).
    pub fn total_mem_bw(&self) -> f64 {
        self.gpu.mem_bw * f64::from(self.count)
    }

    /// Aggregate effective compute, discounted 7.5% per extra GPU for
    /// tensor-parallel collectives (all-reduce per layer), floored at 60%.
    pub fn total_flops(&self) -> f64 {
        let scale = (1.0 - 0.075 * f64::from(self.count - 1)).max(0.6);
        self.gpu.effective_flops * f64::from(self.count) * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l4_shape() {
        let l4 = GpuSpec::l4();
        assert_eq!(l4.mem_bytes, 25_769_803_776);
        assert!(l4.effective_flops > 1e12);
    }

    #[test]
    fn single_cluster_passthrough() {
        let c = GpuCluster::single(GpuSpec::l4());
        assert_eq!(c.total_mem_bytes(), GpuSpec::l4().mem_bytes);
        assert_eq!(c.total_flops(), GpuSpec::l4().effective_flops);
        assert_eq!(c.total_mem_bw(), GpuSpec::l4().mem_bw);
    }

    #[test]
    fn tp_scales_sublinearly_in_compute() {
        let one = GpuCluster::single(GpuSpec::l4()).total_flops();
        let eight = GpuCluster::tensor_parallel(GpuSpec::l4(), 8).total_flops();
        assert!(eight > 4.0 * one, "TP should still help a lot");
        assert!(eight < 8.0 * one, "TP overhead must be modeled");
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = GpuCluster::tensor_parallel(GpuSpec::l4(), 0);
    }
}
