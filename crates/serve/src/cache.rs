//! Paged KV cache with hash-chain prefix reuse (the vLLM/SGLang stand-in).
//!
//! Tokens are grouped into fixed-size **blocks** (16 tokens by default, as in
//! vLLM). A block's identity is the hash of its content chained with its
//! parent block's hash, so equal *prefixes* — not just equal blocks — map to
//! equal chains, exactly like vLLM's automatic prefix caching. Properties
//! modeled:
//!
//! * **Sharing**: admitting a sequence whose prefix chain already exists
//!   reuses those blocks (refcounted), consuming no new memory.
//! * **Computed-ness**: a shared block only saves *compute* once some
//!   request's prefill has actually produced it; concurrent requests with the
//!   same cold prefix share memory but both pay the FLOPs.
//! * **Eviction**: LRU over refcount-0 *leaf* blocks (evicting an interior
//!   block would orphan its children's chain identity).
//! * **Private blocks**: the prompt's partial tail block and all decode
//!   (generated) tokens are per-sequence and never shared.
//!
//! Disabling the cache (`enabled = false`) gives the paper's *No Cache*
//! baseline: every block is private and every token is computed.

use llmqo_tokenizer::TokenId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Configuration of the KV block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Tokens per KV block.
    pub block_size: usize,
    /// Total block capacity (derived from GPU memory minus weights).
    pub capacity_blocks: usize,
    /// Whether prefix sharing is enabled.
    pub enabled: bool,
    /// Whether a block that exists but has not finished prefill counts as a
    /// compute hit. `true` models SGLang RadixAttention / cascade-inference
    /// style serving where concurrent same-prefix requests are deduplicated
    /// (the setting the paper's measured hit rates imply); `false` models
    /// strict vLLM-v0 semantics where only *computed* blocks are reused.
    pub share_in_flight: bool,
}

/// Allocation handle for one admitted sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqAlloc {
    /// Hashes of the sequence's full prompt blocks, in chain order.
    chain: Vec<u64>,
    /// Private (unshared) blocks reserved: prompt tail + decode tokens.
    private_blocks: usize,
    /// Prompt tokens whose blocks were already computed at admission.
    pub cached_tokens: usize,
    /// Total prompt tokens.
    pub prompt_tokens: usize,
}

/// Aggregate statistics over a cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Sequences admitted.
    pub admitted: u64,
    /// Prompt tokens across admitted sequences.
    pub total_prompt_tokens: u64,
    /// Prompt tokens served from computed cached blocks.
    pub cached_tokens: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Peak simultaneous blocks in use (shared + private).
    pub peak_blocks: usize,
}

#[derive(Debug)]
struct BlockEntry {
    parent: Option<u64>,
    refcount: u32,
    children: u32,
    computed: bool,
    last_used: u64,
}

/// The paged prefix cache. See the [module docs](self) for semantics.
#[derive(Debug)]
pub struct PrefixCache {
    config: CacheConfig,
    blocks: HashMap<u64, BlockEntry>,
    /// Blocks with `refcount == 0 && children == 0`, ordered by last use.
    evictable: BTreeSet<(u64, u64)>,
    /// Count of blocks with `refcount == 0`. Because a sequence references
    /// its *entire* chain, a refcount-0 block can only have refcount-0
    /// descendants, so every such block is reclaimable (in leaf-first
    /// cascade order).
    rc0_blocks: usize,
    private_blocks: usize,
    clock: u64,
    stats: CacheStats,
}

impl PrefixCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.block_size > 0, "block_size must be positive");
        PrefixCache {
            config,
            blocks: HashMap::new(),
            evictable: BTreeSet::new(),
            rc0_blocks: 0,
            private_blocks: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Blocks currently unoccupied.
    pub fn free_blocks(&self) -> usize {
        self.config
            .capacity_blocks
            .saturating_sub(self.blocks.len() + self.private_blocks)
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of prompt tokens of `tokens` that would be served from
    /// already-computed cached blocks right now (no state change).
    pub fn probe(&self, tokens: &[TokenId]) -> usize {
        if !self.config.enabled {
            return 0;
        }
        let bs = self.config.block_size;
        let mut parent: Option<u64> = None;
        let mut cached = 0usize;
        for block in tokens.chunks_exact(bs) {
            let h = chain_hash(parent, block);
            match self.blocks.get(&h) {
                Some(e) if e.computed || self.config.share_in_flight => cached += bs,
                _ => break,
            }
            parent = Some(h);
        }
        cached
    }

    /// Tries to admit a sequence with the given prompt and a reservation for
    /// `decode_tokens` generated tokens. Returns `None` if memory does not
    /// allow it right now (the caller should retry after completions).
    pub fn try_admit(&mut self, tokens: &[TokenId], decode_tokens: usize) -> Option<SeqAlloc> {
        let bs = self.config.block_size;
        let prompt_tokens = tokens.len();
        self.clock += 1;

        if !self.config.enabled {
            let needed = (prompt_tokens + decode_tokens).div_ceil(bs);
            if needed > self.free_blocks() {
                return None;
            }
            self.private_blocks += needed;
            self.note_admission(prompt_tokens, 0);
            return Some(SeqAlloc {
                chain: Vec::new(),
                private_blocks: needed,
                cached_tokens: 0,
                prompt_tokens,
            });
        }

        // Walk the chain of full prompt blocks.
        let full = prompt_tokens / bs;
        let tail = prompt_tokens % bs;
        let mut chain = Vec::with_capacity(full);
        let mut exists = Vec::with_capacity(full);
        let mut parent: Option<u64> = None;
        let mut missing = 0usize;
        let mut revivable = 0usize; // existing rc==0 blocks in our chain (must not evict)
        let mut cached_tokens = 0usize;
        let mut prefix_computed = true;
        for block in tokens.chunks_exact(bs) {
            let h = chain_hash(parent, block);
            match self.blocks.get(&h) {
                Some(e) => {
                    exists.push(true);
                    if e.refcount == 0 {
                        revivable += 1;
                    }
                    if prefix_computed && (e.computed || self.config.share_in_flight) {
                        cached_tokens += bs;
                    } else {
                        prefix_computed = false;
                    }
                }
                None => {
                    exists.push(false);
                    missing += 1;
                    prefix_computed = false;
                }
            }
            chain.push(h);
            parent = Some(h);
        }
        let private = (tail + decode_tokens).div_ceil(bs);
        // Every rc==0 block is reclaimable via leaf-first cascade, except the
        // ones in our own chain, which we are about to revive.
        let supply = self.free_blocks() + self.rc0_blocks.saturating_sub(revivable);
        if missing + private > supply {
            return None;
        }

        // Phase A: pin every existing chain block so evictions during phase B
        // cannot touch them.
        for (&h, &present) in chain.iter().zip(&exists) {
            if !present {
                continue;
            }
            let e = self.blocks.get_mut(&h).expect("walked above");
            if e.refcount == 0 {
                self.rc0_blocks -= 1;
                if e.children == 0 {
                    self.evictable.remove(&(e.last_used, h));
                }
            }
            e.refcount += 1;
            e.last_used = self.clock;
        }
        // Phase B: create missing blocks, evicting LRU leaves as needed.
        for (i, (&h, &present)) in chain.iter().zip(&exists).enumerate() {
            if present {
                continue;
            }
            self.make_room();
            let chain_parent = if i == 0 { None } else { Some(chain[i - 1]) };
            self.blocks.insert(
                h,
                BlockEntry {
                    parent: chain_parent,
                    refcount: 1,
                    children: 0,
                    computed: false,
                    last_used: self.clock,
                },
            );
            if let Some(p) = chain_parent {
                self.blocks
                    .get_mut(&p)
                    .expect("parent is pinned or was created earlier")
                    .children += 1;
            }
        }
        while self.free_blocks() < private {
            self.evict_one().expect("supply was checked before commit");
        }
        self.private_blocks += private;
        self.note_admission(prompt_tokens, cached_tokens);
        Some(SeqAlloc {
            chain,
            private_blocks: private,
            cached_tokens,
            prompt_tokens,
        })
    }

    /// Marks the sequence's prompt blocks as computed up to
    /// `prefilled_tokens`, making them compute-reusable by later admissions.
    pub fn mark_computed(&mut self, alloc: &SeqAlloc, prefilled_tokens: usize) {
        let bs = self.config.block_size;
        for &h in alloc.chain.iter().take(prefilled_tokens / bs) {
            if let Some(e) = self.blocks.get_mut(&h) {
                e.computed = true;
            }
        }
    }

    /// Releases a completed sequence: dereferences its shared chain (blocks
    /// stay cached until evicted) and frees its private blocks.
    pub fn release(&mut self, alloc: SeqAlloc) {
        self.clock += 1;
        for &h in alloc.chain.iter().rev() {
            let e = self
                .blocks
                .get_mut(&h)
                .expect("released chain block must exist");
            debug_assert!(e.refcount > 0, "double release");
            e.refcount -= 1;
            e.last_used = self.clock;
            if e.refcount == 0 {
                self.rc0_blocks += 1;
                if e.children == 0 {
                    self.evictable.insert((e.last_used, h));
                }
            }
        }
        self.private_blocks = self.private_blocks.saturating_sub(alloc.private_blocks);
    }

    /// Evicts one LRU leaf block. Returns `None` if nothing is evictable.
    fn evict_one(&mut self) -> Option<u64> {
        let &(stamp, h) = self.evictable.iter().next()?;
        self.evictable.remove(&(stamp, h));
        let entry = self.blocks.remove(&h).expect("evictable block exists");
        self.rc0_blocks -= 1;
        self.stats.evictions += 1;
        if let Some(p) = entry.parent {
            if let Some(pe) = self.blocks.get_mut(&p) {
                pe.children -= 1;
                if pe.refcount == 0 && pe.children == 0 {
                    self.evictable.insert((pe.last_used, p));
                }
            }
        }
        Some(h)
    }

    /// Frees one block slot if none is free.
    fn make_room(&mut self) {
        if self.free_blocks() == 0 {
            self.evict_one()
                .expect("caller verified supply before committing");
        }
    }

    fn note_admission(&mut self, prompt_tokens: usize, cached_tokens: usize) {
        self.stats.admitted += 1;
        self.stats.total_prompt_tokens += prompt_tokens as u64;
        self.stats.cached_tokens += cached_tokens as u64;
        self.stats.peak_blocks = self
            .stats
            .peak_blocks
            .max(self.blocks.len() + self.private_blocks);
    }
}

/// Hash chaining a block's tokens onto its parent prefix hash.
fn chain_hash(parent: Option<u64>, tokens: &[TokenId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let p = parent.unwrap_or(0x9e37_79b9_7f4a_7c15);
    for byte in p.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
    }
    for &t in tokens {
        for byte in t.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strict (vLLM-v0) semantics: only computed blocks are compute hits.
    fn cache(capacity: usize) -> PrefixCache {
        PrefixCache::new(CacheConfig {
            block_size: 4,
            capacity_blocks: capacity,
            enabled: true,
            share_in_flight: false,
        })
    }

    /// Dedup (SGLang/cascade) semantics: existing blocks are compute hits.
    fn dedup_cache(capacity: usize) -> PrefixCache {
        PrefixCache::new(CacheConfig {
            block_size: 4,
            capacity_blocks: capacity,
            enabled: true,
            share_in_flight: true,
        })
    }

    fn toks(n: usize, salt: u32) -> Vec<TokenId> {
        (0..n as u32).map(|i| i * 7 + salt).collect()
    }

    #[test]
    fn first_admission_is_cold() {
        let mut c = cache(16);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(a.cached_tokens, 0);
        assert_eq!(a.prompt_tokens, 8);
        assert_eq!(c.free_blocks(), 16 - 2);
    }

    #[test]
    fn second_identical_admission_shares_memory_but_not_compute_until_marked() {
        let mut c = cache(16);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        // Not yet prefilled: shares memory (no new blocks), zero compute hit.
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.cached_tokens, 0);
        assert_eq!(c.free_blocks(), 16 - 2, "memory fully shared");
        // After prefill completes, a third admission hits.
        c.mark_computed(&a, 8);
        let d = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(d.cached_tokens, 8);
        c.release(a);
        c.release(b);
        c.release(d);
    }

    #[test]
    fn in_flight_sharing_dedups_concurrent_prefixes() {
        let mut c = dedup_cache(16);
        let _a = c.try_admit(&toks(8, 0), 0).unwrap();
        // Under cascade/RadixAttention semantics the second request reuses
        // the in-flight blocks immediately.
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.cached_tokens, 8);
        assert_eq!(c.probe(&toks(8, 0)), 8);
        // A genuinely new prefix still misses.
        let d = c.try_admit(&toks(8, 9), 0).unwrap();
        assert_eq!(d.cached_tokens, 0);
    }

    #[test]
    fn partial_prefix_hits_only_shared_blocks() {
        let mut c = cache(32);
        let mut first = toks(8, 0);
        let a = c.try_admit(&first, 0).unwrap();
        c.mark_computed(&a, 8);
        // Same first block (4 tokens), different second block.
        first[5] ^= 0xffff;
        let b = c.try_admit(&first, 0).unwrap();
        assert_eq!(b.cached_tokens, 4);
    }

    #[test]
    fn tail_tokens_are_private() {
        let mut c = cache(16);
        // 10 tokens = 2 full blocks + 2-token tail; tail is private.
        let a = c.try_admit(&toks(10, 0), 0).unwrap();
        assert_eq!(a.prompt_tokens, 10);
        assert_eq!(c.free_blocks(), 16 - 3);
        c.mark_computed(&a, 10);
        let b = c.try_admit(&toks(10, 0), 0).unwrap();
        // Only the 8 full-block tokens can hit.
        assert_eq!(b.cached_tokens, 8);
    }

    #[test]
    fn decode_reservation_counts() {
        let mut c = cache(4);
        // 4-token prompt (1 block) + 9 decode tokens → 3 private blocks.
        let a = c.try_admit(&toks(4, 0), 9).unwrap();
        assert_eq!(c.free_blocks(), 0);
        c.release(a);
        // Shared block lingers (evictable); private freed.
        assert_eq!(c.free_blocks(), 3);
    }

    #[test]
    fn admission_fails_when_full_and_unreclaimable() {
        let mut c = cache(2);
        let _a = c.try_admit(&toks(8, 0), 0).unwrap();
        assert!(c.try_admit(&toks(8, 1), 0).is_none());
    }

    #[test]
    fn eviction_reclaims_released_chains_lru_first() {
        let mut c = cache(4);
        let a = c.try_admit(&toks(8, 0), 0).unwrap(); // blocks 1,2
        let b = c.try_admit(&toks(8, 1), 0).unwrap(); // blocks 3,4
        c.release(a); // oldest, evictable
        c.release(b);
        // New 2-block sequence must evict the LRU leaves (from a's chain).
        let d = c.try_admit(&toks(8, 2), 0).unwrap();
        assert_eq!(d.prompt_tokens, 8);
        assert!(c.stats().evictions >= 2);
    }

    #[test]
    fn refcounted_blocks_are_never_evicted() {
        let mut c = cache(4);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.mark_computed(&a, 8);
        // Fill the remaining 2 blocks.
        let b = c.try_admit(&toks(8, 1), 0).unwrap();
        // No free space, nothing evictable (both chains referenced).
        assert!(c.try_admit(&toks(8, 2), 0).is_none());
        // a's blocks survive: re-admitting a's prompt still hits.
        let probe = c.probe(&toks(8, 0));
        assert_eq!(probe, 8);
        c.release(b);
    }

    #[test]
    fn revived_chain_blocks_are_not_double_counted_as_supply() {
        let mut c = cache(2);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.release(a); // both blocks rc=0, leaf+parent: one evictable (leaf)
                      // Re-admitting the same prompt must revive both blocks, not evict
                      // them out from under itself.
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.prompt_tokens, 8);
        assert_eq!(c.free_blocks(), 0);
    }

    #[test]
    fn interior_blocks_not_evicted_before_children() {
        let mut c = cache(4);
        let a = c.try_admit(&toks(16, 0), 0).unwrap(); // 4 blocks
        c.release(a);
        // Only the deepest block is an evictable leaf; eviction cascades.
        let b = c.try_admit(&toks(8, 1), 0).unwrap(); // needs 2 blocks
        assert_eq!(b.prompt_tokens, 8);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn disabled_cache_never_hits_and_uses_private_blocks() {
        let mut c = PrefixCache::new(CacheConfig {
            block_size: 4,
            capacity_blocks: 8,
            enabled: false,
            share_in_flight: true,
        });
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.mark_computed(&a, 8);
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.cached_tokens, 0);
        assert_eq!(c.probe(&toks(8, 0)), 0);
        assert_eq!(c.free_blocks(), 8 - 4);
        c.release(a);
        assert_eq!(c.free_blocks(), 8 - 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = cache(16);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.mark_computed(&a, 8);
        let _b = c.try_admit(&toks(8, 0), 0).unwrap();
        let s = c.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.total_prompt_tokens, 16);
        assert_eq!(s.cached_tokens, 8);
        assert!(s.peak_blocks >= 2);
    }

    #[test]
    fn probe_matches_admit_cached_tokens() {
        let mut c = cache(32);
        let a = c.try_admit(&toks(12, 3), 0).unwrap();
        c.mark_computed(&a, 12);
        let p = c.probe(&toks(12, 3));
        let b = c.try_admit(&toks(12, 3), 0).unwrap();
        assert_eq!(p, b.cached_tokens);
    }

    #[test]
    fn empty_prompt_is_fine() {
        let mut c = cache(4);
        let a = c.try_admit(&[], 3).unwrap();
        assert_eq!(a.prompt_tokens, 0);
        assert_eq!(a.cached_tokens, 0);
        assert_eq!(a.private_blocks, 1);
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        let _ = PrefixCache::new(CacheConfig {
            block_size: 0,
            capacity_blocks: 1,
            enabled: true,
            share_in_flight: true,
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A randomized schedule of admissions (with varying prefix sharing,
    /// tails, decode reservations) and immediate/deferred releases.
    fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, bool)>> {
        proptest::collection::vec((0u8..6, 0u8..40, 0u8..12, proptest::bool::ANY), 1..80)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Accounting invariants under arbitrary admit/release interleaving:
        /// usage never exceeds capacity, cached never exceeds total tokens,
        /// and releasing everything frees all private blocks.
        #[test]
        fn accounting_invariants(ops in ops_strategy(), capacity in 4usize..64) {
            let mut cache = PrefixCache::new(CacheConfig {
                block_size: 4,
                capacity_blocks: capacity,
                enabled: true,
                share_in_flight: true,
            });
            let mut live: Vec<SeqAlloc> = Vec::new();
            for (family, tail, decode, release_now) in ops {
                let mut tokens: Vec<u32> = (0..12u32).map(|i| u32::from(family) * 100 + i).collect();
                tokens.extend((0..u32::from(tail)).map(|i| 500_000 + u32::from(family) * 7919 + i));
                if let Some(alloc) = cache.try_admit(&tokens, usize::from(decode)) {
                    prop_assert!(alloc.cached_tokens <= alloc.prompt_tokens);
                    cache.mark_computed(&alloc, tokens.len());
                    if release_now {
                        cache.release(alloc);
                    } else {
                        live.push(alloc);
                    }
                }
                prop_assert!(cache.free_blocks() <= capacity);
                let s = cache.stats();
                prop_assert!(s.cached_tokens <= s.total_prompt_tokens);
                prop_assert!(s.peak_blocks <= capacity);
            }
            for alloc in live.drain(..) {
                cache.release(alloc);
            }
            // All blocks are now unreferenced: a full-capacity admission of a
            // fresh sequence must succeed by evicting everything.
            let fresh: Vec<u32> = (0..(capacity * 4) as u32).map(|i| 900_000 + i).collect();
            prop_assert!(cache.try_admit(&fresh, 0).is_some());
        }

        /// Probing never mutates: two probes agree, and a probe agrees with
        /// what a subsequent admission reports as cached.
        #[test]
        fn probe_is_pure_and_consistent(tail in 0u8..32) {
            let mut cache = PrefixCache::new(CacheConfig {
                block_size: 4,
                capacity_blocks: 256,
                enabled: true,
                share_in_flight: true,
            });
            let mut tokens: Vec<u32> = (0..16).collect();
            tokens.extend((0..u32::from(tail)).map(|i| 70_000 + i));
            let a = cache.try_admit(&tokens, 0).unwrap();
            cache.mark_computed(&a, tokens.len());
            let p1 = cache.probe(&tokens);
            let p2 = cache.probe(&tokens);
            prop_assert_eq!(p1, p2);
            let b = cache.try_admit(&tokens, 0).unwrap();
            prop_assert_eq!(p1, b.cached_tokens);
            // Full blocks only.
            prop_assert_eq!(b.cached_tokens % 4, 0);
            prop_assert_eq!(b.cached_tokens, tokens.len() / 4 * 4);
        }
    }
}
