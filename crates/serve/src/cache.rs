//! Paged KV cache with hash-chain prefix reuse (the vLLM/SGLang stand-in).
//!
//! Tokens are grouped into fixed-size **blocks** (16 tokens by default, as in
//! vLLM). A block's identity is the hash of its content chained with its
//! parent block's hash, so equal *prefixes* — not just equal blocks — map to
//! equal chains, exactly like vLLM's automatic prefix caching. Properties
//! modeled:
//!
//! * **Sharing**: admitting a sequence whose prefix chain already exists
//!   reuses those blocks (refcounted), consuming no new memory.
//! * **Computed-ness**: a shared block only saves *compute* once some
//!   request's prefill has actually produced it; concurrent requests with the
//!   same cold prefix share memory but both pay the FLOPs.
//! * **Eviction**: LRU over refcount-0 *leaf* blocks (evicting an interior
//!   block would orphan its children's chain identity).
//! * **Private blocks**: the prompt's partial tail block and all decode
//!   (generated) tokens are per-sequence and never shared.
//!
//! Disabling the cache (`enabled = false`) gives the paper's *No Cache*
//! baseline: every block is private and every token is computed.

use llmqo_tokenizer::TokenId;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for the block map. Block keys are already FNV-chained
/// 64-bit hashes produced by the cache itself — no untrusted input reaches
/// this map — so SipHash's flooding resistance buys nothing and its cost
/// dominates cached admissions on large jobs.
#[derive(Debug, Default, Clone)]
struct BlockKeyHasher {
    hash: u64,
}

impl Hasher for BlockKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the u64 block map).
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type BlockMap = HashMap<u64, BlockEntry, BuildHasherDefault<BlockKeyHasher>>;

/// Configuration of the KV block cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Tokens per KV block.
    pub block_size: usize,
    /// Total block capacity (derived from GPU memory minus weights).
    pub capacity_blocks: usize,
    /// Whether prefix sharing is enabled.
    pub enabled: bool,
    /// Whether a block that exists but has not finished prefill counts as a
    /// compute hit. `true` models SGLang RadixAttention / cascade-inference
    /// style serving where concurrent same-prefix requests are deduplicated
    /// (the setting the paper's measured hit rates imply); `false` models
    /// strict vLLM-v0 semantics where only *computed* blocks are reused.
    pub share_in_flight: bool,
}

/// A prompt's prefix-cache identity, precomputed once: the chain hashes of
/// its full blocks plus the total prompt length.
///
/// Flattening a fragment list and hashing it is O(prompt length); a request
/// stuck at the head of the admission queue used to pay that cost on every
/// scheduling step it waited. Computing the chain once at enqueue time and
/// handing it to [`PrefixCache::probe_chain`] / [`PrefixCache::try_admit_chain`]
/// makes every later cache operation a walk over `prompt_len / block_size`
/// precomputed hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockChain {
    /// Chain hashes of the prompt's full blocks, in chain order.
    chain: Vec<u64>,
    /// Total prompt length in tokens (full blocks + tail).
    prompt_tokens: usize,
}

impl BlockChain {
    /// Hashes a flat token slice into its block chain.
    pub fn from_tokens(block_size: usize, tokens: &[TokenId]) -> Self {
        Self::from_fragments(block_size, std::iter::once(tokens))
    }

    /// Hashes a logically concatenated fragment list into its block chain
    /// without materializing the flat prompt (blocks may span fragment
    /// boundaries; the hash is identical to hashing the flattened tokens).
    pub fn from_fragments<'a>(
        block_size: usize,
        fragments: impl IntoIterator<Item = &'a [TokenId]>,
    ) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        let mut chain = Vec::new();
        let mut parent = None;
        let mut h = chain_seed(parent);
        let mut in_block = 0usize;
        let mut prompt_tokens = 0usize;
        for fragment in fragments {
            prompt_tokens += fragment.len();
            for &t in fragment {
                chain_mix_token(&mut h, t);
                in_block += 1;
                if in_block == block_size {
                    chain.push(h);
                    parent = Some(h);
                    h = chain_seed(parent);
                    in_block = 0;
                }
            }
        }
        BlockChain {
            chain,
            prompt_tokens,
        }
    }

    /// A chain that records only the prompt length — for **disabled** caches,
    /// which never look at block identity. Passing an unhashed chain to an
    /// enabled cache would report every block as missing.
    pub fn unhashed(prompt_tokens: usize) -> Self {
        BlockChain {
            chain: Vec::new(),
            prompt_tokens,
        }
    }

    /// Total prompt length in tokens.
    pub fn prompt_tokens(&self) -> usize {
        self.prompt_tokens
    }

    /// The full-block chain hashes, in chain order.
    pub fn blocks(&self) -> &[u64] {
        &self.chain
    }
}

/// Allocation handle for one admitted sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqAlloc {
    /// Hashes of the sequence's full prompt blocks, in chain order.
    chain: Vec<u64>,
    /// Private (unshared) blocks reserved: prompt tail + decode tokens.
    private_blocks: usize,
    /// Prompt tokens whose blocks were already computed at admission.
    pub cached_tokens: usize,
    /// Total prompt tokens.
    pub prompt_tokens: usize,
}

/// Aggregate statistics over a cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Sequences admitted.
    pub admitted: u64,
    /// Prompt tokens across admitted sequences.
    pub total_prompt_tokens: u64,
    /// Prompt tokens served from computed cached blocks.
    pub cached_tokens: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Peak simultaneous blocks in use (shared + private).
    pub peak_blocks: usize,
}

/// Internal bookkeeping counters over a cache's lifetime — the *cost* side
/// of the cache, as opposed to [`CacheStats`]' *outcome* side.
///
/// Deliberately **not** part of [`CacheStats`]: the stats struct is
/// byte-compared by every differential oracle, and these counters measure
/// implementation work (map probes, lazy-heap churn) that optimizations
/// are allowed to change. They exist to turn the ROADMAP's "cached-sim
/// bottleneck is the cache itself" hypothesis into numbers; the `perf_trace`
/// bench publishes them into the `llmqo-obs` registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheInternals {
    /// Block-map lookups on the probe/admission read paths
    /// (`probe_chain` + `admission_plan` chain walks).
    pub block_map_probes: u64,
    /// Stale lazy-invalidation heap entries skipped by `evict_one` or
    /// dropped by the periodic heap compaction.
    pub heap_stale_invalidations: u64,
    /// Calls to [`PrefixCache::mark_computed`] (one per prefill chunk that
    /// landed, the per-step cache write traffic).
    pub mark_computed_calls: u64,
    /// Blocks evicted (same number as [`CacheStats::evictions`], repeated
    /// here so one struct carries the whole internals picture).
    pub evictions: u64,
}

/// Outcome of the shared enabled-cache admission arithmetic
/// (`PrefixCache::admission_plan`).
struct AdmissionPlan {
    /// Prompt tokens that would be served from cache at admission.
    cached_tokens: usize,
    /// Private blocks the sequence would reserve (prompt tail + decode).
    private: usize,
    /// Whether the supply check passes right now.
    fits: bool,
}

#[derive(Debug)]
struct BlockEntry {
    parent: Option<u64>,
    refcount: u32,
    children: u32,
    computed: bool,
    last_used: u64,
}

/// The paged prefix cache. See the `cache` module docs for semantics.
#[derive(Debug)]
pub struct PrefixCache {
    config: CacheConfig,
    blocks: BlockMap,
    /// Min-heap of `(last_used, hash)` candidates for blocks that entered
    /// the `refcount == 0 && children == 0` state. Entries are invalidated
    /// **lazily**: a revived or re-stamped block simply leaves a stale entry
    /// behind, and [`evict_one`](PrefixCache::evict_one) skips any entry
    /// whose block no longer matches it. Valid entries are exactly the
    /// blocks an ordered set would hold, so eviction order (LRU leaf,
    /// hash-tie-broken) is unchanged — only the bookkeeping cost drops.
    evictable: BinaryHeap<Reverse<(u64, u64)>>,
    /// Count of blocks with `refcount == 0`. Because a sequence references
    /// its *entire* chain, a refcount-0 block can only have refcount-0
    /// descendants, so every such block is reclaimable (in leaf-first
    /// cascade order).
    rc0_blocks: usize,
    private_blocks: usize,
    clock: u64,
    stats: CacheStats,
    /// Read-path lookup count ([`CacheInternals::block_map_probes`]); a
    /// `Cell` because `probe_chain`/`admission_plan` are `&self`.
    probes: Cell<u64>,
    /// Stale heap entries skipped/compacted away
    /// ([`CacheInternals::heap_stale_invalidations`]).
    stale: Cell<u64>,
    /// [`mark_computed`](PrefixCache::mark_computed) call count.
    marks: Cell<u64>,
}

impl PrefixCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.block_size > 0, "block_size must be positive");
        PrefixCache {
            config,
            blocks: HashMap::default(),
            evictable: BinaryHeap::new(),
            rc0_blocks: 0,
            private_blocks: 0,
            clock: 0,
            stats: CacheStats::default(),
            probes: Cell::new(0),
            stale: Cell::new(0),
            marks: Cell::new(0),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Blocks currently unoccupied.
    pub fn free_blocks(&self) -> usize {
        self.config
            .capacity_blocks
            .saturating_sub(self.blocks.len() + self.private_blocks)
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Lifetime internal bookkeeping counters (see [`CacheInternals`]).
    pub fn internals(&self) -> CacheInternals {
        CacheInternals {
            block_map_probes: self.probes.get(),
            heap_stale_invalidations: self.stale.get(),
            mark_computed_calls: self.marks.get(),
            evictions: self.stats.evictions,
        }
    }

    /// Number of prompt tokens of `tokens` that would be served from
    /// already-computed cached blocks right now (no state change).
    ///
    /// Convenience wrapper over [`probe_chain`](PrefixCache::probe_chain)
    /// that hashes `tokens` on the fly.
    pub fn probe(&self, tokens: &[TokenId]) -> usize {
        if !self.config.enabled {
            return 0;
        }
        self.probe_chain(&BlockChain::from_tokens(self.config.block_size, tokens))
    }

    /// [`probe`](PrefixCache::probe) over a precomputed [`BlockChain`]: no
    /// hashing, just a walk over the chain. Pure: never mutates cache state.
    pub fn probe_chain(&self, chain: &BlockChain) -> usize {
        if !self.config.enabled {
            return 0;
        }
        let bs = self.config.block_size;
        let mut cached = 0usize;
        for h in chain.blocks() {
            self.probes.set(self.probes.get() + 1);
            match self.blocks.get(h) {
                Some(e) if e.computed || self.config.share_in_flight => cached += bs,
                _ => break,
            }
        }
        cached
    }

    /// Whether [`try_admit_chain`](PrefixCache::try_admit_chain) would
    /// succeed right now, without mutating anything (not even the LRU
    /// clock). Admission supply changes only when sequences are admitted or
    /// released, so between such events one check answers for every
    /// scheduling step — the hook the engine's macro-stepper uses to prove a
    /// blocked head-of-queue request stays blocked. Shares the exact
    /// arithmetic of the real admission via
    /// `admission_plan`.
    pub fn can_admit_chain(&self, chain: &BlockChain, decode_tokens: usize) -> bool {
        if !self.config.enabled {
            let needed = (chain.prompt_tokens() + decode_tokens).div_ceil(self.config.block_size);
            return needed <= self.free_blocks();
        }
        self.admission_plan(chain, decode_tokens).fits
    }

    /// The enabled-cache admission arithmetic, shared verbatim by
    /// [`try_admit_chain`](PrefixCache::try_admit_chain) (which commits it)
    /// and [`can_admit_chain`](PrefixCache::can_admit_chain) (which only
    /// reads `fits`) — macro-stepping correctness depends on the two never
    /// disagreeing, so there is exactly one copy of the rule.
    fn admission_plan(&self, chain: &BlockChain, decode_tokens: usize) -> AdmissionPlan {
        let bs = self.config.block_size;
        let mut missing = 0usize;
        let mut revivable = 0usize; // existing rc==0 blocks in our chain (must not evict)
        let mut cached_tokens = 0usize;
        let mut prefix_computed = true;
        for h in chain.blocks() {
            self.probes.set(self.probes.get() + 1);
            match self.blocks.get(h) {
                Some(e) => {
                    if e.refcount == 0 {
                        revivable += 1;
                    }
                    if prefix_computed && (e.computed || self.config.share_in_flight) {
                        cached_tokens += bs;
                    } else {
                        prefix_computed = false;
                    }
                }
                None => {
                    missing += 1;
                    prefix_computed = false;
                }
            }
        }
        let tail = chain.prompt_tokens() % bs;
        let private = (tail + decode_tokens).div_ceil(bs);
        // Every rc==0 block is reclaimable via leaf-first cascade, except
        // the ones in our own chain, which an admission would revive.
        let supply = self.free_blocks() + self.rc0_blocks.saturating_sub(revivable);
        AdmissionPlan {
            cached_tokens,
            private,
            fits: missing + private <= supply,
        }
    }

    /// Tries to admit a sequence with the given prompt and a reservation for
    /// `decode_tokens` generated tokens. Returns `None` if memory does not
    /// allow it right now (the caller should retry after completions).
    ///
    /// Convenience wrapper over
    /// [`try_admit_chain`](PrefixCache::try_admit_chain) that hashes
    /// `tokens` on the fly.
    pub fn try_admit(&mut self, tokens: &[TokenId], decode_tokens: usize) -> Option<SeqAlloc> {
        let chain = if self.config.enabled {
            BlockChain::from_tokens(self.config.block_size, tokens)
        } else {
            BlockChain::unhashed(tokens.len())
        };
        self.try_admit_chain(&chain, decode_tokens)
    }

    /// [`try_admit`](PrefixCache::try_admit) over a precomputed
    /// [`BlockChain`]: the chain walk reads the request's block hashes
    /// instead of re-hashing the prompt, so a retry after backpressure costs
    /// O(blocks), not O(tokens).
    pub fn try_admit_chain(
        &mut self,
        chain: &BlockChain,
        decode_tokens: usize,
    ) -> Option<SeqAlloc> {
        let bs = self.config.block_size;
        let prompt_tokens = chain.prompt_tokens();
        self.clock += 1;

        if !self.config.enabled {
            let needed = (prompt_tokens + decode_tokens).div_ceil(bs);
            if needed > self.free_blocks() {
                return None;
            }
            self.private_blocks += needed;
            self.note_admission(prompt_tokens, 0);
            return Some(SeqAlloc {
                chain: Vec::new(),
                private_blocks: needed,
                cached_tokens: 0,
                prompt_tokens,
            });
        }

        // Walk the chain of full prompt blocks (hashes precomputed) via the
        // shared admission arithmetic. Nothing allocates before the supply
        // check, so a *failed* admission — the retry a backpressured
        // head-of-line request makes on scheduling steps — costs one map
        // lookup per block and nothing else.
        let plan = self.admission_plan(chain, decode_tokens);
        if !plan.fits {
            return None;
        }
        let AdmissionPlan {
            cached_tokens,
            private,
            ..
        } = plan;
        let chain = chain.blocks().to_vec();

        // Phase A: pin every existing chain block so evictions during phase B
        // cannot touch them (presence is re-probed; nothing was created
        // since the walk above, so the set is the same).
        for &h in &chain {
            let Some(e) = self.blocks.get_mut(&h) else {
                continue;
            };
            if e.refcount == 0 {
                // Any eviction-heap entry for this block goes stale here
                // (the refcount and stamp both stop matching).
                self.rc0_blocks -= 1;
            }
            e.refcount += 1;
            e.last_used = self.clock;
        }
        // Phase B: create the still-missing blocks, evicting LRU leaves as
        // needed (everything that already existed is pinned).
        for i in 0..chain.len() {
            let h = chain[i];
            if self.blocks.contains_key(&h) {
                continue;
            }
            self.make_room();
            let chain_parent = if i == 0 { None } else { Some(chain[i - 1]) };
            self.blocks.insert(
                h,
                BlockEntry {
                    parent: chain_parent,
                    refcount: 1,
                    children: 0,
                    computed: false,
                    last_used: self.clock,
                },
            );
            if let Some(p) = chain_parent {
                // The parent is pinned or was created earlier in this loop.
                if let Some(pe) = self.blocks.get_mut(&p) {
                    pe.children += 1;
                }
            }
        }
        while self.free_blocks() < private {
            // Supply was checked before commit; an empty heap here would
            // mean that invariant broke, so stop rather than spin.
            if self.evict_one().is_none() {
                break;
            }
        }
        self.private_blocks += private;
        self.note_admission(prompt_tokens, cached_tokens);
        Some(SeqAlloc {
            chain,
            private_blocks: private,
            cached_tokens,
            prompt_tokens,
        })
    }

    /// Marks the sequence's prompt blocks as computed up to
    /// `prefilled_tokens`, making them compute-reusable by later admissions.
    pub fn mark_computed(&mut self, alloc: &SeqAlloc, prefilled_tokens: usize) {
        self.marks.set(self.marks.get() + 1);
        let bs = self.config.block_size;
        // Computed flags always form a prefix of a live chain: a block's
        // ancestors are computed before it, and an interior block cannot be
        // evicted from under a live child (eviction is leaf-only). Walking
        // backwards and stopping at the first already-computed block
        // therefore touches only the blocks this chunk newly finished,
        // instead of re-touching the whole prefix on every prefill chunk.
        for &h in alloc.chain.iter().take(prefilled_tokens / bs).rev() {
            match self.blocks.get_mut(&h) {
                Some(e) if e.computed => break,
                Some(e) => e.computed = true,
                None => debug_assert!(false, "marked chain block must exist"),
            }
        }
    }

    /// Releases a completed sequence: dereferences its shared chain (blocks
    /// stay cached until evicted) and frees its private blocks.
    pub fn release(&mut self, alloc: SeqAlloc) {
        self.release_inner(alloc);
        self.compact_evictable();
    }

    /// Releases every sequence retired in the same engine step. Per-sequence
    /// effects (LRU stamps, refcounts, heap pushes) are identical to calling
    /// [`release`](Self::release) once per allocation in the same order;
    /// only the heap-compaction check is deferred to once per batch, which
    /// is invisible because eviction skips stale heap entries anyway.
    pub fn release_batch(&mut self, allocs: impl IntoIterator<Item = SeqAlloc>) {
        for alloc in allocs {
            self.release_inner(alloc);
        }
        self.compact_evictable();
    }

    fn release_inner(&mut self, alloc: SeqAlloc) {
        self.clock += 1;
        for &h in alloc.chain.iter().rev() {
            // A live allocation pins its chain blocks; a missing entry would
            // be a double release, which the refcount assert also catches.
            let Some(e) = self.blocks.get_mut(&h) else {
                debug_assert!(false, "released chain block must exist");
                continue;
            };
            debug_assert!(e.refcount > 0, "double release");
            e.refcount -= 1;
            e.last_used = self.clock;
            if e.refcount == 0 {
                self.rc0_blocks += 1;
                if e.children == 0 {
                    self.evictable.push(Reverse((e.last_used, h)));
                }
            }
        }
        self.private_blocks = self.private_blocks.saturating_sub(alloc.private_blocks);
    }

    /// Whether heap entry `(stamp, h)` still describes a live evictable
    /// block (a revive or re-release leaves stale entries behind).
    fn evictable_entry_is_valid(&self, stamp: u64, h: u64) -> bool {
        self.blocks
            .get(&h)
            .is_some_and(|e| e.refcount == 0 && e.children == 0 && e.last_used == stamp)
    }

    /// Evicts one LRU leaf block, skipping stale heap entries. Returns
    /// `None` if nothing is evictable.
    fn evict_one(&mut self) -> Option<u64> {
        while let Some(&Reverse((stamp, h))) = self.evictable.peek() {
            if !self.evictable_entry_is_valid(stamp, h) {
                self.stale.set(self.stale.get() + 1);
                self.evictable.pop();
                continue;
            }
            self.evictable.pop();
            // `evictable_entry_is_valid` just confirmed the block is live.
            let Some(entry) = self.blocks.remove(&h) else {
                continue;
            };
            self.rc0_blocks -= 1;
            self.stats.evictions += 1;
            if let Some(p) = entry.parent {
                if let Some(pe) = self.blocks.get_mut(&p) {
                    pe.children -= 1;
                    if pe.refcount == 0 && pe.children == 0 {
                        self.evictable.push(Reverse((pe.last_used, p)));
                    }
                }
            }
            return Some(h);
        }
        None
    }

    /// Rebuilds the eviction heap from its valid entries once stale ones
    /// dominate, bounding heap memory on long-running sessions.
    fn compact_evictable(&mut self) {
        if self.evictable.len() <= 4 * self.config.capacity_blocks.max(64) {
            return;
        }
        let old = std::mem::take(&mut self.evictable);
        let before = old.len();
        self.evictable = old
            .into_iter()
            .filter(|&Reverse((stamp, h))| self.evictable_entry_is_valid(stamp, h))
            .collect();
        let dropped = (before - self.evictable.len()) as u64;
        self.stale.set(self.stale.get() + dropped);
    }

    /// Frees one block slot if none is free. The caller verified supply
    /// before committing, so eviction can only fail if that invariant broke.
    fn make_room(&mut self) {
        if self.free_blocks() == 0 {
            self.evict_one();
        }
    }

    fn note_admission(&mut self, prompt_tokens: usize, cached_tokens: usize) {
        self.stats.admitted += 1;
        self.stats.total_prompt_tokens += prompt_tokens as u64;
        self.stats.cached_tokens += cached_tokens as u64;
        self.stats.peak_blocks = self
            .stats
            .peak_blocks
            .max(self.blocks.len() + self.private_blocks);
    }
}

const HASH_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const HASH_PRIME: u64 = 0x100_0000_01b3;

/// Seeds a block hash with its parent prefix hash (or the root constant).
fn chain_seed(parent: Option<u64>) -> u64 {
    let mut h = HASH_OFFSET;
    let p = parent.unwrap_or(0x9e37_79b9_7f4a_7c15);
    for byte in p.to_le_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(HASH_PRIME);
    }
    h
}

/// Mixes one token into an in-progress block hash.
fn chain_mix_token(h: &mut u64, t: TokenId) {
    for byte in t.to_le_bytes() {
        *h = (*h ^ u64::from(byte)).wrapping_mul(HASH_PRIME);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strict (vLLM-v0) semantics: only computed blocks are compute hits.
    fn cache(capacity: usize) -> PrefixCache {
        PrefixCache::new(CacheConfig {
            block_size: 4,
            capacity_blocks: capacity,
            enabled: true,
            share_in_flight: false,
        })
    }

    /// Dedup (SGLang/cascade) semantics: existing blocks are compute hits.
    fn dedup_cache(capacity: usize) -> PrefixCache {
        PrefixCache::new(CacheConfig {
            block_size: 4,
            capacity_blocks: capacity,
            enabled: true,
            share_in_flight: true,
        })
    }

    fn toks(n: usize, salt: u32) -> Vec<TokenId> {
        (0..n as u32).map(|i| i * 7 + salt).collect()
    }

    #[test]
    fn internals_count_probes_marks_and_evictions() {
        let mut c = cache(2);
        assert_eq!(c.internals(), CacheInternals::default());
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.mark_computed(&a, 8);
        c.release(a);
        let after_first = c.internals();
        assert!(after_first.block_map_probes >= 2, "admission walks chain");
        assert_eq!(after_first.mark_computed_calls, 1);
        // A fresh prefix in a full cache forces evictions of the rc==0
        // blocks the first request left behind.
        let b = c.try_admit(&toks(8, 9), 0).unwrap();
        c.release(b);
        let after_second = c.internals();
        assert!(after_second.evictions >= 1);
        assert_eq!(after_second.evictions, c.stats().evictions);
        assert!(after_second.block_map_probes > after_first.block_map_probes);
        // `probe` walks are counted too, and never mutate anything else.
        let before = c.internals();
        c.probe(&toks(8, 0));
        let after = c.internals();
        assert!(after.block_map_probes > before.block_map_probes);
        assert_eq!(after.evictions, before.evictions);
    }

    #[test]
    fn first_admission_is_cold() {
        let mut c = cache(16);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(a.cached_tokens, 0);
        assert_eq!(a.prompt_tokens, 8);
        assert_eq!(c.free_blocks(), 16 - 2);
    }

    #[test]
    fn second_identical_admission_shares_memory_but_not_compute_until_marked() {
        let mut c = cache(16);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        // Not yet prefilled: shares memory (no new blocks), zero compute hit.
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.cached_tokens, 0);
        assert_eq!(c.free_blocks(), 16 - 2, "memory fully shared");
        // After prefill completes, a third admission hits.
        c.mark_computed(&a, 8);
        let d = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(d.cached_tokens, 8);
        c.release(a);
        c.release(b);
        c.release(d);
    }

    #[test]
    fn in_flight_sharing_dedups_concurrent_prefixes() {
        let mut c = dedup_cache(16);
        let _a = c.try_admit(&toks(8, 0), 0).unwrap();
        // Under cascade/RadixAttention semantics the second request reuses
        // the in-flight blocks immediately.
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.cached_tokens, 8);
        assert_eq!(c.probe(&toks(8, 0)), 8);
        // A genuinely new prefix still misses.
        let d = c.try_admit(&toks(8, 9), 0).unwrap();
        assert_eq!(d.cached_tokens, 0);
    }

    #[test]
    fn partial_prefix_hits_only_shared_blocks() {
        let mut c = cache(32);
        let mut first = toks(8, 0);
        let a = c.try_admit(&first, 0).unwrap();
        c.mark_computed(&a, 8);
        // Same first block (4 tokens), different second block.
        first[5] ^= 0xffff;
        let b = c.try_admit(&first, 0).unwrap();
        assert_eq!(b.cached_tokens, 4);
    }

    #[test]
    fn tail_tokens_are_private() {
        let mut c = cache(16);
        // 10 tokens = 2 full blocks + 2-token tail; tail is private.
        let a = c.try_admit(&toks(10, 0), 0).unwrap();
        assert_eq!(a.prompt_tokens, 10);
        assert_eq!(c.free_blocks(), 16 - 3);
        c.mark_computed(&a, 10);
        let b = c.try_admit(&toks(10, 0), 0).unwrap();
        // Only the 8 full-block tokens can hit.
        assert_eq!(b.cached_tokens, 8);
    }

    #[test]
    fn decode_reservation_counts() {
        let mut c = cache(4);
        // 4-token prompt (1 block) + 9 decode tokens → 3 private blocks.
        let a = c.try_admit(&toks(4, 0), 9).unwrap();
        assert_eq!(c.free_blocks(), 0);
        c.release(a);
        // Shared block lingers (evictable); private freed.
        assert_eq!(c.free_blocks(), 3);
    }

    #[test]
    fn admission_fails_when_full_and_unreclaimable() {
        let mut c = cache(2);
        let _a = c.try_admit(&toks(8, 0), 0).unwrap();
        assert!(c.try_admit(&toks(8, 1), 0).is_none());
    }

    #[test]
    fn eviction_reclaims_released_chains_lru_first() {
        let mut c = cache(4);
        let a = c.try_admit(&toks(8, 0), 0).unwrap(); // blocks 1,2
        let b = c.try_admit(&toks(8, 1), 0).unwrap(); // blocks 3,4
        c.release(a); // oldest, evictable
        c.release(b);
        // New 2-block sequence must evict the LRU leaves (from a's chain).
        let d = c.try_admit(&toks(8, 2), 0).unwrap();
        assert_eq!(d.prompt_tokens, 8);
        assert!(c.stats().evictions >= 2);
    }

    #[test]
    fn refcounted_blocks_are_never_evicted() {
        let mut c = cache(4);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.mark_computed(&a, 8);
        // Fill the remaining 2 blocks.
        let b = c.try_admit(&toks(8, 1), 0).unwrap();
        // No free space, nothing evictable (both chains referenced).
        assert!(c.try_admit(&toks(8, 2), 0).is_none());
        // a's blocks survive: re-admitting a's prompt still hits.
        let probe = c.probe(&toks(8, 0));
        assert_eq!(probe, 8);
        c.release(b);
    }

    #[test]
    fn revived_chain_blocks_are_not_double_counted_as_supply() {
        let mut c = cache(2);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.release(a); // both blocks rc=0, leaf+parent: one evictable (leaf)
                      // Re-admitting the same prompt must revive both blocks, not evict
                      // them out from under itself.
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.prompt_tokens, 8);
        assert_eq!(c.free_blocks(), 0);
    }

    #[test]
    fn interior_blocks_not_evicted_before_children() {
        let mut c = cache(4);
        let a = c.try_admit(&toks(16, 0), 0).unwrap(); // 4 blocks
        c.release(a);
        // Only the deepest block is an evictable leaf; eviction cascades.
        let b = c.try_admit(&toks(8, 1), 0).unwrap(); // needs 2 blocks
        assert_eq!(b.prompt_tokens, 8);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn disabled_cache_never_hits_and_uses_private_blocks() {
        let mut c = PrefixCache::new(CacheConfig {
            block_size: 4,
            capacity_blocks: 8,
            enabled: false,
            share_in_flight: true,
        });
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.mark_computed(&a, 8);
        let b = c.try_admit(&toks(8, 0), 0).unwrap();
        assert_eq!(b.cached_tokens, 0);
        assert_eq!(c.probe(&toks(8, 0)), 0);
        assert_eq!(c.free_blocks(), 8 - 4);
        c.release(a);
        assert_eq!(c.free_blocks(), 8 - 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = cache(16);
        let a = c.try_admit(&toks(8, 0), 0).unwrap();
        c.mark_computed(&a, 8);
        let _b = c.try_admit(&toks(8, 0), 0).unwrap();
        let s = c.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.total_prompt_tokens, 16);
        assert_eq!(s.cached_tokens, 8);
        assert!(s.peak_blocks >= 2);
    }

    #[test]
    fn probe_matches_admit_cached_tokens() {
        let mut c = cache(32);
        let a = c.try_admit(&toks(12, 3), 0).unwrap();
        c.mark_computed(&a, 12);
        let p = c.probe(&toks(12, 3));
        let b = c.try_admit(&toks(12, 3), 0).unwrap();
        assert_eq!(p, b.cached_tokens);
    }

    #[test]
    fn empty_prompt_is_fine() {
        let mut c = cache(4);
        let a = c.try_admit(&[], 3).unwrap();
        assert_eq!(a.prompt_tokens, 0);
        assert_eq!(a.cached_tokens, 0);
        assert_eq!(a.private_blocks, 1);
    }

    #[test]
    fn fragment_chain_matches_flat_chain() {
        let flat = toks(23, 5);
        let whole = BlockChain::from_tokens(4, &flat);
        assert_eq!(whole.prompt_tokens(), 23);
        assert_eq!(whole.blocks().len(), 5);
        // Fragment boundaries (including empty fragments) never change the
        // chain: blocks hash the logical concatenation.
        for split in [0usize, 1, 3, 4, 9, 23] {
            let (a, b) = flat.split_at(split);
            let frag = BlockChain::from_fragments(4, [a, &[][..], b]);
            assert_eq!(frag, whole, "split at {split}");
        }
    }

    #[test]
    fn chain_apis_match_token_apis() {
        let mut c = cache(32);
        let tokens = toks(14, 2);
        let chain = BlockChain::from_tokens(4, &tokens);
        assert!(c.can_admit_chain(&chain, 3));
        let a = c.try_admit_chain(&chain, 3).unwrap();
        c.mark_computed(&a, 14);
        assert_eq!(c.probe_chain(&chain), c.probe(&tokens));
        let b = c.try_admit(&tokens, 3).unwrap();
        assert_eq!(b.cached_tokens, c.probe_chain(&chain));
        c.release(a);
        c.release(b);
    }

    #[test]
    fn can_admit_chain_predicts_try_admit_and_never_mutates() {
        let mut c = cache(2);
        let fits = BlockChain::from_tokens(4, &toks(8, 0));
        let too_big = BlockChain::from_tokens(4, &toks(16, 1));
        assert!(c.can_admit_chain(&fits, 0));
        assert!(!c.can_admit_chain(&too_big, 0));
        let a = c.try_admit_chain(&fits, 0).unwrap();
        // The same chain still fits (pure sharing, no new blocks) …
        assert!(c.can_admit_chain(&fits, 0));
        // … but a distinct prompt needs blocks the full cache cannot supply;
        // the predicate agrees with try_admit.
        let other = BlockChain::from_tokens(4, &toks(8, 3));
        assert!(!c.can_admit_chain(&other, 0));
        assert!(c.try_admit_chain(&other, 0).is_none());
        c.release(a);
        // Released blocks are evictable supply again.
        assert!(c.can_admit_chain(&other, 0));
    }

    #[test]
    fn disabled_cache_admits_by_length_only() {
        let mut c = PrefixCache::new(CacheConfig {
            block_size: 4,
            capacity_blocks: 4,
            enabled: false,
            share_in_flight: true,
        });
        let chain = BlockChain::unhashed(10);
        assert!(c.can_admit_chain(&chain, 2));
        let a = c.try_admit_chain(&chain, 2).unwrap();
        assert_eq!(a.prompt_tokens, 10);
        assert_eq!(c.free_blocks(), 1);
        assert!(!c.can_admit_chain(&BlockChain::unhashed(8), 0));
        c.release(a);
    }

    #[test]
    #[should_panic(expected = "block_size must be positive")]
    fn zero_block_size_panics() {
        let _ = PrefixCache::new(CacheConfig {
            block_size: 0,
            capacity_blocks: 1,
            enabled: true,
            share_in_flight: true,
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A randomized schedule of admissions (with varying prefix sharing,
    /// tails, decode reservations) and immediate/deferred releases.
    fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, bool)>> {
        proptest::collection::vec((0u8..6, 0u8..40, 0u8..12, proptest::bool::ANY), 1..80)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Accounting invariants under arbitrary admit/release interleaving:
        /// usage never exceeds capacity, cached never exceeds total tokens,
        /// and releasing everything frees all private blocks.
        #[test]
        fn accounting_invariants(ops in ops_strategy(), capacity in 4usize..64) {
            let mut cache = PrefixCache::new(CacheConfig {
                block_size: 4,
                capacity_blocks: capacity,
                enabled: true,
                share_in_flight: true,
            });
            let mut live: Vec<SeqAlloc> = Vec::new();
            for (family, tail, decode, release_now) in ops {
                let mut tokens: Vec<u32> = (0..12u32).map(|i| u32::from(family) * 100 + i).collect();
                tokens.extend((0..u32::from(tail)).map(|i| 500_000 + u32::from(family) * 7919 + i));
                if let Some(alloc) = cache.try_admit(&tokens, usize::from(decode)) {
                    prop_assert!(alloc.cached_tokens <= alloc.prompt_tokens);
                    cache.mark_computed(&alloc, tokens.len());
                    if release_now {
                        cache.release(alloc);
                    } else {
                        live.push(alloc);
                    }
                }
                prop_assert!(cache.free_blocks() <= capacity);
                let s = cache.stats();
                prop_assert!(s.cached_tokens <= s.total_prompt_tokens);
                prop_assert!(s.peak_blocks <= capacity);
            }
            for alloc in live.drain(..) {
                cache.release(alloc);
            }
            // All blocks are now unreferenced: a full-capacity admission of a
            // fresh sequence must succeed by evicting everything.
            let fresh: Vec<u32> = (0..(capacity * 4) as u32).map(|i| 900_000 + i).collect();
            prop_assert!(cache.try_admit(&fresh, 0).is_some());
        }

        /// Probing never mutates: two probes agree, and a probe agrees with
        /// what a subsequent admission reports as cached.
        #[test]
        fn probe_is_pure_and_consistent(tail in 0u8..32) {
            let mut cache = PrefixCache::new(CacheConfig {
                block_size: 4,
                capacity_blocks: 256,
                enabled: true,
                share_in_flight: true,
            });
            let mut tokens: Vec<u32> = (0..16).collect();
            tokens.extend((0..u32::from(tail)).map(|i| 70_000 + i));
            let a = cache.try_admit(&tokens, 0).unwrap();
            cache.mark_computed(&a, tokens.len());
            let p1 = cache.probe(&tokens);
            let p2 = cache.probe(&tokens);
            prop_assert_eq!(p1, p2);
            let b = cache.try_admit(&tokens, 0).unwrap();
            prop_assert_eq!(p1, b.cached_tokens);
            // Full blocks only.
            prop_assert_eq!(b.cached_tokens % 4, 0);
            prop_assert_eq!(b.cached_tokens, tokens.len() / 4 * 4);
        }
    }
}
