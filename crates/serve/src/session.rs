//! Incremental (steppable) form of the serving simulator, with an
//! event-driven macro-stepping core.
//!
//! [`EngineSession`] exposes the engine loop one scheduling step at a time so
//! an external driver — notably `llmqo-cluster`'s sharded-serving simulator —
//! can interleave several replicas on a shared timeline, feed arrivals
//! mid-flight, and probe replica load and cache occupancy between steps.
//! [`SimEngine::run`](crate::SimEngine::run) is a thin wrapper: enqueue
//! everything, drive until idle, finish.
//!
//! Two stepping granularities share one set of semantics:
//!
//! * [`step`](EngineSession::step) executes exactly one scheduling step —
//!   admit waiting requests lazily within the chunked-prefill token budget,
//!   decode one token for every running sequence past prefill, advance the
//!   clock by the roofline step time, retire finished sequences. This is the
//!   per-token loop, unchanged from [`SessionReference`].
//! * [`step_until`](EngineSession::step_until) is the **event-driven** form:
//!   when the batch is in steady-state decode — no prefill in flight, no
//!   admissible waiting request, every sequence past its first token — the
//!   next `K − 1` steps (up to the earliest completion) are provably
//!   identical except for the scalar roofline recurrence, so they are
//!   collapsed into one pass over `(decode_tokens, decode_ctx, clock)` with
//!   zero per-sequence scans, and the loop jumps straight to the next event:
//!   a completion, an admission becoming possible, or the caller-supplied
//!   `horizon` (the cluster layer's next arrival).
//!
//! Macro-stepping is observationally invisible: the collapsed steps change
//! nothing a driver can see (queue length, running count, KV occupancy,
//! cache contents) except the clock, and the arithmetic replays the exact
//! per-step accumulation order, so clocks, reports, and completions stay
//! bit-identical to the per-token loop. `tests/engine_differential.rs`
//! enforces this against the frozen [`SessionReference`].
//!
//! Request prompts are hashed into their [`BlockChain`] once at enqueue
//! time; the per-step admission path walks precomputed hashes instead of
//! re-flattening and re-hashing the head-of-line prompt on every step it
//! spends blocked behind backpressure.
//!
//! [`SessionReference`]: crate::SessionReference

use crate::cache::{BlockChain, CacheConfig, CacheStats, PrefixCache, SeqAlloc};
use crate::engine::{Deployment, EngineConfig, EngineError, EngineReport, SimRequest};
use crate::model::ModelSpec;
use llmqo_tokenizer::TokenId;
use std::collections::VecDeque;

/// Per-request outcome record, kept in admission order of completion.
///
/// All timestamps are on the session clock (seconds); a driver that lines
/// sessions up on a shared timeline via [`EngineSession::advance_to`] can
/// therefore compare them across replicas directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Caller-chosen request id (from [`SimRequest::id`]).
    pub id: usize,
    /// Clock when the request entered the running batch.
    pub admitted_s: f64,
    /// Clock when the last output token was produced.
    pub finished_s: f64,
    /// Admission-to-first-token latency.
    pub ttft_s: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Prompt tokens served from the prefix cache.
    pub cached_tokens: usize,
    /// Output tokens generated.
    pub output_tokens: u32,
}

/// Everything a finished session reports: the aggregate [`EngineReport`]
/// plus per-request [`Completion`] records.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Aggregate job metrics (identical to what [`crate::SimEngine::run`]
    /// returns).
    pub report: EngineReport,
    /// One record per completed request, in completion order.
    pub completions: Vec<Completion>,
}

/// What the session keeps of an enqueued request: identity, output target,
/// and the prompt's precomputed cache chain. The prompt tokens themselves
/// are not retained — every cache operation works on the chain.
struct QueuedRequest {
    id: usize,
    output_len: u32,
    chain: BlockChain,
    /// Clock at [`EngineSession::enqueue_ref`] time; feeds the traced
    /// queue-wait span and is never read by the scheduler itself.
    enqueued_s: f64,
}

struct Running {
    idx: usize,
    alloc: SeqAlloc,
    prompt_len: usize,
    prefilled: usize,
    output_done: u32,
    admitted_at: f64,
    first_token_at: Option<f64>,
}

/// Percentile of an ascending-sorted sample (nearest-rank); 0 for empty
/// samples. Used for every latency/wait distribution in the workspace so
/// engine- and cluster-level percentiles are always computed identically.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A running engine instance that accepts requests over time.
///
/// Create with [`crate::SimEngine::session`]. Drive with [`enqueue`]
/// (arrivals), [`step`] (advance one scheduling step) or [`step_until`]
/// (advance to the next event, macro-stepping steady-state decode), and
/// [`advance_to`] (idle until an external event); inspect with the
/// load/cache probes; consume with [`finish`].
///
/// [`enqueue`]: EngineSession::enqueue
/// [`step`]: EngineSession::step
/// [`step_until`]: EngineSession::step_until
/// [`advance_to`]: EngineSession::advance_to
/// [`finish`]: EngineSession::finish
pub struct EngineSession {
    model: ModelSpec,
    config: EngineConfig,
    capacity_blocks: usize,
    flops: f64,
    bw: f64,
    kv_bytes: f64,
    weight_bytes: f64,
    cache: PrefixCache,
    /// Every request ever enqueued; `waiting`/`running` index into it.
    store: Vec<QueuedRequest>,
    waiting: VecDeque<usize>,
    running: Vec<Running>,
    /// Reused per-step `(running idx, chunk)` prefill schedule buffer.
    chunk_buf: Vec<(usize, usize)>,
    /// Reused per-step buffer of allocations retired this step, released in
    /// one [`PrefixCache::release_batch`] call after the retirement scan.
    release_buf: Vec<crate::cache::SeqAlloc>,
    /// Running sequences still before steady state (prefill in flight or
    /// first token not yet produced). Zero is the O(1) gate that lets
    /// [`step_until`] skip the per-sequence steady-state scan entirely on
    /// prefill-heavy steps.
    ///
    /// [`step_until`]: EngineSession::step_until
    warming: usize,
    clock: f64,
    idle_s: f64,
    report: EngineReport,
    ttfts: Vec<f64>,
    latencies: Vec<f64>,
    completions: Vec<Completion>,
    /// Trace lane (Chrome-trace `pid`) this session's spans land on; lane 0
    /// by default, replica `i + 1` under the cluster simulator.
    trace_lane: u32,
    /// Straggler multiplier applied to every step's roofline time; 1.0 is
    /// nominal speed. Driven by the cluster fault injector.
    slowdown: f64,
}

impl std::fmt::Debug for EngineSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSession")
            .field("clock", &self.clock)
            .field("waiting", &self.waiting.len())
            .field("running", &self.running.len())
            .field("completed", &self.report.completed)
            .finish_non_exhaustive()
    }
}

impl EngineSession {
    pub(crate) fn new(deployment: &Deployment, config: EngineConfig) -> Result<Self, EngineError> {
        let capacity_blocks = deployment.kv_capacity_blocks(&config);
        if capacity_blocks == 0 {
            return Err(EngineError::ModelTooLarge {
                weight_bytes: deployment.model.weight_bytes(),
                mem_bytes: deployment.cluster.total_mem_bytes(),
            });
        }
        let cache = PrefixCache::new(CacheConfig {
            block_size: config.block_size,
            capacity_blocks,
            enabled: config.enable_prefix_cache,
            share_in_flight: config.in_flight_sharing,
        });
        Ok(EngineSession {
            flops: deployment.cluster.total_flops(),
            bw: deployment.cluster.total_mem_bw(),
            kv_bytes: deployment.model.kv_bytes_per_token() as f64,
            weight_bytes: deployment.model.weight_bytes() as f64,
            model: deployment.model.clone(),
            config,
            capacity_blocks,
            cache,
            store: Vec::new(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            chunk_buf: Vec::new(),
            release_buf: Vec::new(),
            warming: 0,
            clock: 0.0,
            idle_s: 0.0,
            report: EngineReport::default(),
            ttfts: Vec::new(),
            latencies: Vec::new(),
            completions: Vec::new(),
            trace_lane: 0,
            slowdown: 1.0,
        })
    }

    /// Assigns the Chrome-trace lane (`pid`) this session's observability
    /// spans are emitted on. Purely cosmetic for trace grouping; the cluster
    /// simulator gives each replica its own lane.
    pub fn set_trace_lane(&mut self, lane: u32) {
        self.trace_lane = lane;
    }

    /// Sets the straggler multiplier applied to every subsequent step's
    /// roofline time. `1.0` is nominal speed and is an exact no-op on the
    /// step arithmetic (IEEE 754 `x * 1.0 ≡ x`), so an un-slowed session is
    /// bit-identical to one that never heard of slowdowns. Non-finite or
    /// non-positive factors reset to nominal.
    pub fn set_slowdown(&mut self, factor: f64) {
        self.slowdown = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            1.0
        };
    }

    /// The current straggler multiplier (see
    /// [`set_slowdown`](EngineSession::set_slowdown)).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Adds a request to the tail of the admission queue.
    pub fn enqueue(&mut self, request: SimRequest) {
        self.enqueue_ref(&request);
    }

    /// [`enqueue`](EngineSession::enqueue) by reference: the session hashes
    /// the prompt's block chain once and keeps nothing else, so submission
    /// never clones the request or its fragment list.
    pub fn enqueue_ref(&mut self, request: &SimRequest) {
        let chain = if self.config.enable_prefix_cache {
            BlockChain::from_fragments(
                self.config.block_size,
                request.prompt.iter().map(|f| &f[..]),
            )
        } else {
            // A disabled cache admits by length alone; skip the hashing.
            BlockChain::unhashed(request.prompt_len())
        };
        self.store.push(QueuedRequest {
            id: request.id,
            output_len: request.output_len,
            chain,
            enqueued_s: self.clock,
        });
        self.waiting.push_back(self.store.len() - 1);
        if llmqo_obs::enabled() {
            crate::obs::metrics().requests_enqueued.inc();
            llmqo_obs::tracer().instant(
                self.trace_lane,
                request.id as u64,
                "enqueue",
                "request",
                self.clock,
                &[("prompt_tokens", request.prompt_len().into())],
            );
        }
    }

    /// Current session clock, seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Whether the session has no queued and no running work.
    pub fn is_idle(&self) -> bool {
        self.waiting.is_empty() && self.running.is_empty()
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Sequences currently in the running batch.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Requests completed so far.
    pub fn completed(&self) -> usize {
        self.report.completed
    }

    /// Every [`Completion`] recorded so far, in completion order — the
    /// mid-session form of [`SessionReport::completions`], for drivers that
    /// attribute per-request serving costs before the session finishes.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// The completion record of request `id`, if it has finished — answer
    /// extraction per request id for layers (like the relational answer
    /// cache) that key engine work by the request they submitted. Ids are
    /// caller-chosen and may repeat across submissions; the *latest*
    /// completion wins.
    pub fn completion_of(&self, id: usize) -> Option<&Completion> {
        self.completions.iter().rev().find(|c| c.id == id)
    }

    /// The deterministic confidence signal attached to request `id`'s
    /// completion under `seed`, if the request has finished — the
    /// model-tier-cascade hook: a cheap tier reports how sure it is of each
    /// answer, and the executor escalates completions below its threshold.
    /// Pure per `(seed, id)` (see [`crate::confidence_unit`]), so repeated
    /// queries and replica fan-out observe identical confidences.
    pub fn confidence_of(&self, id: usize, seed: u64) -> Option<f64> {
        self.completion_of(id)
            .map(|c| crate::fault::confidence_unit(seed, c.id as u64))
    }

    /// Total KV capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// KV blocks currently referenced or cached (capacity minus free).
    pub fn kv_blocks_in_use(&self) -> usize {
        self.capacity_blocks - self.cache.free_blocks()
    }

    /// How many leading tokens of `tokens` the prefix cache would serve
    /// without prefill, right now. Pure: never mutates cache state.
    pub fn probe_cached_tokens(&self, tokens: &[TokenId]) -> usize {
        self.cache.probe(tokens)
    }

    /// Lifetime prefix-cache statistics (admissions, cached tokens,
    /// evictions, peak blocks).
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Cumulative time this session has sat idle via [`advance_to`]
    /// (useful for utilization metrics on a shared timeline).
    ///
    /// [`advance_to`]: EngineSession::advance_to
    pub fn idle_time_s(&self) -> f64 {
        self.idle_s
    }

    /// Idles the session until `t` (seconds on the session clock). Only an
    /// idle session can be advanced — time inside a busy session is produced
    /// by [`step`](EngineSession::step). No-ops when `t` is in the past.
    pub fn advance_to(&mut self, t: f64) {
        if self.is_idle() && t > self.clock {
            self.idle_s += t - self.clock;
            self.clock = t;
        }
    }

    /// Executes one scheduling step: admit within the prefill budget, run
    /// one decode token for every running sequence past prefill, advance the
    /// clock by the roofline step time, retire finished sequences.
    ///
    /// Returns `Ok(true)` if the step did work, `Ok(false)` if the session
    /// is idle (nothing queued or running).
    ///
    /// # Errors
    ///
    /// [`EngineError::RequestTooLarge`] if the head-of-queue request can
    /// never fit in KV memory even with the batch drained.
    pub fn step(&mut self) -> Result<bool, EngineError> {
        let timer = llmqo_obs::WallTimer::start();
        let out = self.step_inner();
        timer.observe(crate::obs::metrics().wall_step_s);
        out
    }

    fn step_inner(&mut self) -> Result<bool, EngineError> {
        if self.is_idle() {
            return Ok(false);
        }
        // Build the step: decode every running sequence that finished
        // prefill, plus chunked prefill within the token budget.
        let mut decode_tokens = 0u64;
        let mut decode_ctx = 0u64;
        for r in &self.running {
            if r.prefilled >= r.prompt_len && r.output_done < self.store[r.idx].output_len {
                decode_tokens += 1;
                decode_ctx += (r.prompt_len as u64) + u64::from(r.output_done);
            }
        }
        let mut budget = self
            .config
            .max_batch_tokens
            .saturating_sub(decode_tokens as usize);
        let mut prefill_flops = 0.0f64;
        let mut prefill_kv_bytes = 0.0f64;
        let mut chunks = std::mem::take(&mut self.chunk_buf); // (running idx, chunk)
        chunks.clear();
        let model = &self.model;
        let kv_bytes = self.kv_bytes;
        let take_chunk = |r: &Running,
                          i: usize,
                          budget: &mut usize,
                          prefill_flops: &mut f64,
                          prefill_kv_bytes: &mut f64,
                          chunks: &mut Vec<(usize, usize)>| {
            let chunk = (r.prompt_len - r.prefilled).min(*budget);
            if chunk == 0 {
                return;
            }
            *budget -= chunk;
            let ctx_mid = r.prefilled as f64 + chunk as f64 / 2.0;
            *prefill_flops +=
                chunk as f64 * (model.flops_per_token() + model.attn_flops(ctx_mid as u64));
            *prefill_kv_bytes += (r.prefilled + chunk) as f64 * kv_bytes;
            chunks.push((i, chunk));
        };
        // In-flight prefills continue first (FIFO, vLLM-style) …
        for (i, r) in self.running.iter().enumerate() {
            if budget == 0 {
                break;
            }
            if r.prefilled < r.prompt_len {
                take_chunk(
                    r,
                    i,
                    &mut budget,
                    &mut prefill_flops,
                    &mut prefill_kv_bytes,
                    &mut chunks,
                );
            }
        }
        // … then waiting requests are admitted lazily, only when the step
        // has prefill budget for them. Cache lookups therefore happen at
        // schedule time, after earlier prefills have marked their blocks
        // computed — matching vLLM, and meaning the first wave of
        // concurrent requests does not magically share cold prefixes.
        while (budget > 0 || decode_tokens + chunks.len() as u64 == 0)
            && self.running.len() < self.config.max_num_seqs
        {
            let Some(&idx) = self.waiting.front() else {
                break;
            };
            let req = &self.store[idx];
            let obs_on = llmqo_obs::enabled();
            let evictions_before = if obs_on {
                self.cache.stats().evictions
            } else {
                0
            };
            let timer = llmqo_obs::WallTimer::start();
            let admitted = self
                .cache
                .try_admit_chain(&req.chain, req.output_len as usize);
            timer.observe(crate::obs::metrics().wall_cache_s);
            match admitted {
                Some(alloc) => {
                    self.waiting.pop_front();
                    self.clock += self.config.per_request_overhead_s;
                    self.report.overhead_time_s += self.config.per_request_overhead_s;
                    self.report.total_prompt_tokens += alloc.prompt_tokens as u64;
                    self.report.cached_prompt_tokens += alloc.cached_tokens as u64;
                    self.running.push(Running {
                        idx,
                        prompt_len: alloc.prompt_tokens,
                        prefilled: alloc.cached_tokens,
                        output_done: 0,
                        alloc,
                        admitted_at: self.clock,
                        first_token_at: None,
                    });
                    self.warming += 1;
                    if obs_on {
                        self.trace_admission(idx, evictions_before);
                    }
                    let i = self.running.len() - 1;
                    let r = &self.running[i];
                    if r.prefilled < r.prompt_len {
                        take_chunk(
                            r,
                            i,
                            &mut budget,
                            &mut prefill_flops,
                            &mut prefill_kv_bytes,
                            &mut chunks,
                        );
                    }
                }
                None => {
                    if self.running.is_empty() {
                        let needed = (req.chain.prompt_tokens() + req.output_len as usize)
                            .div_ceil(self.config.block_size);
                        return Err(EngineError::RequestTooLarge {
                            id: req.id,
                            needed_blocks: needed,
                            capacity_blocks: self.capacity_blocks,
                        });
                    }
                    break;
                }
            }
        }
        self.report.peak_running = self.report.peak_running.max(self.running.len());
        if self.running.is_empty() {
            self.chunk_buf = chunks;
            return Ok(false);
        }

        // Roofline step time.
        let decode_flops =
            decode_tokens as f64 * model.flops_per_token() + model.attn_flops(decode_ctx);
        let compute_t = (prefill_flops + decode_flops) / self.flops;
        let mem_t = (self.weight_bytes + decode_ctx as f64 * kv_bytes + prefill_kv_bytes) / self.bw;
        let step_t = (compute_t.max(mem_t) + self.config.step_overhead_s) * self.slowdown;

        // Attribute time to phases for the report (by compute share).
        let total_work = (prefill_flops + decode_flops).max(1.0);
        self.report.prefill_time_s += step_t * prefill_flops / total_work;
        self.report.decode_time_s += step_t * decode_flops / total_work;
        self.clock += step_t;
        self.report.steps += 1;

        // Apply effects: prefill progress (marking blocks computed) and
        // one decoded token per decoding sequence.
        let timer = llmqo_obs::WallTimer::start();
        for &(i, chunk) in &chunks {
            let r = &mut self.running[i];
            r.prefilled += chunk;
            self.report.computed_prompt_tokens += chunk as u64;
            self.cache.mark_computed(&r.alloc, r.prefilled);
        }
        timer.observe(crate::obs::metrics().wall_cache_s);
        self.chunk_buf = chunks;
        let mut i = 0;
        while i < self.running.len() {
            let done_prefill = self.running[i].prefilled >= self.running[i].prompt_len;
            if done_prefill {
                let out_target = self.store[self.running[i].idx].output_len;
                if self.running[i].output_done < out_target {
                    self.running[i].output_done += 1;
                    self.report.total_output_tokens += 1;
                    if self.running[i].first_token_at.is_none() {
                        self.running[i].first_token_at = Some(self.clock);
                        self.ttfts.push(self.clock - self.running[i].admitted_at);
                        self.warming -= 1;
                        if llmqo_obs::enabled() {
                            self.trace_first_token(i);
                        }
                    }
                }
                if self.running[i].output_done >= out_target {
                    let r = self.running.swap_remove(i);
                    let first_token_at = match r.first_token_at {
                        Some(t) => t,
                        // Zero-output request: first "token" is completion.
                        None => {
                            self.ttfts.push(self.clock - r.admitted_at);
                            self.warming -= 1;
                            self.clock
                        }
                    };
                    self.latencies.push(self.clock - r.admitted_at);
                    if llmqo_obs::enabled() {
                        let m = crate::obs::metrics();
                        m.completions.inc();
                        m.output_tokens.add(u64::from(r.output_done));
                        m.latency_s.record(self.clock - r.admitted_at);
                        llmqo_obs::tracer().complete(
                            self.trace_lane,
                            self.store[r.idx].id as u64,
                            "decode",
                            "request",
                            first_token_at,
                            self.clock - first_token_at,
                            &[("output_tokens", u64::from(r.output_done).into())],
                        );
                    }
                    self.completions.push(Completion {
                        id: self.store[r.idx].id,
                        admitted_s: r.admitted_at,
                        finished_s: self.clock,
                        ttft_s: first_token_at - r.admitted_at,
                        prompt_tokens: r.prompt_len,
                        cached_tokens: r.alloc.cached_tokens,
                        output_tokens: r.output_done,
                    });
                    self.release_buf.push(r.alloc);
                    self.report.completed += 1;
                    continue;
                }
            }
            i += 1;
        }
        if !self.release_buf.is_empty() {
            let timer = llmqo_obs::WallTimer::start();
            self.cache.release_batch(self.release_buf.drain(..));
            timer.observe(crate::obs::metrics().wall_cache_s);
        }
        Ok(true)
    }

    /// Cold path: span + metric emission for the admission that just pushed
    /// the newest [`Running`] entry. Only called when observability is on.
    fn trace_admission(&self, store_idx: usize, evictions_before: u64) {
        let Some(r) = self.running.last() else {
            return;
        };
        let q = &self.store[store_idx];
        let m = crate::obs::metrics();
        m.requests_admitted.inc();
        m.cached_prompt_tokens.add(r.alloc.cached_tokens as u64);
        let tr = llmqo_obs::tracer();
        tr.complete(
            self.trace_lane,
            q.id as u64,
            "queued",
            "request",
            q.enqueued_s,
            self.clock - q.enqueued_s,
            &[],
        );
        tr.instant(
            self.trace_lane,
            q.id as u64,
            "cache.admit",
            "cache",
            self.clock,
            &[
                ("cached_tokens", r.alloc.cached_tokens.into()),
                ("prompt_tokens", r.prompt_len.into()),
            ],
        );
        let evicted = self.cache.stats().evictions - evictions_before;
        if evicted > 0 {
            tr.instant(
                self.trace_lane,
                q.id as u64,
                "cache.evict",
                "cache",
                self.clock,
                &[("blocks", evicted.into())],
            );
        }
    }

    /// Cold path: span + metric emission when `self.running[i]` produces its
    /// first output token. Only called when observability is on.
    fn trace_first_token(&self, i: usize) {
        let r = &self.running[i];
        crate::obs::metrics()
            .ttft_s
            .record(self.clock - r.admitted_at);
        llmqo_obs::tracer().complete(
            self.trace_lane,
            self.store[r.idx].id as u64,
            "prefill",
            "request",
            r.admitted_at,
            self.clock - r.admitted_at,
            &[
                ("prompt_tokens", r.prompt_len.into()),
                ("cached_tokens", r.alloc.cached_tokens.into()),
            ],
        );
    }

    /// If the batch is in steady-state decode, returns the number of steps
    /// until the earliest completion; `None` when the next step is not a
    /// pure decode step (prefill in flight, an admissible waiting request,
    /// a sequence before its first token, or an empty batch).
    ///
    /// Steady state is stable by construction: pure decode steps release no
    /// KV blocks, mark nothing computed, and change no queue, so whatever
    /// blocks admission now blocks it for the whole run.
    fn steady_decode_remaining(&self) -> Option<u32> {
        // O(1) gate: any sequence still prefilling or before its first
        // token rules out a pure decode run without scanning the batch —
        // the common case on prefill-heavy workloads.
        if self.running.is_empty() || self.warming > 0 {
            return None;
        }
        let mut min_remaining = u32::MAX;
        for r in &self.running {
            let target = self.store[r.idx].output_len;
            debug_assert!(r.prefilled >= r.prompt_len && r.first_token_at.is_some());
            if r.output_done >= target {
                return None;
            }
            min_remaining = min_remaining.min(target - r.output_done);
        }
        // The head-of-line waiting request must stay blocked throughout:
        // by the sequence-slot limit, by a decode-saturated token budget, or
        // by KV memory (checked without mutating the cache). With every
        // running sequence decoding, the step's prefill budget is
        // `max_batch_tokens − running`, constant across pure decode steps.
        if let Some(&idx) = self.waiting.front() {
            let slots_free = self.running.len() < self.config.max_num_seqs;
            let budget_free = self
                .config
                .max_batch_tokens
                .saturating_sub(self.running.len())
                > 0;
            if slots_free && budget_free {
                let req = &self.store[idx];
                if self
                    .cache
                    .can_admit_chain(&req.chain, req.output_len as usize)
                {
                    return None;
                }
            }
        }
        Some(min_remaining)
    }

    /// Collapses up to `steps` pure decode steps into the scalar roofline
    /// recurrence: per step, only `(decode_ctx, clock, report)` advance —
    /// no per-sequence scan, no admission attempt, no cache touch. Stops
    /// early once the clock reaches `horizon`. Returns the steps taken.
    ///
    /// The arithmetic replays [`step`](EngineSession::step)'s accumulation
    /// expressions verbatim (including the float evaluation order), so the
    /// resulting clock and report are bit-identical to stepping one by one.
    fn decode_fast_forward(&mut self, steps: u64, horizon: Option<f64>) -> u64 {
        let timer = llmqo_obs::WallTimer::start();
        let start_clock = self.clock;
        let decoding = self.running.len() as u64;
        let mut decode_ctx: u64 = self
            .running
            .iter()
            .map(|r| r.prompt_len as u64 + u64::from(r.output_done))
            .sum();
        let mut taken = 0u64;
        while taken < steps {
            let decode_flops =
                decoding as f64 * self.model.flops_per_token() + self.model.attn_flops(decode_ctx);
            let compute_t = decode_flops / self.flops;
            let mem_t = (self.weight_bytes + decode_ctx as f64 * self.kv_bytes) / self.bw;
            let step_t = (compute_t.max(mem_t) + self.config.step_overhead_s) * self.slowdown;
            let total_work = decode_flops.max(1.0);
            self.report.decode_time_s += step_t * decode_flops / total_work;
            self.clock += step_t;
            self.report.steps += 1;
            decode_ctx += decoding;
            taken += 1;
            if horizon.is_some_and(|h| self.clock >= h) {
                break;
            }
        }
        self.report.total_output_tokens += taken * decoding;
        // `taken ≤ min_remaining − 1 < u32::MAX`: output targets are u32.
        let done = u32::try_from(taken).unwrap_or(u32::MAX);
        for r in &mut self.running {
            r.output_done += done;
        }
        if llmqo_obs::enabled() && taken > 0 {
            llmqo_obs::tracer().complete(
                self.trace_lane,
                0,
                "decode.macro_step",
                "engine",
                start_clock,
                self.clock - start_clock,
                &[("steps", taken.into()), ("sequences", decoding.into())],
            );
        }
        timer.observe(crate::obs::metrics().wall_decode_recurrence_s);
        taken
    }

    /// Advances the session to its next **event**: equivalent to calling
    /// [`step`](EngineSession::step) repeatedly, but steady-state decode
    /// runs are collapsed into the scalar macro-step. One call performs
    /// either a single non-steady step (admission, prefill, first token,
    /// or retirement activity), or a whole decode run ending with the step
    /// that retires its earliest finishers.
    ///
    /// With `horizon = Some(t)`, stepping stops as soon as the clock
    /// reaches `t` — exactly where a driver polling [`clock`] between
    /// single steps would stop — so external arrivals can be interleaved at
    /// the correct instant. `None` means run to the next event
    /// unconditionally.
    ///
    /// Returns `Ok(false)` when the call did no work: the session is idle,
    /// or the clock already sits at/past `horizon` (so
    /// `while s.step_until(h)? {}` terminates at the horizon rather than
    /// spinning; the session may still be busy — check
    /// [`is_idle`](EngineSession::is_idle) to distinguish).
    ///
    /// # Errors
    ///
    /// [`EngineError::RequestTooLarge`] if the head-of-queue request can
    /// never fit in KV memory even with the batch drained.
    ///
    /// [`clock`]: EngineSession::clock
    pub fn step_until(&mut self, horizon: Option<f64>) -> Result<bool, EngineError> {
        if self.is_idle() {
            return Ok(false);
        }
        let reached = |clock: f64| horizon.is_some_and(|h| clock >= h);
        if reached(self.clock) {
            return Ok(false);
        }
        if let Some(min_remaining) = self.steady_decode_remaining() {
            // `min_remaining − 1` steps are pure (no completion possible);
            // the final one retires the earliest finishers and runs through
            // the full scheduling path to preserve retirement order and
            // post-release admissions.
            let pure = u64::from(min_remaining) - 1;
            if pure > 0 && self.decode_fast_forward(pure, horizon) < pure {
                return Ok(true);
            }
            if reached(self.clock) {
                return Ok(true);
            }
        }
        self.step()
    }

    /// Submits `requests` and drives the session until it is idle again,
    /// returning the [`Completion`]s this call produced (in completion
    /// order). Requests are consumed by reference — nothing is cloned —
    /// and the drain macro-steps through steady-state decode. Cache state
    /// persists across calls, which is what makes batched *incremental*
    /// submission — the relational layer's lazy `LIMIT` evaluation —
    /// cheaper than one fresh engine run per batch: later batches reuse the
    /// instruction prefix (and any shared fields) the earlier ones already
    /// computed.
    ///
    /// Equivalent to [`SimEngine::run`](crate::SimEngine::run) when called
    /// once on a fresh session.
    ///
    /// # Errors
    ///
    /// [`EngineError::RequestTooLarge`] if a request can never be admitted.
    pub fn run_batch(&mut self, requests: &[SimRequest]) -> Result<&[Completion], EngineError> {
        let before = self.completions.len();
        for request in requests {
            self.enqueue_ref(request);
        }
        while self.step_until(None)? {}
        Ok(&self.completions[before..])
    }

    /// Finalizes the session: computes latency percentiles and returns the
    /// aggregate report plus per-request completion records.
    pub fn finish(mut self) -> SessionReport {
        if llmqo_obs::enabled() {
            crate::obs::publish_cache_internals(
                crate::cache::CacheInternals::default(),
                self.cache.internals(),
            );
        }
        self.ttfts.sort_by(f64::total_cmp);
        self.latencies.sort_by(f64::total_cmp);
        self.report.ttft_p50_s = percentile(&self.ttfts, 0.50);
        self.report.ttft_p99_s = percentile(&self.ttfts, 0.99);
        self.report.latency_p50_s = percentile(&self.latencies, 0.50);
        self.report.latency_p99_s = percentile(&self.latencies, 0.99);
        self.report.job_completion_time_s = self.clock;
        self.report.peak_blocks = self.cache.stats().peak_blocks;
        self.report.evictions = self.cache.stats().evictions;
        SessionReport {
            report: self.report,
            completions: self.completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimEngine;
    use crate::hardware::{GpuCluster, GpuSpec};

    fn engine() -> SimEngine {
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        )
    }

    fn reqs(n: usize, shared: usize, tail: usize, output: u32) -> Vec<SimRequest> {
        (0..n)
            .map(|i| {
                let mut t: Vec<TokenId> = (0..shared as u32).collect();
                t.extend((0..tail as u32).map(|j| 100_000 + i as u32 * 1000 + j));
                SimRequest::from_tokens(i, t, output)
            })
            .collect()
    }

    #[test]
    fn stepped_session_matches_batch_run() {
        let e = engine();
        let rs = reqs(40, 64, 32, 4);
        let batch = e.run(&rs).unwrap();
        let mut s = e.session().unwrap();
        for r in &rs {
            s.enqueue(r.clone());
        }
        while s.step().unwrap() {}
        let out = s.finish();
        assert_eq!(out.report, batch);
        assert_eq!(out.completions.len(), 40);
    }

    #[test]
    fn completion_extraction_by_request_id() {
        let e = engine();
        let mut s = e.session().unwrap();
        let done = s.run_batch(&reqs(6, 32, 8, 4)).unwrap().to_vec();
        assert_eq!(s.completions(), done.as_slice());
        for c in &done {
            assert_eq!(s.completion_of(c.id), Some(c));
        }
        assert!(s.completion_of(999).is_none());
        // Re-submitting an id keeps the latest record reachable.
        let mut dup = reqs(1, 32, 8, 4);
        dup[0].id = 3;
        s.run_batch(&dup).unwrap();
        let first = *done.iter().find(|c| c.id == 3).unwrap();
        let latest = s.completion_of(3).copied().unwrap();
        assert!(latest.finished_s > first.finished_s);
        assert_eq!(s.completions().len(), 7);
    }

    #[test]
    fn macro_stepping_matches_single_stepping() {
        let e = engine();
        let rs = reqs(60, 96, 32, 24);
        let mut fine = e.session().unwrap();
        let mut coarse = e.session().unwrap();
        for r in &rs {
            fine.enqueue_ref(r);
            coarse.enqueue_ref(r);
        }
        while fine.step().unwrap() {}
        while coarse.step_until(None).unwrap() {}
        let a = fine.finish();
        let b = coarse.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn step_until_honors_the_horizon() {
        let e = engine();
        let rs = reqs(8, 64, 16, 64);
        let mut fine = e.session().unwrap();
        let mut coarse = e.session().unwrap();
        for r in &rs {
            fine.enqueue_ref(r);
            coarse.enqueue_ref(r);
        }
        // Walk both sessions to a mid-flight instant the fine-grained loop
        // defines; the macro loop must stop at the exact same clock.
        let t = 1.5;
        while !fine.is_idle() && fine.clock() < t {
            fine.step().unwrap();
        }
        while !coarse.is_idle() && coarse.clock() < t {
            coarse.step_until(Some(t)).unwrap();
        }
        assert_eq!(fine.clock(), coarse.clock());
        assert_eq!(fine.completed(), coarse.completed());
        // At/past the horizon the call does no work and says so, so a
        // `while step_until(h)?` driver loop terminates instead of spinning.
        if coarse.clock() >= t {
            let before = coarse.clock();
            assert!(!coarse.step_until(Some(t)).unwrap());
            assert_eq!(coarse.clock(), before);
        }
        while fine.step().unwrap() {}
        while coarse.step_until(None).unwrap() {}
        assert_eq!(fine.finish(), coarse.finish());
    }

    #[test]
    fn completions_are_exactly_once_and_consistent() {
        let e = engine();
        let rs = reqs(25, 32, 16, 3);
        let mut s = e.session().unwrap();
        for r in &rs {
            s.enqueue(r.clone());
        }
        while s.step().unwrap() {}
        let out = s.finish();
        let mut ids: Vec<usize> = out.completions.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
        for c in &out.completions {
            assert!(c.admitted_s <= c.finished_s);
            assert!(c.ttft_s >= 0.0);
            assert!(c.cached_tokens <= c.prompt_tokens);
            assert_eq!(c.output_tokens, 3);
        }
        let cached: u64 = out.completions.iter().map(|c| c.cached_tokens as u64).sum();
        assert_eq!(cached, out.report.cached_prompt_tokens);
    }

    #[test]
    fn run_batch_once_matches_engine_run() {
        let e = engine();
        let rs = reqs(30, 64, 32, 4);
        let batch = e.run(&rs).unwrap();
        let mut s = e.session().unwrap();
        let completions = s.run_batch(&rs).unwrap();
        assert_eq!(completions.len(), 30);
        assert_eq!(s.finish().report, batch);
    }

    #[test]
    fn run_batch_returns_only_new_completions_and_reuses_cache() {
        let e = engine();
        let rs = reqs(40, 96, 16, 2);
        let mut s = e.session().unwrap();
        let first = s.run_batch(&rs[..20]).unwrap();
        assert_eq!(first.len(), 20);
        let first_cached: usize = first.iter().map(|c| c.cached_tokens).sum();
        let second = s.run_batch(&rs[20..]).unwrap();
        assert_eq!(second.len(), 20);
        let mut ids: Vec<usize> = second.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (20..40).collect::<Vec<_>>());
        // The shared 96-token prefix computed by batch one serves batch two
        // from cache: every second-batch request hits it fully.
        for c in second {
            assert!(c.cached_tokens >= 96, "cached {} < prefix", c.cached_tokens);
        }
        let second_cached: usize = second.iter().map(|c| c.cached_tokens).sum();
        assert!(second_cached > first_cached);
        assert_eq!(s.finish().completions.len(), 40);
    }

    #[test]
    fn run_batch_with_no_requests_is_a_noop() {
        let e = engine();
        let mut s = e.session().unwrap();
        assert!(s.run_batch(&[]).unwrap().is_empty());
        assert_eq!(s.clock(), 0.0);
    }

    #[test]
    fn arrivals_mid_flight_are_served() {
        let e = engine();
        let mut s = e.session().unwrap();
        for r in reqs(10, 48, 16, 2) {
            s.enqueue(r);
        }
        // Drain halfway, then add late arrivals.
        for _ in 0..3 {
            s.step().unwrap();
        }
        for mut r in reqs(5, 48, 16, 2) {
            r.id += 100;
            s.enqueue(r);
        }
        while s.step().unwrap() {}
        let out = s.finish();
        assert_eq!(out.report.completed, 15);
    }

    #[test]
    fn advance_to_only_moves_idle_sessions_forward() {
        let e = engine();
        let mut s = e.session().unwrap();
        s.advance_to(5.0);
        assert_eq!(s.clock(), 5.0);
        assert_eq!(s.idle_time_s(), 5.0);
        s.advance_to(2.0); // past: no-op
        assert_eq!(s.clock(), 5.0);
        s.enqueue(SimRequest::from_tokens(0, vec![1, 2, 3, 4], 1));
        s.advance_to(50.0); // busy: no-op
        assert_eq!(s.clock(), 5.0);
        while s.step().unwrap() {}
        let out = s.finish();
        assert_eq!(out.report.completed, 1);
        assert!(out.completions[0].admitted_s >= 5.0);
    }

    #[test]
    fn probes_track_queue_and_cache() {
        let e = engine();
        let mut s = e.session().unwrap();
        assert!(s.is_idle());
        assert_eq!(s.kv_blocks_in_use(), 0);
        let toks: Vec<TokenId> = (0..64).collect();
        s.enqueue(SimRequest::from_tokens(0, toks.clone(), 1));
        assert_eq!(s.queued(), 1);
        assert_eq!(s.probe_cached_tokens(&toks), 0);
        while s.step().unwrap() {}
        // After completion the blocks stay cached (refcount 0, computed).
        assert!(s.probe_cached_tokens(&toks) > 0);
        assert!(s.kv_blocks_in_use() > 0);
        assert!(s.capacity_blocks() > 0);
        assert_eq!(s.cache_stats().admitted, 1);
    }

    #[test]
    fn percentile_helper_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.5), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.99), 4.0);
    }

    #[test]
    fn step_on_idle_session_is_noop() {
        let e = engine();
        let mut s = e.session().unwrap();
        assert!(!s.step().unwrap());
        assert!(!s.step_until(None).unwrap());
        assert_eq!(s.clock(), 0.0);
    }

    #[test]
    fn macro_steps_collapse_decode_runs() {
        // One batch of equal-length outputs decodes in lockstep: the whole
        // decode run after the prefill phase must land in a handful of
        // `step_until` events, while `report.steps` still counts every
        // simulated step.
        let e = engine();
        let rs = reqs(16, 64, 16, 200);
        let mut s = e.session().unwrap();
        for r in &rs {
            s.enqueue_ref(r);
        }
        let mut events = 0u64;
        while s.step_until(None).unwrap() {
            events += 1;
        }
        let out = s.finish();
        assert_eq!(out.report.completed, 16);
        assert!(
            events * 4 < out.report.steps,
            "only {events} events for {} steps — macro-stepping inactive?",
            out.report.steps
        );
    }
}
