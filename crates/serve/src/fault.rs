//! Deterministic pseudo-randomness for fault injection.
//!
//! Every stochastic decision in the workspace's failure machinery — transient
//! error rolls, retry-backoff jitter — draws from [`fault_unit`], a counter
//! -based SplitMix64 generator: the draw is a pure function of
//! `(seed, stream, draw)`, so a chaos run is reproducible byte for byte from
//! its seed alone, independent of evaluation order, thread scheduling, or
//! how many other streams drew in between. Zero wall-clock, zero state.

/// SplitMix64 finalizer.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic uniform draw in `[0, 1)` keyed by `(seed, stream, draw)`.
///
/// `stream` identifies the logical entity (a request id, a replica index)
/// and `draw` the occasion (an attempt number, a submission counter), so
/// distinct decisions never share a draw and the same decision always
/// reproduces it. 53-bit resolution.
///
/// # Examples
///
/// ```
/// use llmqo_serve::fault_unit;
///
/// let u = fault_unit(7, 42, 1);
/// assert!((0.0..1.0).contains(&u));
/// assert_eq!(u, fault_unit(7, 42, 1));
/// assert_ne!(u, fault_unit(7, 42, 2));
/// assert_ne!(u, fault_unit(8, 42, 1));
/// ```
pub fn fault_unit(seed: u64, stream: u64, draw: u64) -> f64 {
    let z = mix64(seed ^ mix64(stream).wrapping_add(mix64(draw.wrapping_add(0x51ed_2701))));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Draw counter reserved for the per-request confidence signal of
/// model-tier cascades. Fault-injection draws use small attempt counters,
/// so the streams can never collide. Matches
/// `llmqo_costmodel::CONFIDENCE_DRAW` — the cost model's `CascadePlan`
/// reproduces the same draws without a crate dependency (locked by a
/// cross-crate differential test).
pub const CONFIDENCE_DRAW: u64 = 0xC0FD;

/// The deterministic per-request confidence signal a cheap model tier
/// reports alongside its completion: uniform in `[0, 1)`, a pure function
/// of `(seed, request_id)`.
///
/// Because the draw depends on nothing but the seed and the request id,
/// dedup, caching, batching, replica fan-out, and pipelining all observe
/// the same confidence for the same logical request — which is what lets
/// cascade execution stay byte-for-byte reproducible.
///
/// # Examples
///
/// ```
/// use llmqo_serve::confidence_unit;
///
/// let c = confidence_unit(42, 7);
/// assert!((0.0..1.0).contains(&c));
/// assert_eq!(c, confidence_unit(42, 7));
/// assert_ne!(c, confidence_unit(42, 8));
/// ```
pub fn confidence_unit(seed: u64, request_id: u64) -> f64 {
    fault_unit(seed, request_id, CONFIDENCE_DRAW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_in_range() {
        for seed in 0..4u64 {
            for stream in 0..16u64 {
                for draw in 0..16u64 {
                    let u = fault_unit(seed, stream, draw);
                    assert!((0.0..1.0).contains(&u));
                    assert_eq!(u, fault_unit(seed, stream, draw));
                }
            }
        }
    }

    #[test]
    fn draws_are_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| fault_unit(3, 9, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let below: usize = (0..n).filter(|&i| fault_unit(3, 9, i) < 0.1).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "P(<0.1) = {frac}");
    }

    #[test]
    fn streams_are_independent() {
        // Adjacent streams/draws must not produce correlated values.
        let a: Vec<f64> = (0..64).map(|d| fault_unit(1, 5, d)).collect();
        let b: Vec<f64> = (0..64).map(|d| fault_unit(1, 6, d)).collect();
        let same = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert_eq!(same, 0);
    }
}
