//! Discrete-time continuous-batching engine simulator.
//!
//! The engine mirrors a vLLM-style serving loop: requests are admitted while
//! KV memory and the sequence-slot limit allow; each simulation step runs one
//! decode token for every running sequence plus a chunk of pending prefill
//! (chunked prefill); step latency is a roofline over compute (dense FLOPs +
//! attention) and memory traffic (weights + KV reads). Prefix-cache hits skip
//! prefill compute for cached tokens and share KV blocks, which both shortens
//! the prefill phase and frees memory for larger decode batches — the two
//! mechanisms behind the paper's end-to-end speedups (§6.2, Appendix D.2).

use crate::hardware::GpuCluster;
use crate::model::ModelSpec;
use crate::session::EngineSession;
use crate::session_reference::SessionReference;
use llmqo_tokenizer::TokenId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Engine tuning parameters. Defaults follow vLLM's.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Tokens per KV block.
    pub block_size: usize,
    /// Maximum concurrently running sequences (vLLM `max_num_seqs`).
    pub max_num_seqs: usize,
    /// Token budget per step for prefill chunks (vLLM `max_num_batched_tokens`).
    pub max_batch_tokens: usize,
    /// Whether automatic prefix caching is enabled. `false` reproduces the
    /// paper's *No Cache* baseline.
    pub enable_prefix_cache: bool,
    /// Whether concurrent requests with equal prefixes are deduplicated
    /// (SGLang RadixAttention / cascade-inference semantics; see
    /// [`crate::CacheConfig::share_in_flight`]). Default `true`.
    pub in_flight_sharing: bool,
    /// Fraction of GPU memory usable by the engine (vLLM
    /// `gpu_memory_utilization`).
    pub gpu_memory_utilization: f64,
    /// Bytes per GPU reserved for activations and runtime workspace.
    pub runtime_reserve_bytes: u64,
    /// Fixed scheduling cost per engine step, seconds.
    pub step_overhead_s: f64,
    /// Serialized client-side cost per request (UDF invocation, tokenization,
    /// HTTP round trip), seconds. Dominates for very small models
    /// (Appendix D.2).
    pub per_request_overhead_s: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            block_size: 16,
            max_num_seqs: 256,
            max_batch_tokens: 8192,
            enable_prefix_cache: true,
            in_flight_sharing: true,
            gpu_memory_utilization: 0.9,
            runtime_reserve_bytes: 1 << 30,
            step_overhead_s: 0.002,
            per_request_overhead_s: 0.018,
        }
    }
}

impl EngineConfig {
    /// The default configuration with prefix caching disabled.
    pub fn no_cache() -> Self {
        EngineConfig {
            enable_prefix_cache: false,
            ..Self::default()
        }
    }
}

/// A model placed on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The served model.
    pub model: ModelSpec,
    /// The GPUs serving it.
    pub cluster: GpuCluster,
}

impl Deployment {
    /// Creates a deployment.
    pub fn new(model: ModelSpec, cluster: GpuCluster) -> Self {
        Deployment { model, cluster }
    }

    /// KV-cache capacity in tokens after weights and runtime reserve.
    pub fn kv_capacity_tokens(&self, config: &EngineConfig) -> u64 {
        let usable = self.cluster.total_mem_bytes() as f64 * config.gpu_memory_utilization
            - self.model.weight_bytes() as f64
            - (config.runtime_reserve_bytes * u64::from(self.cluster.count)) as f64;
        if usable <= 0.0 {
            return 0;
        }
        usable as u64 / self.model.kv_bytes_per_token()
    }

    /// KV-cache capacity in blocks.
    pub fn kv_capacity_blocks(&self, config: &EngineConfig) -> usize {
        (self.kv_capacity_tokens(config) as usize) / config.block_size
    }
}

/// One batch-inference request: a prompt (as shared fragment token streams,
/// concatenated logically) and the number of tokens the model will generate.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Caller-chosen identifier, carried into completions.
    pub id: usize,
    /// Prompt fragments; shared fragments should share `Arc`s.
    pub prompt: Vec<Arc<[TokenId]>>,
    /// Number of output tokens generated before termination.
    pub output_len: u32,
}

impl SimRequest {
    /// Builds a request from one flat token vector.
    pub fn from_tokens(id: usize, tokens: Vec<TokenId>, output_len: u32) -> Self {
        SimRequest {
            id,
            prompt: vec![Arc::from(tokens.into_boxed_slice())],
            output_len,
        }
    }

    /// Total prompt length in tokens.
    pub fn prompt_len(&self) -> usize {
        self.prompt.iter().map(|f| f.len()).sum()
    }
}

/// Engine failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The model does not fit on the cluster at all.
    ModelTooLarge {
        /// Weight bytes required.
        weight_bytes: u64,
        /// Memory available.
        mem_bytes: u64,
    },
    /// A single request exceeds total KV capacity and can never be admitted.
    RequestTooLarge {
        /// The offending request id.
        id: usize,
        /// Blocks the request needs.
        needed_blocks: usize,
        /// Total capacity in blocks.
        capacity_blocks: usize,
    },
    /// A structurally unusable configuration (e.g. a zero-replica
    /// [`SessionGroup`](crate::SessionGroup)).
    InvalidConfig {
        /// What is wrong.
        reason: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ModelTooLarge {
                weight_bytes,
                mem_bytes,
            } => write!(
                f,
                "model weights ({weight_bytes} B) exceed cluster memory ({mem_bytes} B)"
            ),
            EngineError::RequestTooLarge {
                id,
                needed_blocks,
                capacity_blocks,
            } => write!(
                f,
                "request {id} needs {needed_blocks} KV blocks but capacity is {capacity_blocks}"
            ),
            EngineError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Outcome of a simulated batch job.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineReport {
    /// End-to-end job completion time, seconds (the paper's primary metric).
    pub job_completion_time_s: f64,
    /// Portion of step time attributed to prefill compute.
    pub prefill_time_s: f64,
    /// Portion of step time attributed to decode.
    pub decode_time_s: f64,
    /// Scheduling and per-request overhead.
    pub overhead_time_s: f64,
    /// Prompt tokens across all requests.
    pub total_prompt_tokens: u64,
    /// Prompt tokens served from the prefix cache (no prefill compute).
    pub cached_prompt_tokens: u64,
    /// Prompt tokens actually prefilled.
    pub computed_prompt_tokens: u64,
    /// Output tokens generated.
    pub total_output_tokens: u64,
    /// Engine steps executed.
    pub steps: u64,
    /// Maximum concurrently running sequences observed.
    pub peak_running: usize,
    /// Peak KV blocks in use (shared + private).
    pub peak_blocks: usize,
    /// KV blocks evicted.
    pub evictions: u64,
    /// Requests completed (always all of them on success).
    pub completed: usize,
    /// Median time from admission to first output token, seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile time to first token, seconds.
    pub ttft_p99_s: f64,
    /// Median request latency (admission to completion), seconds.
    pub latency_p50_s: f64,
    /// 99th-percentile request latency, seconds.
    pub latency_p99_s: f64,
}

impl EngineReport {
    /// Fraction of prompt tokens served from cache — the paper's PHR
    /// (Table 2).
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.total_prompt_tokens == 0 {
            0.0
        } else {
            self.cached_prompt_tokens as f64 / self.total_prompt_tokens as f64
        }
    }
}

/// The simulator. Construct once per deployment and reuse across runs; each
/// [`run`](SimEngine::run) uses a fresh cache.
///
/// # Examples
///
/// ```
/// use llmqo_serve::{Deployment, EngineConfig, GpuCluster, GpuSpec, ModelSpec, SimEngine, SimRequest};
///
/// let engine = SimEngine::new(
///     Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
///     EngineConfig::default(),
/// );
/// let reqs: Vec<SimRequest> = (0..4)
///     .map(|i| SimRequest::from_tokens(i, vec![1, 2, 3, 4, 5, 6, 7, 8], 2))
///     .collect();
/// let report = engine.run(&reqs).unwrap();
/// assert_eq!(report.completed, 4);
/// assert!(report.job_completion_time_s > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimEngine {
    deployment: Deployment,
    config: EngineConfig,
}

impl SimEngine {
    /// Creates an engine.
    pub fn new(deployment: Deployment, config: EngineConfig) -> Self {
        SimEngine { deployment, config }
    }

    /// The deployment being simulated.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Opens an incremental [`EngineSession`] over this deployment: the same
    /// scheduling loop as [`run`](SimEngine::run), but driven one step at a
    /// time by the caller, with requests arriving at any point. This is the
    /// hook the `llmqo-cluster` replica scheduler builds on.
    ///
    /// # Errors
    ///
    /// [`EngineError::ModelTooLarge`] if weights do not fit.
    pub fn session(&self) -> Result<EngineSession, EngineError> {
        EngineSession::new(&self.deployment, self.config)
    }

    /// Opens a [`SessionReference`] — the frozen pre-rewrite per-token loop —
    /// over this deployment. Exists for differential validation
    /// (`tests/engine_differential.rs`) and the `perf_engine` before/after
    /// benchmark; production drivers should use
    /// [`session`](SimEngine::session).
    ///
    /// # Errors
    ///
    /// [`EngineError::ModelTooLarge`] if weights do not fit.
    pub fn reference_session(&self) -> Result<SessionReference, EngineError> {
        SessionReference::new(&self.deployment, self.config)
    }

    /// Runs the batch job to completion, processing `requests` in order.
    /// Submission is by reference (prompts are hashed once, never cloned)
    /// and the drive loop macro-steps through steady-state decode.
    ///
    /// # Errors
    ///
    /// [`EngineError::ModelTooLarge`] if weights do not fit;
    /// [`EngineError::RequestTooLarge`] if a request can never be admitted.
    pub fn run(&self, requests: &[SimRequest]) -> Result<EngineReport, EngineError> {
        let mut session = self.session()?;
        for request in requests {
            session.enqueue_ref(request);
        }
        while session.step_until(None)? {}
        Ok(session.finish().report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::GpuSpec;

    fn l4_8b() -> Deployment {
        Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4()))
    }

    fn reqs(n: usize, prompt_len: usize, shared_prefix: usize, output: u32) -> Vec<SimRequest> {
        // Each prompt: `shared_prefix` common tokens then unique tail.
        (0..n)
            .map(|i| {
                let mut t: Vec<TokenId> = (0..shared_prefix as u32).collect();
                t.extend(
                    (0..(prompt_len - shared_prefix) as u32)
                        .map(|j| 1_000_000 + i as u32 * 10_000 + j),
                );
                SimRequest::from_tokens(i, t, output)
            })
            .collect()
    }

    #[test]
    fn completes_all_requests() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let r = engine.run(&reqs(20, 64, 32, 4)).unwrap();
        assert_eq!(r.completed, 20);
        assert_eq!(r.total_output_tokens, 80);
        assert!(r.job_completion_time_s > 0.0);
    }

    #[test]
    fn token_conservation() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let r = engine.run(&reqs(50, 128, 64, 2)).unwrap();
        assert_eq!(
            r.cached_prompt_tokens + r.computed_prompt_tokens,
            r.total_prompt_tokens
        );
        assert_eq!(r.total_prompt_tokens, 50 * 128);
    }

    #[test]
    fn shared_prefixes_hit_after_first_request() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let r = engine.run(&reqs(300, 128, 96, 2)).unwrap();
        // 96 of 128 tokens shareable → with in-flight dedup every request
        // after the very first hits 75%.
        assert!(
            r.prefix_hit_rate() > 0.7,
            "hit rate {} too low",
            r.prefix_hit_rate()
        );
    }

    #[test]
    fn strict_mode_loses_same_wave_sharing() {
        let strict = SimEngine::new(
            l4_8b(),
            EngineConfig {
                in_flight_sharing: false,
                ..EngineConfig::default()
            },
        );
        let dedup = SimEngine::new(l4_8b(), EngineConfig::default());
        let rs = reqs(300, 128, 96, 2);
        let a = strict.run(&rs).unwrap();
        let b = dedup.run(&rs).unwrap();
        // Requests admitted in the same scheduling wave cannot reuse cold
        // prefixes under strict vLLM-v0 semantics.
        assert!(
            a.prefix_hit_rate() < b.prefix_hit_rate(),
            "strict {} should trail dedup {}",
            a.prefix_hit_rate(),
            b.prefix_hit_rate()
        );
        assert!(a.job_completion_time_s >= b.job_completion_time_s);
    }

    #[test]
    fn no_cache_never_hits_and_is_slower() {
        let cached = SimEngine::new(l4_8b(), EngineConfig::default());
        let uncached = SimEngine::new(l4_8b(), EngineConfig::no_cache());
        let rs = reqs(200, 256, 224, 2);
        let rc = cached.run(&rs).unwrap();
        let ru = uncached.run(&rs).unwrap();
        assert_eq!(ru.cached_prompt_tokens, 0);
        assert_eq!(ru.prefix_hit_rate(), 0.0);
        assert!(
            ru.job_completion_time_s > rc.job_completion_time_s,
            "no-cache {} should exceed cached {}",
            ru.job_completion_time_s,
            rc.job_completion_time_s
        );
    }

    #[test]
    fn more_sharing_is_faster() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let low = engine.run(&reqs(200, 256, 32, 2)).unwrap();
        let high = engine.run(&reqs(200, 256, 224, 2)).unwrap();
        assert!(high.prefix_hit_rate() > low.prefix_hit_rate());
        assert!(high.job_completion_time_s < low.job_completion_time_s);
    }

    #[test]
    fn request_too_large_is_detected() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let cap_tokens = engine.deployment().kv_capacity_tokens(engine.config()) as usize;
        let huge = vec![SimRequest::from_tokens(
            7,
            (0..(cap_tokens as u32 + 64)).collect(),
            1,
        )];
        match engine.run(&huge) {
            Err(EngineError::RequestTooLarge { id, .. }) => assert_eq!(id, 7),
            other => panic!("expected RequestTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn model_too_large_is_detected() {
        let tiny = GpuSpec {
            name: "tiny".into(),
            mem_bytes: 1 << 30,
            mem_bw: 1e12,
            effective_flops: 1e12,
        };
        let engine = SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(tiny)),
            EngineConfig::default(),
        );
        assert!(matches!(
            engine.run(&reqs(1, 8, 0, 1)),
            Err(EngineError::ModelTooLarge { .. })
        ));
    }

    #[test]
    fn empty_job_is_instant() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let r = engine.run(&[]).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.job_completion_time_s, 0.0);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn zero_output_requests_complete() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let r = engine.run(&reqs(5, 32, 0, 0)).unwrap();
        assert_eq!(r.completed, 5);
        assert_eq!(r.total_output_tokens, 0);
    }

    #[test]
    fn kv_capacity_is_sane_for_presets() {
        let d8 = l4_8b();
        let cfg = EngineConfig::default();
        let t8 = d8.kv_capacity_tokens(&cfg);
        assert!(t8 > 20_000 && t8 < 60_000, "8B on L4: {t8}");
        let d70 = Deployment::new(
            ModelSpec::llama3_70b(),
            GpuCluster::tensor_parallel(GpuSpec::l4(), 8),
        );
        let t70 = d70.kv_capacity_tokens(&cfg);
        assert!(t70 > 40_000, "70B on 8×L4: {t70}");
        let d1 = Deployment::new(ModelSpec::llama3_2_1b(), GpuCluster::single(GpuSpec::l4()));
        let t1 = d1.kv_capacity_tokens(&cfg);
        assert!(t1 > 400_000, "1B on L4: {t1}");
    }

    #[test]
    fn latency_percentiles_are_ordered_and_bounded() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let r = engine.run(&reqs(100, 128, 64, 8)).unwrap();
        assert!(r.ttft_p50_s > 0.0);
        assert!(r.ttft_p50_s <= r.ttft_p99_s);
        assert!(r.latency_p50_s >= r.ttft_p50_s);
        assert!(r.latency_p99_s <= r.job_completion_time_s + 1e-9);
    }

    #[test]
    fn report_time_decomposition_covers_clock() {
        let engine = SimEngine::new(l4_8b(), EngineConfig::default());
        let r = engine.run(&reqs(30, 128, 64, 8)).unwrap();
        let parts = r.prefill_time_s + r.decode_time_s + r.overhead_time_s;
        // Step overhead is folded into phase attribution; parts must not
        // exceed the clock by more than accumulated step overheads.
        assert!(parts <= r.job_completion_time_s + 1e-6);
        assert!(r.prefill_time_s > 0.0);
        assert!(r.decode_time_s > 0.0);
    }
}
