//! Serving-layer observability hooks.
//!
//! All instrumentation in this crate routes through the handles defined
//! here. The handles are `&'static` references into the global
//! [`llmqo_obs`] registry, resolved once through a [`OnceLock`], so the
//! per-event cost when observability is enabled is a relaxed atomic
//! increment — and when disabled a single relaxed load of the global flag
//! before any handle is touched.
//!
//! None of these hooks may change engine behavior: they read simulation
//! state, never write it, and the differential suite in
//! `tests/obs_differential.rs` proves enabled and disabled runs produce
//! byte-identical reports.

use llmqo_obs::{Counter, Histogram};
use std::sync::OnceLock;

use crate::cache::CacheInternals;

/// `&'static` metric handles for the serving layer.
pub struct ServeMetrics {
    /// Requests pushed into the waiting queue.
    pub requests_enqueued: &'static Counter,
    /// Requests admitted into the running batch.
    pub requests_admitted: &'static Counter,
    /// Requests that ran to completion.
    pub completions: &'static Counter,
    /// Decode tokens produced by completed requests.
    pub output_tokens: &'static Counter,
    /// Prompt tokens served from the prefix cache at admission.
    pub cached_prompt_tokens: &'static Counter,
    /// Time-to-first-token distribution (simulated seconds).
    pub ttft_s: &'static Histogram,
    /// End-to-end request latency distribution (simulated seconds).
    pub latency_s: &'static Histogram,
    /// Prefix-cache blocks evicted (LRU leaf cascade).
    pub cache_evictions: &'static Counter,
    /// Block-map lookups issued by probe / admission walks.
    pub cache_block_map_probes: &'static Counter,
    /// Stale eviction-heap entries lazily discarded.
    pub cache_heap_stale_invalidations: &'static Counter,
    /// `mark_computed` calls (prefill chunk completions).
    pub cache_mark_computed_calls: &'static Counter,
    /// Wall-clock seconds spent inside `EngineSession::step` (only
    /// populated with the `wallclock` feature of `llmqo-obs`).
    pub wall_step_s: &'static Histogram,
    /// Wall-clock seconds spent in prefix-cache admission/bookkeeping calls.
    pub wall_cache_s: &'static Histogram,
    /// Wall-clock seconds spent in the macro-stepped decode recurrence.
    pub wall_decode_recurrence_s: &'static Histogram,
}

/// The process-wide serving metric handles.
pub fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = llmqo_obs::registry();
        ServeMetrics {
            requests_enqueued: r.counter("serve.requests_enqueued"),
            requests_admitted: r.counter("serve.requests_admitted"),
            completions: r.counter("serve.completions"),
            output_tokens: r.counter("serve.output_tokens"),
            cached_prompt_tokens: r.counter("serve.cached_prompt_tokens"),
            ttft_s: r.histogram("serve.ttft_s"),
            latency_s: r.histogram("serve.latency_s"),
            cache_evictions: r.counter("cache.evictions"),
            cache_block_map_probes: r.counter("cache.block_map_probes"),
            cache_heap_stale_invalidations: r.counter("cache.heap_stale_invalidations"),
            cache_mark_computed_calls: r.counter("cache.mark_computed_calls"),
            wall_step_s: r.histogram("wall.step_s"),
            wall_cache_s: r.histogram("wall.cache_admit_s"),
            wall_decode_recurrence_s: r.histogram("wall.decode_recurrence_s"),
        }
    })
}

/// Publishes a snapshot of [`CacheInternals`] deltas into the global
/// counters. `prev` is the last published snapshot; returns the new one so
/// callers can publish incrementally without double counting.
pub fn publish_cache_internals(prev: CacheInternals, now: CacheInternals) -> CacheInternals {
    let m = metrics();
    m.cache_evictions.add(now.evictions - prev.evictions);
    m.cache_block_map_probes
        .add(now.block_map_probes - prev.block_map_probes);
    m.cache_heap_stale_invalidations
        .add(now.heap_stale_invalidations - prev.heap_stale_invalidations);
    m.cache_mark_computed_calls
        .add(now.mark_computed_calls - prev.mark_computed_calls);
    now
}
