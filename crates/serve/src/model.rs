//! Model specifications.
//!
//! The simulator derives its cost model from real architecture shapes: KV
//! bytes per token follow from layer count, grouped-query KV heads and head
//! dimension; compute follows from the 2·params FLOPs-per-token rule. The
//! presets match the models used in the paper's evaluation (§6.1.3 and
//! Appendix D.2).

use serde::{Deserialize, Serialize};

/// Architecture shape of a served model.
///
/// # Examples
///
/// ```
/// use llmqo_serve::ModelSpec;
/// let m = ModelSpec::llama3_8b();
/// // 2 (K+V) × 32 layers × 8 KV heads × 128 head dim × 2 bytes = 128 KiB.
/// assert_eq!(m.kv_bytes_per_token(), 131_072);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u32,
    /// Grouped-query attention KV heads.
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Model (hidden) dimension, used for the quadratic attention term.
    pub hidden: u32,
    /// Bytes per scalar (2 = fp16/bf16).
    pub dtype_bytes: u32,
}

impl ModelSpec {
    /// Meta-Llama-3-8B-Instruct (the paper's primary model).
    pub fn llama3_8b() -> Self {
        ModelSpec {
            name: "Llama-3-8B-Instruct".to_owned(),
            params: 8_030_000_000,
            layers: 32,
            kv_heads: 8,
            head_dim: 128,
            hidden: 4096,
            dtype_bytes: 2,
        }
    }

    /// Meta-Llama-3-70B-Instruct (paper Fig. 5, served on 8×L4).
    pub fn llama3_70b() -> Self {
        ModelSpec {
            name: "Llama-3-70B-Instruct".to_owned(),
            params: 70_600_000_000,
            layers: 80,
            kv_heads: 8,
            head_dim: 128,
            hidden: 8192,
            dtype_bytes: 2,
        }
    }

    /// Llama-3.2-1B (paper Appendix D.2, Table 7).
    pub fn llama3_2_1b() -> Self {
        ModelSpec {
            name: "Llama-3.2-1B".to_owned(),
            params: 1_240_000_000,
            layers: 16,
            kv_heads: 8,
            head_dim: 64,
            hidden: 2048,
            dtype_bytes: 2,
        }
    }

    /// KV-cache bytes stored per token: `2 · layers · kv_heads · head_dim ·
    /// dtype_bytes` (key and value vectors for every layer).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * u64::from(self.layers)
            * u64::from(self.kv_heads)
            * u64::from(self.head_dim)
            * u64::from(self.dtype_bytes)
    }

    /// Bytes of model weights.
    pub fn weight_bytes(&self) -> u64 {
        self.params * u64::from(self.dtype_bytes)
    }

    /// Dense FLOPs to process or generate one token (2 · params).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.params as f64
    }

    /// Extra attention FLOPs for one token attending over a context of
    /// `context` tokens (≈ 4 · hidden · context for QKᵀ and AV).
    pub fn attn_flops(&self, context: u64) -> f64 {
        4.0 * f64::from(self.hidden) * context as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_bytes_match_known_values() {
        assert_eq!(ModelSpec::llama3_8b().kv_bytes_per_token(), 128 * 1024);
        assert_eq!(ModelSpec::llama3_70b().kv_bytes_per_token(), 320 * 1024);
        assert_eq!(ModelSpec::llama3_2_1b().kv_bytes_per_token(), 32 * 1024);
    }

    #[test]
    fn weight_bytes_scale_with_params() {
        let m = ModelSpec::llama3_8b();
        assert_eq!(m.weight_bytes(), 2 * 8_030_000_000);
        assert!(ModelSpec::llama3_70b().weight_bytes() > m.weight_bytes());
    }

    #[test]
    fn flops_per_token_is_2p() {
        assert_eq!(ModelSpec::llama3_2_1b().flops_per_token(), 2.48e9);
    }

    #[test]
    fn attn_flops_grow_linearly_with_context() {
        let m = ModelSpec::llama3_8b();
        assert_eq!(m.attn_flops(200), 2.0 * m.attn_flops(100));
        assert_eq!(m.attn_flops(0), 0.0);
    }
}
