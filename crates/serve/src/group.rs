//! A fixed set of [`EngineSession`]s driven over one shared timeline.
//!
//! [`SessionGroup`] is the serving-side half of cluster-parallel SQL
//! execution: one *logical* engine made of `n` replica sessions whose local
//! clocks all live on the statement's discrete-event timeline. The caller
//! decides placement (the relational layer routes dedup-compacted batches by
//! reorder-plan prefix key); the group handles the clock mechanics:
//!
//! * [`advance_to`](SessionGroup::advance_to) fast-forwards every idle
//!   replica to an upstream hand-off instant, so a batch cannot start
//!   before its input exists.
//! * [`drain`](SessionGroup::drain) runs every replica to idle. Replicas
//!   never interact below this layer (no shared cache, no work stealing),
//!   so per-replica event loops are trivially equivalent to a globally
//!   clock-ordered interleaving — the property the cluster simulator has to
//!   work much harder for.
//! * [`clock`](SessionGroup::clock) is the *group* clock: the max replica
//!   clock, i.e. when the batch fanned out across the group is fully done.

use crate::engine::{EngineError, SimEngine, SimRequest};
use crate::session::{Completion, EngineSession, SessionReport};

/// `n` independent replica sessions over one deployment, sharing a
/// caller-driven timeline. See the module docs above.
#[derive(Debug)]
pub struct SessionGroup {
    sessions: Vec<EngineSession>,
}

impl SessionGroup {
    /// Opens `n` replica sessions over `engine`'s deployment.
    ///
    /// Replica `i` reports observability spans on trace lane `i + 1`
    /// (lane 0 stays the single-engine / SQL lane), mirroring the cluster
    /// simulator's lane layout.
    ///
    /// # Errors
    ///
    /// [`EngineError::ModelTooLarge`] if the model does not fit the
    /// deployment (`n` sessions of an unfittable model fail exactly like
    /// one), and [`EngineError::InvalidConfig`] when `n == 0`.
    pub fn new(engine: &SimEngine, n: usize) -> Result<Self, EngineError> {
        if n == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "a session group needs at least one replica",
            });
        }
        let mut sessions = Vec::with_capacity(n);
        for i in 0..n {
            let mut session = engine.session()?;
            let lane = u32::try_from(i + 1).unwrap_or(u32::MAX);
            session.set_trace_lane(lane);
            if llmqo_obs::enabled() {
                llmqo_obs::tracer().name_lane(lane, &format!("replica {i}"));
            }
            sessions.push(session);
        }
        Ok(SessionGroup { sessions })
    }

    /// Number of replica sessions in the group.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the group has no replicas. Never true for a constructed
    /// group ([`new`](Self::new) rejects `n == 0`); exists for clippy's
    /// `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Read-only view of replica `i`, for snapshot building (queue depth,
    /// KV occupancy, clock) at routing time.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &EngineSession {
        &self.sessions[i]
    }

    /// Enqueues a request on replica `i` without advancing time.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn enqueue_on(&mut self, i: usize, request: &SimRequest) {
        self.sessions[i].enqueue_ref(request);
    }

    /// Fast-forwards every idle replica to `t` (busy replicas and replicas
    /// already past `t` are untouched — same contract as
    /// [`EngineSession::advance_to`]). Call with the upstream operator's
    /// hand-off instant before enqueueing a batch.
    pub fn advance_to(&mut self, t: f64) {
        for s in &mut self.sessions {
            s.advance_to(t);
        }
    }

    /// The group clock: the latest replica clock, i.e. the instant at which
    /// everything enqueued so far has finished (once drained).
    pub fn clock(&self) -> f64 {
        self.sessions
            .iter()
            .map(EngineSession::clock)
            .fold(0.0, f64::max)
    }

    /// Runs every replica to idle and returns the completions this call
    /// produced, grouped by replica index — a deterministic merge order for
    /// callers that consume completions by request id.
    ///
    /// # Errors
    ///
    /// [`EngineError::RequestTooLarge`] if a replica meets a request that
    /// can never be admitted.
    pub fn drain(&mut self) -> Result<Vec<Vec<Completion>>, EngineError> {
        let mut new = Vec::with_capacity(self.sessions.len());
        for s in &mut self.sessions {
            let before = s.completions().len();
            while s.step_until(None)? {}
            new.push(s.completions()[before..].to_vec());
        }
        Ok(new)
    }

    /// Finalizes every replica and returns their reports, indexed by
    /// replica. Aggregation (sums, max job-completion time) is the
    /// caller's business: different callers want different merges.
    pub fn finish(self) -> Vec<SessionReport> {
        self.sessions
            .into_iter()
            .map(EngineSession::finish)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::hardware::{GpuCluster, GpuSpec};
    use crate::model::ModelSpec;
    use crate::Deployment;

    fn engine() -> SimEngine {
        SimEngine::new(
            Deployment::new(ModelSpec::llama3_8b(), GpuCluster::single(GpuSpec::l4())),
            EngineConfig::default(),
        )
    }

    fn request(id: usize, salt: u32) -> SimRequest {
        let mut toks: Vec<u32> = (0..48).collect();
        toks.extend((0..16).map(|j| 1000 + salt * 100 + j));
        SimRequest::from_tokens(id, toks, 4)
    }

    #[test]
    fn zero_replicas_is_rejected() {
        assert!(matches!(
            SessionGroup::new(&engine(), 0),
            Err(EngineError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn single_replica_group_matches_plain_session() {
        let engine = engine();
        let requests: Vec<SimRequest> = (0..12).map(|i| request(i, i as u32)).collect();

        let mut solo = engine.session().unwrap();
        let solo_completions = solo.run_batch(&requests).unwrap().to_vec();
        let solo_report = solo.finish();

        let mut group = SessionGroup::new(&engine, 1).unwrap();
        for r in &requests {
            group.enqueue_on(0, r);
        }
        let drained = group.drain().unwrap();
        let reports = group.finish();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0], solo_completions);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].report, solo_report.report);
    }

    #[test]
    fn replicas_run_independently_and_group_clock_is_max() {
        let engine = engine();
        let mut group = SessionGroup::new(&engine, 3).unwrap();
        // Replica 0 gets 8 requests, replica 2 gets 1, replica 1 none.
        for i in 0..8 {
            group.enqueue_on(0, &request(i, i as u32));
        }
        group.enqueue_on(2, &request(100, 7));
        let drained = group.drain().unwrap();
        assert_eq!(drained[0].len(), 8);
        assert!(drained[1].is_empty());
        assert_eq!(drained[2].len(), 1);
        let clocks: Vec<f64> = (0..3).map(|i| group.get(i).clock()).collect();
        assert_eq!(group.clock(), clocks.iter().copied().fold(0.0, f64::max));
        assert!(clocks[0] > clocks[2], "heavier replica finishes later");
        assert_eq!(clocks[1], 0.0, "unused replica never moves");
    }

    #[test]
    fn advance_to_moves_only_idle_replicas_forward() {
        let engine = engine();
        let mut group = SessionGroup::new(&engine, 2).unwrap();
        group.enqueue_on(0, &request(0, 0));
        group.drain().unwrap();
        let busy_clock = group.get(0).clock();
        group.advance_to(busy_clock / 2.0);
        assert_eq!(group.get(0).clock(), busy_clock, "never rewinds");
        assert_eq!(group.get(1).clock(), busy_clock / 2.0);
    }

    #[test]
    fn identical_fan_out_matches_per_replica_solo_runs() {
        // Two replicas, disjoint request sets: each replica's completions
        // must equal a solo session fed the same subset, since replicas
        // share nothing.
        let engine = engine();
        let a: Vec<SimRequest> = (0..5).map(|i| request(i, 3)).collect();
        let b: Vec<SimRequest> = (5..9).map(|i| request(i, 4)).collect();

        let mut group = SessionGroup::new(&engine, 2).unwrap();
        for r in &a {
            group.enqueue_on(0, r);
        }
        for r in &b {
            group.enqueue_on(1, r);
        }
        let drained = group.drain().unwrap();

        for (subset, got) in [(&a, &drained[0]), (&b, &drained[1])] {
            let mut solo = engine.session().unwrap();
            assert_eq!(solo.run_batch(subset).unwrap(), &got[..]);
        }
    }
}
