//! # llmqo-rag — retrieval substrate for RAG queries (paper T5)
//!
//! Stand-in for the paper's `gte-base` embeddings + FAISS pipeline (§6.1.3):
//! for each question, the top-k supporting contexts are fetched from a
//! corpus by vector similarity and appended to the question as table fields.
//! Because popular contexts are retrieved for *many* questions, the
//! resulting table is rich in repeated field values — exactly the structure
//! GGR exploits (§6.2, "multiple questions might share similar contexts").
//!
//! The embedder is a deterministic feature-hashing bag-of-tokens model; the
//! index is exact (brute-force) cosine KNN. Neither needs to be a *good*
//! retriever — only a deterministic one that maps textually similar
//! questions to overlapping context sets, which feature hashing guarantees.
//!
//! # Example
//!
//! ```
//! use llmqo_rag::{Embedder, VectorIndex};
//!
//! let embedder = Embedder::new(64);
//! let mut index = VectorIndex::new(64);
//! index.insert(0, embedder.embed("the cat sat on the mat"));
//! index.insert(1, embedder.embed("stock markets fell sharply"));
//! let hits = index.search(&embedder.embed("a cat on a mat"), 1);
//! assert_eq!(hits[0].id, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use llmqo_tokenizer::Tokenizer;

/// Deterministic feature-hashing text embedder.
///
/// Tokens are hashed into `dim` buckets with ±1 signs; the resulting vector
/// is L2-normalized. Identical texts embed identically, and texts sharing
/// vocabulary are close in cosine similarity.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
    tokenizer: Tokenizer,
}

impl Embedder {
    /// Creates an embedder with the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Embedder {
            dim,
            tokenizer: Tokenizer::new(),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds `text` into a unit-norm vector (all-zero for empty text).
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0f32; self.dim];
        for tok in self.tokenizer.tokenize(text) {
            let h = splitmix(u64::from(tok));
            let bucket = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[bucket] += sign;
        }
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

/// One KNN search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The document id supplied at insertion.
    pub id: usize,
    /// Cosine similarity to the query (vectors are unit norm).
    pub score: f32,
}

/// Exact (brute-force) cosine KNN index — the FAISS stand-in.
///
/// Exactness keeps retrieval deterministic across runs, which the
/// reproduction needs more than speed; corpora here are ≤ tens of thousands
/// of contexts.
#[derive(Debug, Clone, Default)]
pub struct VectorIndex {
    dim: usize,
    ids: Vec<usize>,
    vectors: Vec<f32>,
}

impl VectorIndex {
    /// Creates an empty index for vectors of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        VectorIndex {
            dim,
            ids: Vec::new(),
            vectors: Vec::new(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Inserts a vector under `id`.
    ///
    /// # Panics
    ///
    /// Panics if the vector's dimensionality is wrong.
    pub fn insert(&mut self, id: usize, vector: Vec<f32>) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        self.ids.push(id);
        self.vectors.extend(vector);
    }

    /// The `k` nearest neighbors of `query` by inner product, best first.
    /// Ties break toward the lower id for determinism.
    ///
    /// # Panics
    ///
    /// Panics if the query's dimensionality is wrong.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut scored: Vec<Neighbor> = self
            .ids
            .iter()
            .enumerate()
            .map(|(row, &id)| {
                let base = row * self.dim;
                let score = self.vectors[base..base + self.dim]
                    .iter()
                    .zip(query)
                    .map(|(a, b)| a * b)
                    .sum();
                Neighbor { id, score }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        scored.truncate(k);
        scored
    }
}

/// Retrieves the top-`k` context ids for each question over a corpus — the
/// paper's RAG table construction (questions × fetched evidence).
///
/// Returns, for each question, the ids of its retrieved contexts (exactly
/// `k` of them when the corpus is large enough).
pub fn retrieve_contexts(
    embedder: &Embedder,
    corpus: &[String],
    questions: &[String],
    k: usize,
) -> Vec<Vec<usize>> {
    let mut index = VectorIndex::new(embedder.dim());
    for (id, doc) in corpus.iter().enumerate() {
        index.insert(id, embedder.embed(doc));
    }
    questions
        .iter()
        .map(|q| {
            index
                .search(&embedder.embed(q), k)
                .into_iter()
                .map(|n| n.id)
                .collect()
        })
        .collect()
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_deterministic_and_unit_norm() {
        let e = Embedder::new(32);
        let a = e.embed("hello world");
        let b = e.embed("hello world");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = Embedder::new(16);
        assert!(e.embed("").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar() {
        let e = Embedder::new(128);
        let base = e.embed("the quick brown fox jumps over the lazy dog");
        let near = e.embed("the quick brown fox leaps over a lazy dog");
        let far = e.embed("quarterly earnings exceeded analyst expectations");
        let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        assert!(dot(&base, &near) > dot(&base, &far));
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = Embedder::new(0);
    }

    #[test]
    fn knn_finds_exact_match_first() {
        let e = Embedder::new(64);
        let mut idx = VectorIndex::new(64);
        let docs = ["alpha beta gamma", "delta epsilon zeta", "eta theta iota"];
        for (i, d) in docs.iter().enumerate() {
            idx.insert(i, e.embed(d));
        }
        let hits = idx.search(&e.embed("alpha beta gamma"), 2);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].score > 0.99);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn knn_k_larger_than_corpus_is_clamped() {
        let e = Embedder::new(16);
        let mut idx = VectorIndex::new(16);
        idx.insert(5, e.embed("only doc"));
        let hits = idx.search(&e.embed("only doc"), 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 5);
    }

    #[test]
    fn knn_ties_break_by_id() {
        let mut idx = VectorIndex::new(2);
        idx.insert(9, vec![1.0, 0.0]);
        idx.insert(3, vec![1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_insert_panics() {
        let mut idx = VectorIndex::new(4);
        idx.insert(0, vec![0.0; 3]);
    }

    #[test]
    fn retrieve_contexts_shapes() {
        let e = Embedder::new(64);
        let corpus: Vec<String> = (0..20)
            .map(|i| format!("document number {i} about topic {}", i % 4))
            .collect();
        let questions: Vec<String> = (0..5)
            .map(|i| format!("question about topic {}", i % 4))
            .collect();
        let ctx = retrieve_contexts(&e, &corpus, &questions, 4);
        assert_eq!(ctx.len(), 5);
        assert!(ctx.iter().all(|c| c.len() == 4));
        // Questions about the same topic share retrieved contexts.
        assert_eq!(ctx[0], ctx[4], "topic 0 questions retrieve identically");
    }

    #[test]
    fn popular_contexts_are_shared_across_questions() {
        let e = Embedder::new(128);
        let corpus: Vec<String> = (0..30)
            .map(|i| format!("evidence passage {i} concerning subject {}", i % 3))
            .collect();
        let questions: Vec<String> = (0..12)
            .map(|i| format!("claim concerning subject {}", i % 3))
            .collect();
        let ctx = retrieve_contexts(&e, &corpus, &questions, 4);
        let mut seen = std::collections::HashMap::new();
        for c in &ctx {
            for &id in c {
                *seen.entry(id).or_insert(0) += 1;
            }
        }
        assert!(
            seen.values().any(|&n| n >= 3),
            "some context should be retrieved by several questions"
        );
    }

    #[test]
    fn index_len_tracking() {
        let mut idx = VectorIndex::new(2);
        assert!(idx.is_empty());
        idx.insert(0, vec![1.0, 0.0]);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }
}
