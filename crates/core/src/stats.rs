//! Table statistics (paper §4.2.2).
//!
//! GGR uses cardinality and value-length statistics — "generally widely
//! available" in databases — to (a) estimate a per-column `HITCOUNT` score
//! that predicts the column's PHC contribution, and (b) choose a fixed field
//! ordering for subtables once recursion stops early.

use crate::scratch::SlotMap;
use crate::table::ReorderTable;
use serde::{Deserialize, Serialize};

/// Statistics for one column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub cardinality: usize,
    /// Mean token length of cell fragments.
    pub avg_len: f64,
    /// Mean of squared token lengths (the PHC unit).
    pub avg_sq_len: f64,
    /// Sum of token lengths.
    pub total_len: u64,
    /// Size of the largest duplicate group.
    pub max_group: usize,
}

impl ColumnStats {
    /// The §4.2.2 score: expected PHC contribution of leading with this
    /// column. `avg(len)²` scaled by the expected number of duplicate rows
    /// (`n − cardinality`) — every repeat of a value after its first
    /// occurrence can become a hit of that length when rows are grouped.
    pub fn hitcount_score(&self, nrows: usize) -> f64 {
        let dup_rows = nrows.saturating_sub(self.cardinality) as f64;
        self.avg_sq_len * dup_rows
    }
}

/// Statistics for every column of a table.
///
/// # Examples
///
/// ```
/// use llmqo_core::{TableBuilder, TableStats};
/// let mut b = TableBuilder::new(vec!["id".into(), "category".into()]);
/// b.push_row(&["r1", "books"]);
/// b.push_row(&["r2", "books"]);
/// let (table, _) = b.finish();
/// let stats = TableStats::compute(&table);
/// assert_eq!(stats.column(0).cardinality, 2);
/// assert_eq!(stats.column(1).cardinality, 1);
/// // "category" has duplicates, so it scores higher as a prefix lead.
/// assert!(stats.column(1).hitcount_score(2) > stats.column(0).hitcount_score(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    nrows: usize,
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Computes statistics with one columnar pass per column; distinct
    /// values are counted with a reusable open-addressing slot map.
    pub fn compute(table: &ReorderTable) -> Self {
        let n = table.nrows();
        let mut map = SlotMap::default();
        let mut group_counts: Vec<usize> = Vec::new();
        let columns = (0..table.ncols())
            .map(|c| {
                let values = table.col_values(c);
                map.begin(n);
                group_counts.clear();
                let mut total_len = 0u64;
                let mut total_sq = 0f64;
                for (r, v) in values.iter().enumerate() {
                    let cell = table.cell(r, c);
                    let (slot, new) = map.insert(u64::from(v.as_u32()));
                    if new {
                        group_counts.push(0);
                    }
                    group_counts[slot as usize] += 1;
                    total_len += u64::from(cell.len);
                    total_sq += cell.sq_len() as f64;
                }
                ColumnStats {
                    cardinality: group_counts.len(),
                    avg_len: if n == 0 {
                        0.0
                    } else {
                        total_len as f64 / n as f64
                    },
                    avg_sq_len: if n == 0 { 0.0 } else { total_sq / n as f64 },
                    total_len,
                    max_group: group_counts.iter().copied().max().unwrap_or(0),
                }
            })
            .collect();
        TableStats { nrows: n, columns }
    }

    /// Number of rows the statistics describe.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Statistics of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> &ColumnStats {
        &self.columns[c]
    }

    /// All column statistics, in schema order.
    pub fn columns(&self) -> &[ColumnStats] {
        &self.columns
    }

    /// Columns ordered by descending `hitcount_score` — the fixed field
    /// ordering GGR falls back to when recursion stops (§4.2.2). Ties break
    /// toward lower column index for determinism.
    pub fn stat_field_order(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.columns.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let sa = self.columns[a as usize].hitcount_score(self.nrows);
            let sb = self.columns[b as usize].hitcount_score(self.nrows);
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;
    use crate::ValueId;

    fn c(id: u32, len: u32) -> Cell {
        Cell::new(ValueId::from_raw(id), len)
    }

    fn table(rows: &[&[(u32, u32)]]) -> ReorderTable {
        let m = rows[0].len();
        let cols = (0..m).map(|i| format!("c{i}")).collect();
        let mut t = ReorderTable::new(cols).unwrap();
        for row in rows {
            t.push_row(row.iter().map(|&(id, len)| c(id, len)).collect())
                .unwrap();
        }
        t
    }

    #[test]
    fn cardinality_and_lengths() {
        let t = table(&[&[(0, 2), (10, 4)], &[(1, 2), (10, 4)], &[(0, 2), (11, 6)]]);
        let s = TableStats::compute(&t);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.column(0).cardinality, 2);
        assert_eq!(s.column(1).cardinality, 2);
        assert!((s.column(0).avg_len - 2.0).abs() < 1e-12);
        assert!((s.column(1).avg_len - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.column(0).total_len, 6);
        assert_eq!(s.column(0).max_group, 2);
        assert_eq!(s.column(1).max_group, 2);
    }

    #[test]
    fn empty_table_stats() {
        let t = ReorderTable::new(vec!["a".into()]).unwrap();
        let s = TableStats::compute(&t);
        assert_eq!(s.column(0).cardinality, 0);
        assert_eq!(s.column(0).avg_len, 0.0);
        assert_eq!(s.column(0).max_group, 0);
        assert_eq!(s.column(0).hitcount_score(0), 0.0);
    }

    #[test]
    fn all_unique_scores_zero() {
        let t = table(&[&[(0, 5)], &[(1, 5)], &[(2, 5)]]);
        let s = TableStats::compute(&t);
        assert_eq!(s.column(0).hitcount_score(3), 0.0);
    }

    #[test]
    fn stat_order_prefers_long_duplicated_columns() {
        // col0: unique short ids; col1: one long value repeated everywhere.
        let t = table(&[
            &[(0, 2), (10, 50)],
            &[(1, 2), (10, 50)],
            &[(2, 2), (10, 50)],
        ]);
        let s = TableStats::compute(&t);
        assert_eq!(s.stat_field_order(), vec![1, 0]);
    }

    #[test]
    fn stat_order_tie_breaks_by_index() {
        let t = table(&[&[(0, 3), (5, 3)], &[(0, 3), (5, 3)]]);
        let s = TableStats::compute(&t);
        assert_eq!(s.stat_field_order(), vec![0, 1]);
    }

    #[test]
    fn avg_sq_len_is_mean_of_squares() {
        let t = table(&[&[(0, 3)], &[(1, 5)]]);
        let s = TableStats::compute(&t);
        assert!((s.column(0).avg_sq_len - (9.0 + 25.0) / 2.0).abs() < 1e-12);
    }
}
