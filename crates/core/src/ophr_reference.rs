//! Frozen pre-optimization OPHR — the differential-testing oracle.
//!
//! [`OphrReference`] is the pre-columnar transcription of §4.1: per-call
//! boxed-bitset memo keys, `HashMap` grouping at every node, and an O(n²)
//! `Vec::contains` rest-filter. Retained verbatim so differential tests can
//! prove the optimized [`Ophr`](crate::Ophr) returns identical plans and
//! scores, and so benchmarks can report the speedup. Do not optimize this
//! module; its value is being frozen.

use crate::fd::FunctionalDeps;
use crate::ophr::OphrConfig;
use crate::plan::{ReorderPlan, RowPlan};
use crate::solver::{check_fd_arity, Reorderer, Solution, SolveError};
use crate::table::ReorderTable;
use crate::ValueId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The frozen exact solver (§4.1, pre-columnar transcription).
///
/// Accepts the same [`OphrConfig`] as [`Ophr`](crate::Ophr) and must produce
/// the identical plan and claimed score whenever both finish in budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OphrReference {
    config: OphrConfig,
}

impl OphrReference {
    /// Creates a reference solver with the given configuration.
    pub fn new(config: OphrConfig) -> Self {
        OphrReference { config }
    }

    /// A reference solver with no time budget (test-sized tables only).
    pub fn unbounded() -> Self {
        OphrReference {
            config: OphrConfig { budget: None },
        }
    }

    /// A reference solver with the given time budget.
    pub fn with_budget(budget: Duration) -> Self {
        OphrReference {
            config: OphrConfig {
                budget: Some(budget),
            },
        }
    }
}

impl Reorderer for OphrReference {
    fn name(&self) -> &'static str {
        "ophr-reference"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let deadline = self.config.budget.map(|b| start + b);
        let mut ctx = Ctx {
            table,
            memo: HashMap::new(),
            deadline,
            row_words: table.nrows().div_ceil(64).max(1),
            col_words: table.ncols().div_ceil(64).max(1),
        };
        let rows: Vec<u32> = (0..table.nrows() as u32).collect();
        let cols: Vec<u32> = (0..table.ncols() as u32).collect();
        let claimed_phc =
            ctx.solve(&rows, &cols)
                .map_err(|TimedOut| SolveError::BudgetExceeded {
                    budget: self.config.budget.unwrap_or_default(),
                })?;
        let ordered = ctx.build(&rows, &cols);
        let plan = ReorderPlan {
            rows: ordered
                .into_iter()
                .map(|(row, fields)| RowPlan::new(row as usize, fields))
                .collect(),
        };
        Ok(Solution {
            plan,
            claimed_phc,
            solve_time: start.elapsed(),
        })
    }
}

/// Budget-exhaustion marker for the recursive solver.
struct TimedOut;

/// How the optimum of a subproblem was achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    Leaf,
    SingleCol,
    Split { col: u32, value: ValueId },
}

/// Canonical subproblem key: bitsets of row and column indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SubKey(Box<[u64]>, Box<[u64]>);

struct Ctx<'t> {
    table: &'t ReorderTable,
    memo: HashMap<SubKey, (u64, Choice)>,
    deadline: Option<Instant>,
    row_words: usize,
    col_words: usize,
}

impl<'t> Ctx<'t> {
    fn key(&self, rows: &[u32], cols: &[u32]) -> SubKey {
        SubKey(bitset(rows, self.row_words), bitset(cols, self.col_words))
    }

    fn solve(&mut self, rows: &[u32], cols: &[u32]) -> Result<u64, TimedOut> {
        if rows.len() <= 1 {
            return Ok(0);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(TimedOut);
            }
        }
        let key = self.key(rows, cols);
        if let Some(&(score, _)) = self.memo.get(&key) {
            return Ok(score);
        }

        if cols.len() == 1 {
            let score = single_column_score(self.table, rows, cols[0]);
            self.memo.insert(key, (score, Choice::SingleCol));
            return Ok(score);
        }

        let candidates = multi_groups(self.table, rows, cols);
        if candidates.is_empty() {
            self.memo.insert(key, (0, Choice::Leaf));
            return Ok(0);
        }

        let mut best: Option<(u64, u32, ValueId)> = None;
        for group in &candidates {
            let contrib = group.sq_len * (group.rows.len() as u64 - 1);
            let rest: Vec<u32> = rows
                .iter()
                .copied()
                .filter(|r| !group.rows.contains(r))
                .collect();
            let sub_cols: Vec<u32> = cols.iter().copied().filter(|&c| c != group.col).collect();
            let score = contrib + self.solve(&rest, cols)? + self.solve(&group.rows, &sub_cols)?;
            let better = match best {
                None => true,
                Some((bs, bc, bv)) => {
                    score > bs
                        || (score == bs
                            && (group.col < bc || (group.col == bc && group.value < bv)))
                }
            };
            if better {
                best = Some((score, group.col, group.value));
            }
        }
        let (score, col, value) = best.expect("candidates is non-empty");
        self.memo.insert(key, (score, Choice::Split { col, value }));
        Ok(score)
    }

    fn build(&self, rows: &[u32], cols: &[u32]) -> Vec<(u32, Vec<u32>)> {
        if rows.is_empty() {
            return Vec::new();
        }
        if rows.len() == 1 {
            return vec![(rows[0], cols.to_vec())];
        }
        let key = self.key(rows, cols);
        let (_, choice) = self.memo.get(&key).expect("subproblem was solved");
        match *choice {
            Choice::Leaf => rows.iter().map(|&r| (r, cols.to_vec())).collect(),
            Choice::SingleCol => {
                let mut ordered = rows.to_vec();
                ordered.sort_by_key(|&r| (self.table.cell(r as usize, cols[0] as usize).value, r));
                ordered.into_iter().map(|r| (r, cols.to_vec())).collect()
            }
            Choice::Split { col, value } => {
                let (group, rest): (Vec<u32>, Vec<u32>) = rows
                    .iter()
                    .partition(|&&r| self.table.cell(r as usize, col as usize).value == value);
                let sub_cols: Vec<u32> = cols.iter().copied().filter(|&c| c != col).collect();
                let mut out = Vec::with_capacity(rows.len());
                for (row, mut fields) in self.build(&group, &sub_cols) {
                    fields.insert(0, col);
                    out.push((row, fields));
                }
                out.extend(self.build(&rest, cols));
                out
            }
        }
    }
}

/// One candidate split group: all rows holding `value` in `col`.
struct Group {
    col: u32,
    value: ValueId,
    sq_len: u64,
    rows: Vec<u32>,
}

fn multi_groups(table: &ReorderTable, rows: &[u32], cols: &[u32]) -> Vec<Group> {
    let mut out = Vec::new();
    for &c in cols {
        let mut by_value: HashMap<ValueId, Vec<u32>> = HashMap::new();
        for &r in rows {
            by_value
                .entry(table.cell(r as usize, c as usize).value)
                .or_default()
                .push(r);
        }
        let mut groups: Vec<(ValueId, Vec<u32>)> = by_value
            .into_iter()
            .filter(|(_, members)| members.len() >= 2)
            .collect();
        groups.sort_by_key(|(v, _)| *v);
        for (value, members) in groups {
            let sq_len = table.cell(members[0] as usize, c as usize).sq_len();
            out.push(Group {
                col: c,
                value,
                sq_len,
                rows: members,
            });
        }
    }
    out
}

fn single_column_score(table: &ReorderTable, rows: &[u32], col: u32) -> u64 {
    let mut counts: HashMap<ValueId, (u64, u64)> = HashMap::new();
    for &r in rows {
        let cell = table.cell(r as usize, col as usize);
        let entry = counts.entry(cell.value).or_insert((0, cell.sq_len()));
        entry.0 += 1;
    }
    counts
        .values()
        .map(|&(count, sq_len)| sq_len * count.saturating_sub(1))
        .sum()
}

/// Builds a fixed-capacity bitset over `indices`.
fn bitset(indices: &[u32], words: usize) -> Box<[u64]> {
    let mut set = vec![0u64; words].into_boxed_slice();
    for &i in indices {
        set[(i / 64) as usize] |= 1 << (i % 64);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phc::phc_of_plan;
    use crate::table::Cell;

    #[test]
    fn reference_is_exact_on_a_small_table() {
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        for (a, b, la, lb) in [(1, 7, 2, 5), (1, 8, 2, 5), (3, 8, 2, 5)] {
            t.push_row(vec![
                Cell::new(ValueId::from_raw(a), la),
                Cell::new(ValueId::from_raw(100 + b), lb),
            ])
            .unwrap();
        }
        let s = OphrReference::unbounded()
            .reorder(&t, &FunctionalDeps::empty(2))
            .unwrap();
        s.plan.validate(&t).unwrap();
        assert_eq!(s.claimed_phc, phc_of_plan(&t, &s.plan).phc);
        assert_eq!(s.claimed_phc, 25);
    }

    #[test]
    fn name_is_distinct() {
        assert_eq!(OphrReference::default().name(), "ophr-reference");
    }
}
