//! Fixed-field-ordering baselines (paper §3.2 and the evaluation's
//! *Cache (Original)* arm).
//!
//! All three baselines use **one field order for every row** — the setting
//! the paper shows can be up to `m×` worse than per-row reordering:
//!
//! * [`OriginalOrder`] — rows and fields exactly as given. This is what a
//!   vanilla engine sends to a prefix-caching server (*Cache (Original)*).
//! * [`SortedFixed`] — schema field order, rows sorted lexicographically so
//!   duplicate prefixes become adjacent.
//! * [`StatFixed`] — fields reordered once by the §4.2.2 statistics score,
//!   then rows sorted. This is also GGR's early-stopping fallback.

use crate::fd::FunctionalDeps;
use crate::phc::phc_of_plan;
use crate::plan::{ReorderPlan, RowPlan};
use crate::solver::{check_fd_arity, Reorderer, Solution, SolveError};
use crate::stats::TableStats;
use crate::table::ReorderTable;
use std::time::Instant;

/// Identity schedule: the paper's *Cache (Original)* baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OriginalOrder;

impl Reorderer for OriginalOrder {
    fn name(&self) -> &'static str {
        "original"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let plan = ReorderPlan::identity(table);
        let claimed_phc = phc_of_plan(table, &plan).phc;
        Ok(Solution {
            plan,
            claimed_phc,
            solve_time: start.elapsed(),
        })
    }
}

/// Schema field order with rows sorted lexicographically by value identity.
///
/// Sorting groups duplicate leading values so adjacent rows share prefixes;
/// the field order itself is never changed. The sort key is the interned
/// [`ValueId`](crate::ValueId) sequence, so "lexicographic" means an
/// arbitrary-but-consistent value order, which is all that grouping needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortedFixed;

impl Reorderer for SortedFixed {
    fn name(&self) -> &'static str {
        "sorted-fixed"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let fields: Vec<u32> = (0..table.ncols() as u32).collect();
        let plan = sorted_plan(table, &fields);
        let claimed_phc = phc_of_plan(table, &plan).phc;
        Ok(Solution {
            plan,
            claimed_phc,
            solve_time: start.elapsed(),
        })
    }
}

/// Statistics-chosen fixed field order (§4.2.2) with rows sorted under it.
///
/// Fields are ordered by descending
/// [`hitcount_score`](crate::ColumnStats::hitcount_score) so long, highly
/// duplicated columns lead the prompt; rows are then sorted to make those
/// duplicates adjacent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatFixed;

impl Reorderer for StatFixed {
    fn name(&self) -> &'static str {
        "stat-fixed"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let fields = TableStats::compute(table).stat_field_order();
        let plan = sorted_plan(table, &fields);
        let claimed_phc = phc_of_plan(table, &plan).phc;
        Ok(Solution {
            plan,
            claimed_phc,
            solve_time: start.elapsed(),
        })
    }
}

/// Builds a plan with the given fixed `fields` order and rows sorted
/// lexicographically by the value ids under that order (original index as a
/// final tiebreak, for determinism). The comparator walks the table's
/// column-major value arrays, so each field comparison is one contiguous
/// 4-byte load per row.
pub(crate) fn sorted_plan(table: &ReorderTable, fields: &[u32]) -> ReorderPlan {
    let field_cols: Vec<&[crate::ValueId]> = fields
        .iter()
        .map(|&f| table.col_values(f as usize))
        .collect();
    let mut order: Vec<usize> = (0..table.nrows()).collect();
    order.sort_by(|&a, &b| {
        for values in &field_cols {
            match values[a].cmp(&values[b]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.cmp(&b)
    });
    ReorderPlan {
        rows: order
            .into_iter()
            .map(|r| RowPlan::new(r, fields.to_vec()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;
    use crate::ValueId;

    fn c(id: u32, len: u32) -> Cell {
        Cell::new(ValueId::from_raw(id), len)
    }

    fn sample() -> ReorderTable {
        // col0 unique, col1 duplicated in non-adjacent rows.
        let mut t = ReorderTable::new(vec!["id".into(), "cat".into()]).unwrap();
        t.push_row(vec![c(0, 1), c(10, 5)]).unwrap();
        t.push_row(vec![c(1, 1), c(11, 5)]).unwrap();
        t.push_row(vec![c(2, 1), c(10, 5)]).unwrap();
        t
    }

    #[test]
    fn original_is_identity() {
        let t = sample();
        let s = OriginalOrder
            .reorder(&t, &FunctionalDeps::empty(2))
            .unwrap();
        assert_eq!(s.plan, ReorderPlan::identity(&t));
        assert_eq!(s.claimed_phc, 0); // nothing adjacent matches in col0-first order
        assert!(s.plan.validate(&t).is_ok());
    }

    #[test]
    fn sorted_fixed_groups_rows_but_keeps_field_order() {
        let t = sample();
        let s = SortedFixed.reorder(&t, &FunctionalDeps::empty(2)).unwrap();
        assert!(s.plan.validate(&t).is_ok());
        for rp in &s.plan.rows {
            assert_eq!(rp.fields, vec![0, 1]);
        }
        // col0 leads and is unique, so sorting cannot create hits here.
        assert_eq!(s.claimed_phc, 0);
    }

    #[test]
    fn stat_fixed_leads_with_duplicated_long_column() {
        let t = sample();
        let s = StatFixed.reorder(&t, &FunctionalDeps::empty(2)).unwrap();
        assert!(s.plan.validate(&t).is_ok());
        // cat (col1) has duplicates and length 5, so it leads.
        assert_eq!(s.plan.rows[0].fields, vec![1, 0]);
        // The two cat=10 rows become adjacent: one hit of 5² = 25.
        assert_eq!(s.claimed_phc, 25);
        assert_eq!(s.claimed_phc, phc_of_plan(&t, &s.plan).phc);
    }

    #[test]
    fn stat_fixed_beats_or_ties_sorted_fixed_here() {
        let t = sample();
        let fds = FunctionalDeps::empty(2);
        let sorted = SortedFixed.reorder(&t, &fds).unwrap().claimed_phc;
        let stat = StatFixed.reorder(&t, &fds).unwrap().claimed_phc;
        assert!(stat >= sorted);
    }

    #[test]
    fn fd_arity_checked() {
        let t = sample();
        assert!(matches!(
            OriginalOrder.reorder(&t, &FunctionalDeps::empty(3)),
            Err(SolveError::FdArityMismatch { .. })
        ));
    }

    #[test]
    fn empty_table_yields_empty_plan() {
        let t = ReorderTable::new(vec!["a".into()]).unwrap();
        for solver in [&OriginalOrder as &dyn Reorderer, &SortedFixed, &StatFixed] {
            let s = solver.reorder(&t, &FunctionalDeps::empty(1)).unwrap();
            assert!(s.plan.is_empty());
            assert_eq!(s.claimed_phc, 0);
        }
    }

    #[test]
    fn sort_is_deterministic_with_equal_rows() {
        let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
        t.push_row(vec![c(5, 2)]).unwrap();
        t.push_row(vec![c(5, 2)]).unwrap();
        let p = sorted_plan(&t, &[0]);
        assert_eq!(p.rows[0].row, 0);
        assert_eq!(p.rows[1].row, 1);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(OriginalOrder.name(), "original");
        assert_eq!(SortedFixed.name(), "sorted-fixed");
        assert_eq!(StatFixed.name(), "stat-fixed");
    }
}
