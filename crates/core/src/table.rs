//! The optimizer's view of an input table: interned cell values with token
//! lengths.
//!
//! A [`ReorderTable`] is what an analytics engine hands to the reordering
//! solvers: an n×m matrix where each cell carries an exact-match identity
//! ([`ValueId`]) and the token length of its serialized prompt fragment.
//! Actual strings live in the engine (or an [`Interner`]); the solvers only
//! ever compare ids and square lengths.

use crate::intern::{Interner, ValueId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One cell of a [`ReorderTable`]: an interned value and its token length.
///
/// `len` is the token count of the *serialized prompt fragment* for this cell
/// (for example `"product_title": "Acme Anvil", ` under the paper's JSON
/// encoding, §5) — the unit in which PHC and cache hits are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Exact-match identity of the cell value.
    pub value: ValueId,
    /// Token length of the serialized fragment.
    pub len: u32,
}

impl Cell {
    /// Creates a cell.
    ///
    /// Well-formed encodings give every [`ValueId`] exactly one token length
    /// (a fragment's token count is a property of the fragment). A lone cell
    /// cannot check that; [`ReorderTable::push_row`] enforces it table-wide
    /// in debug builds.
    pub fn new(value: ValueId, len: u32) -> Self {
        Cell { value, len }
    }

    /// The squared token length, the cell's PHC contribution when hit (Eq. 2).
    pub fn sq_len(&self) -> u64 {
        u64::from(self.len) * u64::from(self.len)
    }
}

/// Errors from building or validating a [`ReorderTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A pushed row had a different number of cells than the table has
    /// columns.
    ArityMismatch {
        /// Number of columns the table declares.
        expected: usize,
        /// Number of cells in the offending row.
        got: usize,
    },
    /// The table has no columns.
    NoColumns,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} cells but table has {expected} columns")
            }
            TableError::NoColumns => write!(f, "table must have at least one column"),
        }
    }
}

impl std::error::Error for TableError {}

/// An n×m table of interned cells, the input to every reordering solver.
///
/// Cells are stored twice: a row-major array serving the row-oriented API
/// ([`ReorderTable::row`], request materialization) and a column-major
/// mirror — one flat [`ValueId`] array and one flat squared-length array per
/// column — built incrementally as rows are pushed. The solvers' inner loops
/// (grouping rows by a column's value, scoring `HITCOUNT`, lexicographic row
/// sorts) scan one column across many rows, so the mirror turns their hot
/// path into contiguous 4/8-byte reads instead of strided 8-byte `Cell`
/// loads. Both stores cost O(n·m) once, at encode time.
///
/// Row and column indices are stable: a [`ReorderPlan`](crate::ReorderPlan)
/// refers back to them, which is how query semantics survive reordering.
///
/// # Examples
///
/// ```
/// use llmqo_core::{Cell, ReorderTable, ValueId};
///
/// let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
/// t.push_row(vec![
///     Cell::new(ValueId::from_raw(0), 3),
///     Cell::new(ValueId::from_raw(1), 5),
/// ])
/// .unwrap();
/// assert_eq!(t.nrows(), 1);
/// assert_eq!(t.ncols(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorderTable {
    columns: Vec<String>,
    cells: Vec<Cell>,
    nrows: usize,
    /// Column-major mirror: `col_values[c][r]` is the value of cell `(r, c)`.
    col_values: Vec<Vec<ValueId>>,
    /// Column-major mirror: `col_sq[c][r]` is the squared length of `(r, c)`.
    col_sq: Vec<Vec<u64>>,
    /// Debug-only registry enforcing the one-length-per-[`ValueId`]
    /// invariant at [`push_row`](ReorderTable::push_row) time.
    #[cfg(debug_assertions)]
    val_lens: LenRegistry,
}

/// Debug-build registry mapping each [`ValueId`] to the single token length
/// it was first pushed with. Deliberately invisible to equality: it is
/// derived state, and ill-formed tables built through
/// [`ReorderTable::push_row_unchecked`] must still compare by cells alone.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Default)]
struct LenRegistry {
    /// `len + 1` per raw id; 0 means unseen. Ids are dense interner indices.
    lens: Vec<u32>,
}

#[cfg(debug_assertions)]
impl LenRegistry {
    /// Records `cell`'s length, panicking if this id was seen with another.
    fn observe(&mut self, cell: &Cell) {
        let idx = cell.value.as_u32() as usize;
        if self.lens.len() <= idx {
            self.lens.resize(idx + 1, 0);
        }
        let slot = &mut self.lens[idx];
        if *slot == 0 {
            *slot = cell.len + 1;
        } else {
            assert_eq!(
                *slot - 1,
                cell.len,
                "ill-formed producer: {} pushed with token length {} but was \
                 first seen with length {} (one length per ValueId; use \
                 push_row_unchecked to bypass in tests)",
                cell.value,
                cell.len,
                *slot - 1,
            );
        }
    }
}

#[cfg(debug_assertions)]
impl PartialEq for LenRegistry {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

#[cfg(debug_assertions)]
impl Eq for LenRegistry {}

impl ReorderTable {
    /// Creates an empty table with the given column names.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NoColumns`] if `columns` is empty.
    pub fn new(columns: Vec<String>) -> Result<Self, TableError> {
        if columns.is_empty() {
            return Err(TableError::NoColumns);
        }
        let ncols = columns.len();
        Ok(ReorderTable {
            columns,
            cells: Vec::new(),
            nrows: 0,
            col_values: vec![Vec::new(); ncols],
            col_sq: vec![Vec::new(); ncols],
            #[cfg(debug_assertions)]
            val_lens: LenRegistry::default(),
        })
    }

    /// Reserves capacity for `additional` more rows in both the row-major
    /// store and the column-major mirror (used by encoders that know the row
    /// count up front).
    pub fn reserve_rows(&mut self, additional: usize) {
        self.cells.reserve(additional * self.columns.len());
        for c in 0..self.columns.len() {
            self.col_values[c].reserve(additional);
            self.col_sq[c].reserve(additional);
        }
    }

    /// Appends a row.
    ///
    /// In debug builds this additionally enforces the one-length-per-
    /// [`ValueId`] invariant: a well-formed encoder derives each cell's `len`
    /// from its fragment, so an id recurring with a different length means
    /// the producer is broken — fail at the push, not deep inside a solver.
    /// Release builds skip the check ([`push_row_unchecked`] skips it
    /// everywhere, for tests that need ill-formed tables on purpose).
    ///
    /// [`push_row_unchecked`]: ReorderTable::push_row_unchecked
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ArityMismatch`] if the row length differs from
    /// the number of columns.
    ///
    /// # Panics
    ///
    /// Debug builds panic if a [`ValueId`] recurs with a different length.
    pub fn push_row(&mut self, row: Vec<Cell>) -> Result<(), TableError> {
        #[cfg(debug_assertions)]
        if row.len() == self.columns.len() {
            for cell in &row {
                self.val_lens.observe(cell);
            }
        }
        self.push_row_unchecked(row)
    }

    /// [`push_row`](ReorderTable::push_row) without the debug-mode
    /// one-length-per-[`ValueId`] validation. Only for tests that exercise
    /// solver behaviour on deliberately ill-formed tables.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ArityMismatch`] if the row length differs from
    /// the number of columns.
    pub fn push_row_unchecked(&mut self, row: Vec<Cell>) -> Result<(), TableError> {
        if row.len() != self.columns.len() {
            return Err(TableError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (c, cell) in row.iter().enumerate() {
            self.col_values[c].push(cell.value);
            self.col_sq[c].push(cell.sq_len());
        }
        self.cells.extend(row);
        self.nrows += 1;
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Column names, in schema order.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// The cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> Cell {
        assert!(row < self.nrows, "row {row} out of bounds ({})", self.nrows);
        assert!(
            col < self.columns.len(),
            "col {col} out of bounds ({})",
            self.columns.len()
        );
        self.cells[row * self.columns.len() + col]
    }

    /// The cells of one row, in schema column order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[Cell] {
        assert!(row < self.nrows, "row {row} out of bounds ({})", self.nrows);
        let m = self.columns.len();
        &self.cells[row * m..(row + 1) * m]
    }

    /// Total token length of all cells (denominator of field-level hit rates).
    pub fn total_tokens(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.len)).sum()
    }

    /// Column-major value ids of column `c`: `col_values(c)[r]` is the value
    /// of cell `(r, c)`. Contiguous, for solver inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col_values(&self, c: usize) -> &[ValueId] {
        &self.col_values[c]
    }

    /// Column-major squared token lengths of column `c` (each cell's PHC
    /// contribution when hit, Eq. 2). Contiguous, for solver inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col_sq_lens(&self, c: usize) -> &[u64] {
        &self.col_sq[c]
    }

    /// Restricts the table to the first `n` rows (used by the paper's
    /// Appendix D.1 OPHR comparison on dataset prefixes).
    pub fn head(&self, n: usize) -> ReorderTable {
        let n = n.min(self.nrows);
        let m = self.columns.len();
        ReorderTable {
            columns: self.columns.clone(),
            cells: self.cells[..n * m].to_vec(),
            nrows: n,
            col_values: self.col_values.iter().map(|v| v[..n].to_vec()).collect(),
            col_sq: self.col_sq.iter().map(|v| v[..n].to_vec()).collect(),
            #[cfg(debug_assertions)]
            val_lens: self.val_lens.clone(),
        }
    }

    /// Restricts the table to the given rows, in the given order — how the
    /// relational executor compacts a batch to one representative row per
    /// deduplication group before invoking a solver. Duplicate indices are
    /// allowed (the result is then not a sub-permutation, which the solvers
    /// do not require).
    ///
    /// # Panics
    ///
    /// Panics if any index in `rows` is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> ReorderTable {
        let m = self.columns.len();
        let mut out = ReorderTable::new(self.columns.clone()).expect("source table has columns");
        out.reserve_rows(rows.len());
        for &r in rows {
            assert!(r < self.nrows, "row {r} out of bounds ({})", self.nrows);
            out.push_row_unchecked(self.cells[r * m..(r + 1) * m].to_vec())
                .expect("row arity matches by construction");
        }
        out
    }

    /// Restricts the table to the given columns, in the given order (used by
    /// Appendix D.1, which cuts PDMX to 10 columns).
    ///
    /// # Panics
    ///
    /// Panics if any index in `cols` is out of bounds.
    pub fn select_columns(&self, cols: &[usize]) -> ReorderTable {
        let columns: Vec<String> = cols.iter().map(|&c| self.columns[c].clone()).collect();
        let mut out = ReorderTable::new(columns).expect("non-empty column selection");
        for r in 0..self.nrows {
            let row = cols.iter().map(|&c| self.cell(r, c)).collect();
            // Unchecked: the source already passed (or deliberately skipped)
            // the length validation; projecting cannot introduce conflicts.
            out.push_row_unchecked(row)
                .expect("arity matches selection");
        }
        out
    }
}

/// Convenience builder that interns string cells and assigns token lengths.
///
/// The default length function approximates tokens as `max(1, bytes/4)`;
/// engines that know real fragment token counts should use
/// [`TableBuilder::push_row_with`].
///
/// # Examples
///
/// ```
/// use llmqo_core::TableBuilder;
/// let mut b = TableBuilder::new(vec!["review".into(), "title".into()]);
/// b.push_row(&["great", "Anvil"]);
/// b.push_row(&["bad", "Anvil"]);
/// let (table, interner) = b.finish();
/// assert_eq!(table.nrows(), 2);
/// // "Anvil" interned once:
/// assert_eq!(table.cell(0, 1).value, table.cell(1, 1).value);
/// assert_eq!(interner.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TableBuilder {
    columns: Vec<String>,
    interner: Interner,
    rows: Vec<Vec<Cell>>,
}

impl TableBuilder {
    /// Creates a builder for a table with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        TableBuilder {
            columns,
            interner: Interner::new(),
            rows: Vec::new(),
        }
    }

    /// Pushes a row of string cells with the default byte-based length
    /// heuristic (`max(1, bytes/4)` tokens).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of columns.
    pub fn push_row(&mut self, values: &[&str]) {
        self.push_row_with(values, |s| (s.len() / 4).max(1) as u32);
    }

    /// Pushes a row of string cells, computing each cell's token length with
    /// `len_fn` (typically a real tokenizer over the serialized fragment).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of columns.
    pub fn push_row_with<F: FnMut(&str) -> u32>(&mut self, values: &[&str], mut len_fn: F) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity must match column count"
        );
        let row = values
            .iter()
            .map(|v| Cell::new(self.interner.intern(v), len_fn(v)))
            .collect();
        self.rows.push(row);
    }

    /// Finishes the build, returning the table and the interner that maps
    /// [`ValueId`]s back to strings.
    ///
    /// # Panics
    ///
    /// Panics if the builder was created with no columns.
    pub fn finish(self) -> (ReorderTable, Interner) {
        let mut table = ReorderTable::new(self.columns).expect("builder requires columns");
        for row in self.rows {
            table.push_row(row).expect("builder rows have fixed arity");
        }
        (table, self.interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(v: u32, len: u32) -> Cell {
        Cell::new(ValueId::from_raw(v), len)
    }

    #[test]
    fn no_columns_is_an_error() {
        assert_eq!(ReorderTable::new(vec![]), Err(TableError::NoColumns));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
        let err = t.push_row(vec![cell(0, 1), cell(1, 1)]).unwrap_err();
        assert_eq!(
            err,
            TableError::ArityMismatch {
                expected: 1,
                got: 2
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn cell_and_row_access() {
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        t.push_row(vec![cell(0, 2), cell(1, 3)]).unwrap();
        t.push_row(vec![cell(2, 4), cell(1, 3)]).unwrap();
        assert_eq!(t.cell(1, 0), cell(2, 4));
        assert_eq!(t.row(0), &[cell(0, 2), cell(1, 3)]);
        assert_eq!(t.total_tokens(), 2 + 3 + 4 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_row_panics() {
        let t = ReorderTable::new(vec!["a".into()]).unwrap();
        let _ = t.cell(0, 0);
    }

    #[test]
    fn sq_len_squares() {
        assert_eq!(cell(0, 9).sq_len(), 81);
        assert_eq!(cell(0, 0).sq_len(), 0);
        // No overflow for large token counts.
        assert_eq!(cell(0, 100_000).sq_len(), 10_000_000_000);
    }

    #[test]
    fn head_truncates() {
        let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
        for i in 0..5 {
            t.push_row(vec![cell(i, 1)]).unwrap();
        }
        assert_eq!(t.head(2).nrows(), 2);
        assert_eq!(t.head(99).nrows(), 5);
        assert_eq!(t.head(0).nrows(), 0);
    }

    #[test]
    fn select_rows_projects_in_order_and_keeps_mirror() {
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        for i in 0..4 {
            t.push_row(vec![cell(i, 1 + i), cell(10 + i, 2)]).unwrap();
        }
        let s = t.select_rows(&[3, 1, 3]);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.cell(0, 0), cell(3, 4));
        assert_eq!(s.cell(1, 0), cell(1, 2));
        assert_eq!(s.cell(2, 1), cell(13, 2));
        assert_eq!(
            s.col_values(0),
            &[
                ValueId::from_raw(3),
                ValueId::from_raw(1),
                ValueId::from_raw(3)
            ]
        );
        assert_eq!(s.col_sq_lens(0), &[16, 4, 16]);
        assert_eq!(t.select_rows(&[]).nrows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn select_rows_out_of_bounds_panics() {
        let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
        t.push_row(vec![cell(0, 1)]).unwrap();
        let _ = t.select_rows(&[1]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "one length per ValueId")]
    fn debug_push_row_rejects_conflicting_length() {
        let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
        t.push_row(vec![cell(7, 3)]).unwrap();
        let _ = t.push_row(vec![cell(7, 4)]);
    }

    #[test]
    fn push_row_accepts_consistent_lengths_and_unchecked_accepts_anything() {
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        t.push_row(vec![cell(7, 3), cell(8, 5)]).unwrap();
        t.push_row(vec![cell(7, 3), cell(9, 1)]).unwrap();
        // The escape hatch takes the conflicting length without panicking.
        t.push_row_unchecked(vec![cell(7, 99), cell(9, 1)]).unwrap();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.cell(2, 0).len, 99);
    }

    #[test]
    fn select_columns_projects_in_order() {
        let mut t = ReorderTable::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        t.push_row(vec![cell(0, 1), cell(1, 2), cell(2, 3)])
            .unwrap();
        let s = t.select_columns(&[2, 0]);
        assert_eq!(s.column_names(), &["c".to_string(), "a".to_string()]);
        assert_eq!(s.cell(0, 0), cell(2, 3));
        assert_eq!(s.cell(0, 1), cell(0, 1));
    }

    #[test]
    fn columnar_mirror_tracks_cells() {
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        t.reserve_rows(3);
        t.push_row(vec![cell(0, 2), cell(1, 3)]).unwrap();
        t.push_row(vec![cell(2, 4), cell(1, 3)]).unwrap();
        t.push_row(vec![cell(0, 2), cell(5, 7)]).unwrap();
        assert_eq!(
            t.col_values(0),
            &[
                ValueId::from_raw(0),
                ValueId::from_raw(2),
                ValueId::from_raw(0)
            ]
        );
        assert_eq!(t.col_sq_lens(0), &[4, 16, 4]);
        assert_eq!(t.col_sq_lens(1), &[9, 9, 49]);
        // head and select_columns keep the mirror consistent.
        let h = t.head(2);
        assert_eq!(
            h.col_values(1),
            &[ValueId::from_raw(1), ValueId::from_raw(1)]
        );
        assert_eq!(h.col_sq_lens(0), &[4, 16]);
        let s = t.select_columns(&[1]);
        assert_eq!(s.col_sq_lens(0), &[9, 9, 49]);
        for r in 0..t.nrows() {
            for c in 0..t.ncols() {
                assert_eq!(t.cell(r, c).value, t.col_values(c)[r]);
                assert_eq!(t.cell(r, c).sq_len(), t.col_sq_lens(c)[r]);
            }
        }
    }

    #[test]
    fn builder_interns_shared_values() {
        let mut b = TableBuilder::new(vec!["x".into(), "y".into()]);
        b.push_row(&["same", "one"]);
        b.push_row(&["same", "two"]);
        let (t, i) = b.finish();
        assert_eq!(t.cell(0, 0).value, t.cell(1, 0).value);
        assert_ne!(t.cell(0, 1).value, t.cell(1, 1).value);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn builder_custom_len_fn() {
        let mut b = TableBuilder::new(vec!["x".into()]);
        b.push_row_with(&["abcdef"], |s| s.len() as u32);
        let (t, _) = b.finish();
        assert_eq!(t.cell(0, 0).len, 6);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn builder_arity_panics() {
        let mut b = TableBuilder::new(vec!["x".into()]);
        b.push_row(&["a", "b"]);
    }
}
