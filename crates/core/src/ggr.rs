//! Greedy Group Recursion (paper §4.2, Algorithm 1).
//!
//! GGR approximates [`Ophr`](crate::Ophr) by committing, at every step, to
//! the single (value, column) group with the highest estimated hit count
//! instead of trying all of them:
//!
//! 1. `HITCOUNT(v, c, T, FD)` scores the group of rows holding `v` in column
//!    `c` as `tot_len · (|R_v| − 1)`, where `tot_len` adds `len(v)²` and the
//!    mean squared length of every column functionally equivalent to `c`
//!    (those columns ride along in the prefix for free — §4.2.1).
//! 2. The winning group is scheduled contiguously with `[c, inferred…]`
//!    leading each of its rows; GGR recurses on the remaining rows (all
//!    columns; *row-wise* recursion) and on the group minus the consumed
//!    columns (*column-wise* recursion).
//! 3. Recursion stops at configurable row/column depths or when the best
//!    score drops below a threshold (§4.2.2; the paper's evaluation uses row
//!    depth 4, column depth 2, or a 0.1 M threshold), falling back to a
//!    statistics-chosen fixed ordering of the remaining subtable.
//!
//! Two transcription fixes relative to the paper's pseudo-code, both obvious
//! from context: Algorithm 1 line 29 builds the output as
//! `[[v̂] + L_A[i]] + L_B`, indexing the *remainder* ordering with the
//! *group's* cardinality — the intended (and here implemented) construction
//! prepends the group values to `L_B` (the group's recursive ordering) and
//! appends `L_A`. Line 6 divides plain lengths by `|R_v|`; we average
//! *squared* lengths, the unit PHC is defined in (Eq. 2), which also makes
//! `HITCOUNT` exact whenever the FDs are exact.
//!
//! # Implementation notes (columnar core)
//!
//! This solver is plan-for-plan identical to the frozen
//! [`GgrReference`](crate::GgrReference) transcription but engineered like a
//! database operator: grouping scans the table's column-major
//! [`col_values`](ReorderTable::col_values)/[`col_sq_lens`](ReorderTable::col_sq_lens)
//! arrays, per-level `HashMap`s are replaced by an epoch-cleared
//! [`SlotMap`](crate::scratch) whose dense slots carry the per-group
//! accumulators, rest/sub-view filtering is a single O(n) value-compare pass
//! instead of `Vec::contains`, and all row/column index buffers come from a
//! per-solve pool so steady-state recursion allocates nothing but the output
//! plan. `HITCOUNT` float sums accumulate in the exact member order the
//! reference uses, so claimed scores match bit-for-bit (enforced by the
//! differential tests in `tests/solver_differential.rs`).

use crate::fd::FunctionalDeps;
use crate::phc::phc_of_plan;
use crate::plan::{ReorderPlan, RowPlan};
use crate::scratch::{partition_rows_by_value, DeadCols, Scratch};
use crate::solver::{check_fd_arity, Reorderer, Solution, SolveError};
use crate::table::ReorderTable;
use crate::ValueId;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How a stopped subtable is ordered (§4.2.2 fall-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FallbackOrdering {
    /// Recursive adaptive partitioning
    /// ([`adaptive_prefix_plan`](crate::adaptive_prefix_plan)): every value
    /// group picks its own next field, yielding per-row field orders. Our
    /// strongest refinement of the paper's statistics fall-back and the
    /// default; it escapes the `log(n)` prefix-entropy budget that caps any
    /// single sorted order on wide tables (PDMX-like).
    #[default]
    Adaptive,
    /// Fields chosen by greedy exact distinct-prefix counting
    /// ([`greedy_prefix_order`](crate::greedy_prefix_order)), rows sorted
    /// under that order — one fixed order for the whole subtable.
    GreedyPrefix,
    /// Fields by descending `avg(len²)·(n − cardinality)` score (the paper's
    /// §4.2.2 heuristic), rows sorted under that order.
    StatFixed,
    /// Fields in current order, rows sorted.
    SortedFixed,
    /// Rows and fields exactly as given (no further optimization).
    Original,
}

/// Configuration for [`Ggr`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GgrConfig {
    /// Maximum depth of row-wise recursion (recursing on `T \ R_v`).
    /// `None` is unlimited. The paper's evaluation uses 4 (§6.5).
    pub max_row_depth: Option<usize>,
    /// Maximum depth of column-wise recursion (recursing on `R_v` minus the
    /// consumed columns). The paper's evaluation uses 2 (§6.5).
    pub max_col_depth: Option<usize>,
    /// Stop recursing when the best group's `HITCOUNT` falls below this
    /// value (§6.5 mentions 0.1 M as an alternative stopping rule).
    pub min_hitcount: Option<u64>,
    /// Whether to exploit functional dependencies (§4.2.1). Disabling this
    /// is the FD ablation.
    pub use_fds: bool,
    /// Ordering applied to subtables once recursion stops.
    pub fallback: FallbackOrdering,
}

impl GgrConfig {
    /// The settings used in the paper's evaluation (§6.5): row depth 4,
    /// column depth 2, statistics-based fall-back, FDs enabled. (The
    /// fall-back uses the greedy distinct-prefix refinement; pass
    /// [`FallbackOrdering::StatFixed`] for the paper's plain heuristic.)
    pub fn paper() -> Self {
        GgrConfig {
            max_row_depth: Some(4),
            max_col_depth: Some(2),
            min_hitcount: None,
            use_fds: true,
            fallback: FallbackOrdering::Adaptive,
        }
    }

    /// No early stopping: pure greedy recursion to the base cases.
    pub fn exhaustive() -> Self {
        GgrConfig {
            max_row_depth: None,
            max_col_depth: None,
            min_hitcount: None,
            use_fds: true,
            fallback: FallbackOrdering::Adaptive,
        }
    }
}

impl Default for GgrConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The greedy solver (Algorithm 1). Default configuration matches the
/// paper's evaluation settings.
///
/// # Examples
///
/// ```
/// use llmqo_core::{FunctionalDeps, Ggr, Reorderer, TableBuilder};
/// let mut b = TableBuilder::new(vec!["review".into(), "product".into()]);
/// b.push_row(&["unique text one", "shared product description"]);
/// b.push_row(&["unique text two", "shared product description"]);
/// let (t, _) = b.finish();
/// let s = Ggr::default().reorder(&t, &FunctionalDeps::empty(2)).unwrap();
/// // The shared product column leads both rows.
/// assert_eq!(s.plan.rows[0].fields[0], 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Ggr {
    config: GgrConfig,
}

impl Ggr {
    /// Creates a solver with the given configuration.
    pub fn new(config: GgrConfig) -> Self {
        Ggr { config }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &GgrConfig {
        &self.config
    }
}

impl Reorderer for Ggr {
    fn name(&self) -> &'static str {
        "ggr"
    }

    fn reorder(&self, table: &ReorderTable, fds: &FunctionalDeps) -> Result<Solution, SolveError> {
        check_fd_arity(table, fds)?;
        let start = Instant::now();
        let ctx = Ctx {
            table,
            fds,
            config: &self.config,
            col_vals: (0..table.ncols()).map(|c| table.col_values(c)).collect(),
            col_sqs: (0..table.ncols()).map(|c| table.col_sq_lens(c)).collect(),
        };
        let mut scratch = Scratch::for_table(table);
        let rows: Vec<u32> = (0..table.nrows() as u32).collect();
        let cols: Vec<u32> = (0..table.ncols() as u32).collect();
        let (score, ordered) = ctx.ggr(&mut scratch, rows, &cols, 0, 0, DeadCols::default());
        let plan = ReorderPlan {
            rows: ordered
                .into_iter()
                .map(|(row, fields)| RowPlan::new(row as usize, fields))
                .collect(),
        };
        Ok(Solution {
            plan,
            claimed_phc: score.round() as u64,
            solve_time: start.elapsed(),
        })
    }
}

struct Ctx<'a> {
    table: &'a ReorderTable,
    fds: &'a FunctionalDeps,
    config: &'a GgrConfig,
    /// Column slices hoisted once per solve (avoids per-cell accessor calls
    /// in block scoring and sorting).
    col_vals: Vec<&'a [ValueId]>,
    col_sqs: Vec<&'a [u64]>,
}

/// The winning group of one greedy step: identity and score only — its
/// member rows are materialized by a single partition pass afterwards.
struct BestGroup {
    col: u32,
    value: ValueId,
    hitcount: f64,
}

impl<'a> Ctx<'a> {
    /// A field list seeded with `src` but sized for the full column count,
    /// so ancestor prefix-splices never reallocate (every row's field list
    /// ends as a permutation of all columns).
    fn field_vec(&self, src: &[u32]) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.table.ncols());
        v.extend_from_slice(src);
        v
    }

    /// Algorithm 1's `GGR(T, FD)` on the view (rows × cols). Returns the
    /// claimed score and the ordering (row, field order over `cols`).
    ///
    /// `rows` is an owned pool buffer; it is returned to the pool before the
    /// call completes.
    fn ggr(
        &self,
        s: &mut Scratch,
        rows: Vec<u32>,
        cols: &[u32],
        row_depth: usize,
        col_depth: usize,
        mut dead: DeadCols,
    ) -> (f64, Vec<(u32, Vec<u32>)>) {
        if rows.is_empty() {
            s.pool.put(rows);
            return (0.0, Vec::new());
        }
        if rows.len() == 1 {
            let out = vec![(rows[0], self.field_vec(cols))];
            s.pool.put(rows);
            return (0.0, out);
        }
        if cols.len() == 1 {
            let out = self.single_column(&rows, cols[0]);
            s.pool.put(rows);
            return out;
        }
        let row_stop = self.config.max_row_depth.is_some_and(|d| row_depth >= d);
        let col_stop = self.config.max_col_depth.is_some_and(|d| col_depth >= d);
        if row_stop || col_stop {
            let out = self.fallback(s, &rows, cols, dead);
            s.pool.put(rows);
            return out;
        }

        let best = match self.best_group(s, &rows, cols, &mut dead) {
            Some(b) => b,
            // Every value in the view is unique: no ordering can score.
            None => {
                let out = rows.iter().map(|&r| (r, self.field_vec(cols))).collect();
                s.pool.put(rows);
                return (0.0, out);
            }
        };
        if self
            .config
            .min_hitcount
            .is_some_and(|t| (best.hitcount as u64) < t)
        {
            let out = self.fallback(s, &rows, cols, dead);
            s.pool.put(rows);
            return out;
        }

        // One O(n) pass splits the view into the winning group and the rest.
        let mut members = s.pool.take();
        let mut rest = s.pool.take();
        partition_rows_by_value(
            self.col_vals[best.col as usize],
            &rows,
            best.value,
            &mut members,
            &mut rest,
        );
        s.pool.put(rows);

        // Prefix columns: the winning column plus its FD-inferred columns
        // present in the view; `sub_cols` is the view minus that prefix.
        let mut prefix_cols = vec![best.col];
        if self.config.use_fds {
            prefix_cols.extend(
                self.fds
                    .inferred(best.col as usize)
                    .iter()
                    .copied()
                    .filter(|&ic| cols.contains(&ic)),
            );
        }
        let mut sub_cols = s.pool.take();
        for &pc in &prefix_cols {
            s.col_mask[pc as usize] = true;
        }
        sub_cols.extend(cols.iter().copied().filter(|&c| !s.col_mask[c as usize]));
        for &pc in &prefix_cols {
            s.col_mask[pc as usize] = false;
        }

        let (a_score, a_rows) = self.ggr(s, rest, cols, row_depth + 1, col_depth, dead);
        let (b_score, b_rows) = if sub_cols.is_empty() {
            let b = members
                .iter()
                .map(|&r| (r, Vec::with_capacity(self.table.ncols())))
                .collect();
            s.pool.put(members);
            (0.0, b)
        } else {
            self.ggr(s, members, &sub_cols, row_depth, col_depth + 1, dead)
        };
        s.pool.put(sub_cols);

        let mut out = Vec::with_capacity(b_rows.len() + a_rows.len());
        for (row, mut fields) in b_rows {
            fields.splice(0..0, prefix_cols.iter().copied());
            out.push((row, fields));
        }
        out.extend(a_rows);
        (a_score + b_score + best.hitcount, out)
    }

    /// Lines 17–23 of Algorithm 1: scan every (column, value) group and keep
    /// the one with the maximum `HITCOUNT`.
    ///
    /// Grouping and FD scoring run over the precomputed dense value indexes
    /// with id-indexed accumulators; no group's member list is materialized
    /// here. Per-group float sums accumulate in view-row order — the member
    /// order the reference implementation sums in — so `hitcount` is
    /// bit-identical.
    fn best_group(
        &self,
        s: &mut Scratch,
        rows: &[u32],
        cols: &[u32],
        dead: &mut DeadCols,
    ) -> Option<BestGroup> {
        for &c in cols {
            s.col_mask[c as usize] = true;
        }
        let mut best: Option<(BestGroup, u32)> = None; // (group, member count)
        for &c in cols {
            if dead.is_dead(c) {
                continue;
            }
            // Columns whose FD group is live need per-row dense ids for the
            // inferred-length accumulation; count-only grouping otherwise.
            let wants_fd = self.config.use_fds
                && self
                    .fds
                    .inferred(c as usize)
                    .iter()
                    .any(|&ic| s.col_mask[ic as usize]);
            let n_groups = if wants_fd {
                s.group_dense(c as usize, self.col_sqs[c as usize], rows)
            } else {
                s.group_dense_counts(c as usize, self.col_sqs[c as usize], rows)
            };
            if (0..n_groups).all(|g| s.counts[s.touched[g] as usize] < 2) {
                // No duplicated value in this view ⇒ none in any sub-view.
                dead.kill(c);
                continue;
            }

            // tot[d] starts at len(v)² of the group's first view member —
            // the same `members[0]` representative the reference reads.
            for g in 0..n_groups {
                let d = s.touched[g] as usize;
                s.tot[d] = s.first_sq[d] as f64;
            }
            // … and accumulates the mean squared length of each FD-inferred
            // column over the group (§4.2.1).
            if self.config.use_fds {
                for &ic in self.fds.inferred(c as usize) {
                    if !s.col_mask[ic as usize] {
                        continue;
                    }
                    let inferred_sq = self.table.col_sq_lens(ic as usize);
                    for g in 0..n_groups {
                        s.acc[s.touched[g] as usize] = 0.0;
                    }
                    for (k, &r) in rows.iter().enumerate() {
                        s.acc[s.row_dense[k] as usize] += inferred_sq[r as usize] as f64;
                    }
                    for g in 0..n_groups {
                        let d = s.touched[g] as usize;
                        s.tot[d] += s.acc[d] / f64::from(s.counts[d]);
                    }
                }
            }

            for g in 0..n_groups {
                let d = s.touched[g];
                let count = s.counts[d as usize];
                if count < 2 {
                    continue;
                }
                let value = s.value_of(c as usize, d);
                let hitcount = s.tot[d as usize] * (f64::from(count) - 1.0);
                let better = match &best {
                    None => true,
                    Some((b, b_count)) => {
                        hitcount > b.hitcount
                            || (hitcount == b.hitcount
                                && (count > *b_count
                                    || (count == *b_count
                                        && (c < b.col || (c == b.col && value < b.value)))))
                    }
                };
                if better {
                    best = Some((
                        BestGroup {
                            col: c,
                            value,
                            hitcount,
                        },
                        count,
                    ));
                }
            }
        }
        for &c in cols {
            s.col_mask[c as usize] = false;
        }
        best.map(|(b, _)| b)
    }

    /// Base case: one column left (lines 13–16). Rows sorted so duplicate
    /// values are adjacent; score Σ_v len(v)²·(count−1), which is optimal.
    fn single_column(&self, rows: &[u32], col: u32) -> (f64, Vec<(u32, Vec<u32>)>) {
        let values = self.col_vals[col as usize];
        let sq_lens = self.col_sqs[col as usize];
        let mut ordered = rows.to_vec();
        ordered.sort_by_key(|&r| (values[r as usize], r));
        let mut score = 0u64;
        for pair in ordered.windows(2) {
            if values[pair[0] as usize] == values[pair[1] as usize] {
                score += sq_lens[pair[1] as usize];
            }
        }
        (
            score as f64,
            ordered
                .into_iter()
                .map(|r| (r, self.field_vec(&[col])))
                .collect(),
        )
    }

    /// §4.2.2 fall-back: orders the whole stopped subtable at once. The
    /// claimed score is the *exact* PHC of the produced block.
    fn fallback(
        &self,
        s: &mut Scratch,
        rows: &[u32],
        cols: &[u32],
        dead: DeadCols,
    ) -> (f64, Vec<(u32, Vec<u32>)>) {
        if self.config.fallback == FallbackOrdering::Adaptive {
            let ordered = crate::order::adaptive_prefix_plan_dead(self.table, rows, cols, s, dead);
            let score = self.exact_block_score(&ordered);
            return (score as f64, ordered);
        }
        let field_order: Vec<u32> = match self.config.fallback {
            FallbackOrdering::Adaptive => unreachable!("handled above"),
            FallbackOrdering::GreedyPrefix => {
                crate::order::greedy_prefix_order_with(self.table, rows, cols, s)
            }
            FallbackOrdering::StatFixed => self.stat_order(s, rows, cols, dead),
            FallbackOrdering::SortedFixed => cols.to_vec(),
            FallbackOrdering::Original => cols.to_vec(),
        };
        let mut ordered = rows.to_vec();
        if self.config.fallback != FallbackOrdering::Original {
            let field_cols: Vec<&[ValueId]> = field_order
                .iter()
                .map(|&f| self.col_vals[f as usize])
                .collect();
            ordered.sort_by(|&a, &b| {
                for values in &field_cols {
                    match values[a as usize].cmp(&values[b as usize]) {
                        std::cmp::Ordering::Equal => continue,
                        other => return other,
                    }
                }
                a.cmp(&b)
            });
        }
        let plan: Vec<(u32, Vec<u32>)> = ordered
            .into_iter()
            .map(|r| (r, self.field_vec(&field_order)))
            .collect();
        let score = self.exact_block_score(&plan);
        (score as f64, plan)
    }

    /// Exact PHC of a scheduled block with per-row field orders.
    fn exact_block_score(&self, ordered: &[(u32, Vec<u32>)]) -> u64 {
        let mut score = 0u64;
        for pair in ordered.windows(2) {
            let (ra, fa) = (pair[0].0 as usize, &pair[0].1);
            let (rb, fb) = (pair[1].0 as usize, &pair[1].1);
            for (&ca, &cb) in fa.iter().zip(fb.iter()) {
                if ca != cb {
                    break;
                }
                if self.col_vals[ca as usize][ra] == self.col_vals[ca as usize][rb] {
                    score += self.col_sqs[ca as usize][rb];
                } else {
                    break;
                }
            }
        }
        score
    }

    /// View-local statistics ordering: columns by descending expected PHC
    /// contribution (`avg(len²) · (n − cardinality)`), ties toward the
    /// current column order.
    fn stat_order(&self, s: &mut Scratch, rows: &[u32], cols: &[u32], dead: DeadCols) -> Vec<u32> {
        let n = rows.len();
        let mut scored: Vec<(f64, usize, u32)> = cols
            .iter()
            .enumerate()
            .map(|(pos, &c)| {
                if dead.is_dead(c) {
                    // All values distinct ⇒ dup_rows = 0 ⇒ score exactly 0.
                    return (0.0, pos, c);
                }
                let (distinct, sum_sq) =
                    s.distinct_and_sum_sq(c as usize, self.col_sqs[c as usize], rows);
                let avg_sq = if n == 0 { 0.0 } else { sum_sq / n as f64 };
                let dup_rows = (n - distinct) as f64;
                (avg_sq * dup_rows, pos, c)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.into_iter().map(|(_, _, c)| c).collect()
    }
}

/// Convenience: runs GGR with paper settings and returns the ground-truth
/// (recomputed) PHC report alongside the solution.
///
/// # Errors
///
/// Propagates [`SolveError`] from the solver (FD arity mismatch).
pub fn ggr_with_report(
    table: &ReorderTable,
    fds: &FunctionalDeps,
) -> Result<(Solution, crate::PhcReport), SolveError> {
    let solution = Ggr::default().reorder(table, fds)?;
    let report = phc_of_plan(table, &solution.plan);
    Ok((solution, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ophr::Ophr;
    use crate::table::Cell;

    fn c(id: u32, len: u32) -> Cell {
        Cell::new(ValueId::from_raw(id), len)
    }

    fn table(rows: &[&[(u32, u32)]]) -> ReorderTable {
        let m = rows[0].len();
        let cols = (0..m).map(|i| format!("c{i}")).collect();
        let mut t = ReorderTable::new(cols).unwrap();
        for row in rows {
            t.push_row(row.iter().map(|&(id, len)| c(id, len)).collect())
                .unwrap();
        }
        t
    }

    fn ggr(t: &ReorderTable, fds: &FunctionalDeps, config: GgrConfig) -> Solution {
        let s = Ggr::new(config).reorder(t, fds).unwrap();
        s.plan.validate(t).unwrap();
        s
    }

    #[test]
    fn single_row_matches_ophr_base() {
        let t = table(&[&[(0, 3), (1, 4)]]);
        let s = ggr(&t, &FunctionalDeps::empty(2), GgrConfig::default());
        assert_eq!(s.claimed_phc, 0);
        assert_eq!(s.plan.rows.len(), 1);
    }

    #[test]
    fn single_column_matches_ophr_base() {
        let t = table(&[&[(0, 3)], &[(1, 2)], &[(0, 3)]]);
        let fds = FunctionalDeps::empty(1);
        let g = ggr(&t, &fds, GgrConfig::default());
        let o = Ophr::unbounded().reorder(&t, &fds).unwrap();
        assert_eq!(g.claimed_phc, o.claimed_phc);
        assert_eq!(g.claimed_phc, 9);
    }

    #[test]
    fn figure_1a_recovered() {
        // Unique first field, constant remaining fields: (n−1)(m−1).
        let n = 6u32;
        let m = 4u32;
        let rows: Vec<Vec<(u32, u32)>> = (0..n)
            .map(|r| {
                let mut row = vec![(1000 + r, 1)];
                row.extend((1..m).map(|f| (f, 1)));
                row
            })
            .collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        let s = ggr(&t, &FunctionalDeps::empty(4), GgrConfig::exhaustive());
        assert_eq!(s.claimed_phc, u64::from((n - 1) * (m - 1)));
        assert_eq!(s.claimed_phc, phc_of_plan(&t, &s.plan).phc);
    }

    #[test]
    fn figure_1b_recovered() {
        let x = 4u32;
        let mut rows: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut next_unique = 1000;
        for field in 0..3u32 {
            for _ in 0..x {
                let row: Vec<(u32, u32)> = (0..3)
                    .map(|f| {
                        if f == field {
                            (field + 1, 1)
                        } else {
                            next_unique += 1;
                            (next_unique, 1)
                        }
                    })
                    .collect();
                rows.push(row);
            }
        }
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        let s = ggr(&t, &FunctionalDeps::empty(3), GgrConfig::exhaustive());
        assert_eq!(s.claimed_phc, u64::from(3 * (x - 1)));
    }

    #[test]
    fn claimed_score_is_exact_without_fds() {
        let t = table(&[
            &[(1, 3), (10, 7), (20, 2)],
            &[(1, 3), (11, 7), (21, 2)],
            &[(2, 3), (11, 7), (20, 2)],
            &[(2, 3), (12, 7), (22, 2)],
        ]);
        let s = ggr(&t, &FunctionalDeps::empty(3), GgrConfig::exhaustive());
        let actual = phc_of_plan(&t, &s.plan).phc;
        assert!(
            actual >= s.claimed_phc,
            "ground truth {actual} < claimed {}",
            s.claimed_phc
        );
    }

    #[test]
    fn exact_fds_make_claim_exact_and_prefix_contiguous() {
        // col0 ↔ col1 exactly (id pairs), col2 unique.
        let t = table(&[
            &[(1, 4), (100, 6), (200, 2)],
            &[(1, 4), (100, 6), (201, 2)],
            &[(2, 4), (101, 6), (202, 2)],
            &[(2, 4), (101, 6), (203, 2)],
        ]);
        let fds = FunctionalDeps::from_groups(3, vec![vec![0, 1]]).unwrap();
        let s = ggr(&t, &fds, GgrConfig::exhaustive());
        let actual = phc_of_plan(&t, &s.plan).phc;
        assert_eq!(actual, s.claimed_phc, "exact FDs ⇒ exact claim");
        // Both groups captured with the inferred column in the prefix:
        // each group: 1 hit × (4² + 6²) = 52; two groups = 104.
        assert_eq!(actual, 104);
        // Each row's field order starts [0, 1] (value column + inferred).
        for rp in &s.plan.rows {
            assert_eq!(&rp.fields[..2], &[0, 1]);
        }
    }

    #[test]
    fn fds_never_hurt_on_fd_structured_tables() {
        let t = table(&[
            &[(1, 4), (100, 6), (200, 2)],
            &[(1, 4), (100, 6), (201, 2)],
            &[(2, 4), (101, 6), (202, 2)],
        ]);
        let fds = FunctionalDeps::from_groups(3, vec![vec![0, 1]]).unwrap();
        let with = ggr(&t, &fds, GgrConfig::exhaustive());
        let without = ggr(
            &t,
            &fds,
            GgrConfig {
                use_fds: false,
                ..GgrConfig::exhaustive()
            },
        );
        let with_actual = phc_of_plan(&t, &with.plan).phc;
        let without_actual = phc_of_plan(&t, &without.plan).phc;
        assert!(with_actual >= without_actual);
    }

    #[test]
    fn never_beats_ophr_on_small_tables() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.random_range(2..=6);
            let m = rng.random_range(1..=3);
            let rows: Vec<Vec<(u32, u32)>> = (0..n)
                .map(|_| {
                    (0..m)
                        .map(|f| {
                            let v = f as u32 * 10 + rng.random_range(0..3u32);
                            (v, 1 + v % 4)
                        })
                        .collect()
                })
                .collect();
            let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
            let t = table(&refs);
            let fds = FunctionalDeps::empty(m);
            let g = ggr(&t, &fds, GgrConfig::exhaustive());
            let g_actual = phc_of_plan(&t, &g.plan).phc;
            let o = Ophr::unbounded().reorder(&t, &fds).unwrap();
            assert!(
                g_actual <= o.claimed_phc,
                "GGR {g_actual} beat OPHR {} on {t:?}",
                o.claimed_phc
            );
        }
    }

    #[test]
    fn zero_row_depth_is_pure_fallback() {
        let t = table(&[&[(0, 1), (10, 5)], &[(1, 1), (11, 5)], &[(2, 1), (10, 5)]]);
        let fds = FunctionalDeps::empty(2);
        let s = ggr(
            &t,
            &fds,
            GgrConfig {
                max_row_depth: Some(0),
                fallback: FallbackOrdering::StatFixed,
                ..GgrConfig::default()
            },
        );
        let b = crate::baseline::StatFixed.reorder(&t, &fds).unwrap();
        assert_eq!(s.claimed_phc, b.claimed_phc);
        assert_eq!(phc_of_plan(&t, &s.plan).phc, phc_of_plan(&t, &b.plan).phc);
    }

    #[test]
    fn greedy_prefix_fallback_beats_stat_fixed_on_nested_hierarchies() {
        // X (4 cities) ⊃ Y (8 streets, nested: Y determines X) ⊕ Z (binary).
        // Global-cardinality scoring interleaves Z between Y and X; greedy
        // conditional counting sees that X is free once Y leads (D stays 8)
        // and orders [Y, X, Z], capturing X's mass for every in-group row.
        let rows: Vec<Vec<(u32, u32)>> = (0..24)
            .map(|r| vec![(r / 6, 4), (100 + r / 3, 6), (200 + r % 2, 5)])
            .collect();
        let refs: Vec<&[(u32, u32)]> = rows.iter().map(Vec::as_slice).collect();
        let t = table(&refs);
        let fds = FunctionalDeps::empty(3);
        let greedy = ggr(
            &t,
            &fds,
            GgrConfig {
                max_row_depth: Some(0),
                fallback: FallbackOrdering::GreedyPrefix,
                ..GgrConfig::default()
            },
        );
        let stat = crate::baseline::StatFixed.reorder(&t, &fds).unwrap();
        assert!(
            phc_of_plan(&t, &greedy.plan).phc > phc_of_plan(&t, &stat.plan).phc,
            "greedy {} vs stat {}",
            phc_of_plan(&t, &greedy.plan).phc,
            phc_of_plan(&t, &stat.plan).phc
        );
    }

    #[test]
    fn huge_threshold_forces_fallback() {
        let t = table(&[&[(0, 1), (10, 5)], &[(1, 1), (10, 5)]]);
        let fds = FunctionalDeps::empty(2);
        let s = ggr(
            &t,
            &fds,
            GgrConfig {
                min_hitcount: Some(u64::MAX),
                ..GgrConfig::exhaustive()
            },
        );
        let b = crate::baseline::StatFixed.reorder(&t, &fds).unwrap();
        assert_eq!(s.claimed_phc, b.claimed_phc);
    }

    #[test]
    fn all_unique_returns_input_order() {
        let t = table(&[&[(0, 2), (10, 2)], &[(1, 2), (11, 2)]]);
        let s = ggr(&t, &FunctionalDeps::empty(2), GgrConfig::exhaustive());
        assert_eq!(s.claimed_phc, 0);
        assert_eq!(s.plan.rows[0].row, 0);
        assert_eq!(s.plan.rows[1].row, 1);
    }

    #[test]
    fn fd_covering_all_columns_consumes_them() {
        // One FD group covering both columns: after the split no columns
        // remain for the B-recursion.
        let t = table(&[
            &[(1, 3), (100, 5)],
            &[(1, 3), (100, 5)],
            &[(2, 3), (101, 5)],
        ]);
        let fds = FunctionalDeps::from_groups(2, vec![vec![0, 1]]).unwrap();
        let s = ggr(&t, &fds, GgrConfig::exhaustive());
        assert_eq!(phc_of_plan(&t, &s.plan).phc, s.claimed_phc);
        assert_eq!(s.claimed_phc, 9 + 25);
    }

    #[test]
    fn deterministic() {
        let t = table(&[
            &[(1, 2), (7, 2)],
            &[(1, 2), (7, 2)],
            &[(2, 2), (8, 2)],
            &[(2, 2), (8, 2)],
        ]);
        let fds = FunctionalDeps::empty(2);
        let a = ggr(&t, &fds, GgrConfig::default());
        let b = ggr(&t, &fds, GgrConfig::default());
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn ggr_with_report_round_trips() {
        let t = table(&[&[(1, 3)], &[(1, 3)]]);
        let (s, r) = ggr_with_report(&t, &FunctionalDeps::empty(1)).unwrap();
        assert_eq!(s.claimed_phc, r.phc);
        assert_eq!(r.phc, 9);
    }

    #[test]
    fn fallback_variants_are_valid() {
        let t = table(&[&[(0, 1), (10, 5)], &[(1, 1), (11, 5)], &[(2, 1), (10, 5)]]);
        let fds = FunctionalDeps::empty(2);
        for fallback in [
            FallbackOrdering::StatFixed,
            FallbackOrdering::SortedFixed,
            FallbackOrdering::Original,
        ] {
            let s = ggr(
                &t,
                &fds,
                GgrConfig {
                    max_row_depth: Some(0),
                    fallback,
                    ..GgrConfig::default()
                },
            );
            assert_eq!(s.claimed_phc, phc_of_plan(&t, &s.plan).phc);
        }
    }
}
