//! # llmqo-core — request reordering for LLM queries over relational data
//!
//! This crate implements the primary contribution of *“Optimizing LLM Queries
//! in Relational Data Analytics Workloads”* (MLSys 2025): algorithms that
//! reorder the **rows** of an input table and the **fields within each row**
//! so that consecutive per-row LLM requests share the longest possible token
//! prefixes, maximizing KV-cache reuse during serving.
//!
//! The optimization objective is the **prefix hit count** (PHC, paper Eq. 1–2):
//! for every row, the sum of *squared* token lengths of the leading cells that
//! exactly match the previous row's leading cells. Squared lengths reflect the
//! quadratic cost of attention over prompt prefixes.
//!
//! Two solvers are provided, plus the fixed-order baselines of paper §3.2:
//!
//! * [`Ophr`] — *Optimal Prefix Hit Recursion* (§4.1): exact, exponential-time
//!   recursion over (value, column) group splits, memoized and budgeted.
//! * [`Ggr`] — *Greedy Group Recursion* (§4.2, Algorithm 1): picks the group
//!   with the maximum estimated hit count at each step, exploits functional
//!   dependencies to pull correlated fields into the prefix, and falls back to
//!   a statistics-chosen fixed ordering when recursion is stopped early.
//! * [`OriginalOrder`], [`SortedFixed`], [`StatFixed`] — baselines.
//! * [`GgrReference`], [`OphrReference`] — the frozen pre-optimization
//!   transcriptions of both solvers, kept as differential-testing oracles
//!   and benchmark baselines for the columnar solver core.
//!
//! # Quick example
//!
//! ```
//! use llmqo_core::{FunctionalDeps, Ggr, Reorderer, TableBuilder, phc_of_plan};
//!
//! // A toy reviews⨝products table: `product` repeats, `review` is unique.
//! let mut b = TableBuilder::new(vec!["review".into(), "product".into()]);
//! b.push_row(&["loved it", "Acme Anvil 3000 — forged steel, 10kg"]);
//! b.push_row(&["meh", "Acme Anvil 3000 — forged steel, 10kg"]);
//! b.push_row(&["ok", "Roadrunner Seeds premium mix"]);
//! let (table, _interner) = b.finish();
//!
//! let solution = Ggr::default()
//!     .reorder(&table, &FunctionalDeps::empty(table.ncols()))
//!     .expect("greedy solver never exceeds a budget");
//! let report = phc_of_plan(&table, &solution.plan);
//! assert!(report.phc > 0, "shared product descriptions should produce hits");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod fd;
mod ggr;
mod ggr_reference;
mod intern;
mod ophr;
mod ophr_reference;
mod order;
mod partition;
mod phc;
mod plan;
mod scratch;
mod solver;
mod stats;
mod table;

pub use baseline::{OriginalOrder, SortedFixed, StatFixed};
pub use fd::FunctionalDeps;
pub use ggr::{ggr_with_report, FallbackOrdering, Ggr, GgrConfig};
pub use ggr_reference::GgrReference;
pub use intern::{Interner, ValueId};
pub use ophr::{Ophr, OphrConfig};
pub use ophr_reference::OphrReference;
pub use order::{adaptive_prefix_plan, greedy_prefix_order};
pub use partition::Partitioned;
pub use phc::{hit_prefix_cells, phc_of_plan, phc_of_rows, PhcReport};
pub use plan::{PlanError, ReorderPlan, RowPlan};
pub use solver::{Reorderer, Solution, SolveError};
pub use stats::{ColumnStats, TableStats};
pub use table::{Cell, ReorderTable, TableBuilder, TableError};
