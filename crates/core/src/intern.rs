//! String interning for exact-match cell values.
//!
//! The paper (§3.1, assumption 2) counts a cell as a cache hit only when its
//! value **exactly matches** a previously seen value — substring matches do
//! not count. Interning makes that exact-match relation a cheap integer
//! comparison and is how the optimizer sees the table: every distinct cell
//! string maps to one [`ValueId`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned cell value.
///
/// Two cells are "the same value" in the PHC sense iff their `ValueId`s (and
/// columns) are equal. Ids are dense and assigned in first-seen order.
///
/// # Examples
///
/// ```
/// use llmqo_core::Interner;
/// let mut interner = Interner::new();
/// let a = interner.intern("PG-13");
/// let b = interner.intern("PG-13");
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValueId(u32);

impl ValueId {
    /// Creates a `ValueId` from a raw index.
    ///
    /// Useful for synthetic tables whose values are generated as integers and
    /// never materialized as strings. Exact-match semantics are then the
    /// caller's responsibility: equal raw ids mean equal values.
    pub fn from_raw(raw: u32) -> Self {
        ValueId(raw)
    }

    /// The raw index of this id.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Bidirectional map between cell strings and [`ValueId`]s.
///
/// # Examples
///
/// ```
/// use llmqo_core::Interner;
/// let mut interner = Interner::new();
/// let id = interner.intern("Fresh");
/// assert_eq!(interner.resolve(id), Some("Fresh"));
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<String, ValueId>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its id (existing or fresh).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct values are interned.
    pub fn intern(&mut self, value: &str) -> ValueId {
        if let Some(&id) = self.map.get(value) {
            return id;
        }
        let id = ValueId(
            u32::try_from(self.strings.len()).expect("interner overflow: too many distinct values"),
        );
        self.map.insert(value.to_owned(), id);
        self.strings.push(value.to_owned());
        id
    }

    /// Looks up an already-interned value without inserting.
    pub fn get(&self, value: &str) -> Option<ValueId> {
        self.map.get(value).copied()
    }

    /// Resolves an id back to its string, if it was produced by this interner.
    pub fn resolve(&self, id: ValueId) -> Option<&str> {
        self.strings.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("x");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_values_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let id = i.intern("Rotten");
        assert_eq!(i.resolve(id), Some("Rotten"));
        assert_eq!(i.get("Rotten"), Some(id));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.resolve(ValueId::from_raw(99)), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a.as_u32(), 0);
        assert_eq!(b.as_u32(), 1);
        assert!(a < b);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ValueId::from_raw(7).to_string(), "v7");
    }

    #[test]
    fn empty_string_is_a_value() {
        let mut i = Interner::new();
        let id = i.intern("");
        assert_eq!(i.resolve(id), Some(""));
    }
}
