//! Reorder plans: the output of every solver.
//!
//! A [`ReorderPlan`] is a *request schedule* in the paper's terms (§3.1): a
//! row order plus, for each row, a field order. Plans always reference
//! original row/column indices so the executing engine can map LLM outputs
//! back to the rows they belong to — reordering must never change query
//! semantics, only cache behaviour.

use crate::table::ReorderTable;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-row part of a [`ReorderPlan`]: which original row, and in which order
/// its fields are serialized into the prompt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowPlan {
    /// Original row index in the [`ReorderTable`].
    pub row: usize,
    /// Permutation of all column indices; `fields[0]` is serialized first.
    pub fields: Vec<u32>,
}

impl RowPlan {
    /// Creates a row plan.
    pub fn new(row: usize, fields: Vec<u32>) -> Self {
        RowPlan { row, fields }
    }
}

/// A complete request schedule: every table row exactly once, each with a
/// full field permutation.
///
/// # Examples
///
/// ```
/// use llmqo_core::{Cell, ReorderPlan, ReorderTable, ValueId};
///
/// let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
/// t.push_row(vec![Cell::new(ValueId::from_raw(0), 1), Cell::new(ValueId::from_raw(1), 1)])
///     .unwrap();
/// let plan = ReorderPlan::identity(&t);
/// assert!(plan.validate(&t).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReorderPlan {
    /// Rows in schedule order.
    pub rows: Vec<RowPlan>,
}

/// Validation failures for a [`ReorderPlan`] (see [`ReorderPlan::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan's row count differs from the table's.
    RowCount {
        /// Rows in the table.
        expected: usize,
        /// Rows in the plan.
        got: usize,
    },
    /// The plan visits some row index more than once (or not at all).
    NotARowPermutation {
        /// The first offending row index.
        row: usize,
    },
    /// A row's field list is not a permutation of all columns.
    NotAFieldPermutation {
        /// The schedule position of the offending row plan.
        position: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::RowCount { expected, got } => {
                write!(f, "plan has {got} rows but table has {expected}")
            }
            PlanError::NotARowPermutation { row } => {
                write!(f, "row {row} is duplicated or out of range in plan")
            }
            PlanError::NotAFieldPermutation { position } => {
                write!(
                    f,
                    "field list at schedule position {position} is not a permutation of all columns"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl ReorderPlan {
    /// The identity schedule: original row order, schema field order for every
    /// row. This is the paper's *Cache (Original)* baseline.
    pub fn identity(table: &ReorderTable) -> Self {
        let fields: Vec<u32> = (0..table.ncols() as u32).collect();
        ReorderPlan {
            rows: (0..table.nrows())
                .map(|r| RowPlan::new(r, fields.clone()))
                .collect(),
        }
    }

    /// Number of scheduled rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Shared-prefix identity of every scheduled row, in schedule order.
    ///
    /// The key for a row is a hash over its first `depth` scheduled
    /// `(field, value)` pairs, so two rows receive equal keys exactly when
    /// they serialize the same leading fields with the same values — i.e.
    /// when their prompts share a prefix at least `depth` fields deep. This
    /// is the routing tag a sharded serving layer needs: dispatching rows
    /// with equal keys to the same replica preserves the prefix locality the
    /// solver created (`llmqo-cluster`'s `PrefixAffinity` policy consumes
    /// these keys).
    ///
    /// `depth` is clamped to each row's field count; `depth == 0` puts every
    /// row in one group. Keys say nothing about *adjacent* hits — they
    /// capture group identity, not schedule position.
    ///
    /// # Panics
    ///
    /// Panics if the plan references rows or fields outside `table` (call
    /// [`validate`](ReorderPlan::validate) first for untrusted plans).
    pub fn prefix_keys(&self, table: &ReorderTable, depth: usize) -> Vec<u64> {
        self.rows
            .iter()
            .map(|rp| {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &f in rp.fields.iter().take(depth) {
                    let v = table.col_values(f as usize)[rp.row].as_u32();
                    for b in f.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
                        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                    }
                }
                h
            })
            .collect()
    }

    /// Whether the plan schedules no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Checks that this plan is a valid schedule for `table`: a permutation
    /// of its rows, each carrying a permutation of all its columns.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] found.
    pub fn validate(&self, table: &ReorderTable) -> Result<(), PlanError> {
        if self.rows.len() != table.nrows() {
            return Err(PlanError::RowCount {
                expected: table.nrows(),
                got: self.rows.len(),
            });
        }
        let mut seen_rows = vec![false; table.nrows()];
        for (position, rp) in self.rows.iter().enumerate() {
            if rp.row >= table.nrows() || seen_rows[rp.row] {
                return Err(PlanError::NotARowPermutation { row: rp.row });
            }
            seen_rows[rp.row] = true;
            if rp.fields.len() != table.ncols() {
                return Err(PlanError::NotAFieldPermutation { position });
            }
            let mut seen_cols = vec![false; table.ncols()];
            for &f in &rp.fields {
                let f = f as usize;
                if f >= table.ncols() || seen_cols[f] {
                    return Err(PlanError::NotAFieldPermutation { position });
                }
                seen_cols[f] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;
    use crate::ValueId;

    fn table(nrows: usize, ncols: usize) -> ReorderTable {
        let cols = (0..ncols).map(|c| format!("c{c}")).collect();
        let mut t = ReorderTable::new(cols).unwrap();
        for r in 0..nrows {
            let row = (0..ncols)
                .map(|c| Cell::new(ValueId::from_raw((r * ncols + c) as u32), 1))
                .collect();
            t.push_row(row).unwrap();
        }
        t
    }

    #[test]
    fn identity_is_valid() {
        let t = table(4, 3);
        assert!(ReorderPlan::identity(&t).validate(&t).is_ok());
    }

    #[test]
    fn row_count_mismatch_rejected() {
        let t = table(3, 2);
        let mut p = ReorderPlan::identity(&t);
        p.rows.pop();
        assert_eq!(
            p.validate(&t),
            Err(PlanError::RowCount {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn duplicate_row_rejected() {
        let t = table(2, 2);
        let mut p = ReorderPlan::identity(&t);
        p.rows[1].row = 0;
        assert_eq!(
            p.validate(&t),
            Err(PlanError::NotARowPermutation { row: 0 })
        );
    }

    #[test]
    fn out_of_range_row_rejected() {
        let t = table(2, 2);
        let mut p = ReorderPlan::identity(&t);
        p.rows[1].row = 7;
        assert_eq!(
            p.validate(&t),
            Err(PlanError::NotARowPermutation { row: 7 })
        );
    }

    #[test]
    fn short_field_list_rejected() {
        let t = table(1, 3);
        let mut p = ReorderPlan::identity(&t);
        p.rows[0].fields.pop();
        assert_eq!(
            p.validate(&t),
            Err(PlanError::NotAFieldPermutation { position: 0 })
        );
    }

    #[test]
    fn duplicate_field_rejected() {
        let t = table(1, 2);
        let mut p = ReorderPlan::identity(&t);
        p.rows[0].fields = vec![1, 1];
        assert_eq!(
            p.validate(&t),
            Err(PlanError::NotAFieldPermutation { position: 0 })
        );
    }

    #[test]
    fn permuted_fields_accepted() {
        let t = table(2, 3);
        let mut p = ReorderPlan::identity(&t);
        p.rows[0].fields = vec![2, 0, 1];
        p.rows.swap(0, 1);
        assert!(p.validate(&t).is_ok());
    }

    #[test]
    fn errors_display() {
        for e in [
            PlanError::RowCount {
                expected: 1,
                got: 2,
            },
            PlanError::NotARowPermutation { row: 3 },
            PlanError::NotAFieldPermutation { position: 0 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn prefix_keys_group_rows_sharing_leading_cells() {
        // Rows 0..4: leading value repeats in pairs; second column unique.
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        for r in 0..4u32 {
            t.push_row(vec![
                Cell::new(ValueId::from_raw(r / 2), 3),
                Cell::new(ValueId::from_raw(100 + r), 2),
            ])
            .unwrap();
        }
        let plan = ReorderPlan::identity(&t);
        let keys = plan.prefix_keys(&t, 1);
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[2], keys[3]);
        assert_ne!(keys[0], keys[2]);
        // Depth 2 separates rows with distinct second fields.
        let deep = plan.prefix_keys(&t, 2);
        assert_ne!(deep[0], deep[1]);
        // Depth 0 collapses everything into one routing group.
        let flat = plan.prefix_keys(&t, 0);
        assert!(flat.windows(2).all(|w| w[0] == w[1]));
        // Depth beyond the field count is clamped, not a panic.
        let clamped = plan.prefix_keys(&t, 99);
        assert_eq!(clamped, plan.prefix_keys(&t, 2));
    }

    #[test]
    fn prefix_keys_respect_field_order() {
        // Same values, but one row schedules its fields reversed: the
        // serialized prefixes differ, so the keys must differ.
        let mut t = ReorderTable::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..2 {
            t.push_row(vec![
                Cell::new(ValueId::from_raw(1), 3),
                Cell::new(ValueId::from_raw(2), 2),
            ])
            .unwrap();
        }
        let mut plan = ReorderPlan::identity(&t);
        plan.rows[1].fields = vec![1, 0];
        let keys = plan.prefix_keys(&t, 1);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn empty_plan_on_empty_table() {
        let t = table(0, 2);
        let p = ReorderPlan::identity(&t);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.validate(&t).is_ok());
    }
}
