//! Reusable solver scratch: slot maps, buffer pools, and interned set keys.
//!
//! The solvers recurse over (row-set × column-set) views and, at every level,
//! need to group rows by a column's value, count distinct values, filter row
//! sets, and (for OPHR) key a memo table by the view. A naive transcription
//! pays for a fresh `HashMap` — SipHash, rehashing, and per-group `Vec`
//! allocations — at every recursion level. This module provides the
//! allocation-free alternatives the optimized solvers thread through their
//! recursion:
//!
//! * [`SlotMap`] — an open-addressing map from `u64` keys (value ids, or
//!   packed `(group, value)` pairs) to dense *slots* assigned in first-seen
//!   order. Clearing is an epoch bump, not a memset, so a 10-row view pays
//!   for 10 probes even when the backing table was sized for 10 000 rows.
//! * [`Scratch`] — per-solve state: one `SlotMap` plus per-slot accumulator
//!   arrays and a [`BufPool`] of `Vec<u32>` row/column buffers, so the steady
//!   state of a recursion allocates nothing.
//! * [`SetInterner`] — canonical ids for row/column subsets (OPHR memo keys):
//!   each distinct bitset is boxed once and every later occurrence resolves
//!   to a `u32`, replacing the reference implementation's per-call
//!   `Box<[u64]>` construction.
//! * [`FxBuild`] — a multiply-xor hasher for the remaining `HashMap`s (memo,
//!   interner); solver keys are small and attacker-free, so SipHash's
//!   flooding resistance buys nothing here.

use crate::ValueId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Retired [`Scratch`] arenas kept per thread for reuse. A worker that
/// solves many chunks of a partitioned table ([`crate::Partitioned`]) — or
/// an executor issuing one solve per query batch — pays the index-arena
/// allocations once instead of per solve; rebuilding re-initializes every
/// value, so reuse is invisible in solver output.
const SCRATCH_POOL_CAP: usize = 4;

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

/// Multiply-xor hasher (fxhash-style) for small trusted keys.
///
/// Solver hash keys are dense integers or short bitsets produced by the
/// solver itself — no untrusted input — so a two-instruction mix per word
/// beats SipHash by a wide margin without a flooding risk.
#[derive(Debug, Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

/// One open-addressing table entry; `epoch` marks which generation wrote it.
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    slot: u32,
    epoch: u32,
}

/// Open-addressing map from `u64` keys to dense slots in first-seen order.
///
/// Capacity is kept at ≥ 2× the expected distinct-key count declared via
/// [`SlotMap::begin`], so linear probing stays short. Resetting bumps an
/// epoch instead of clearing, making `begin` O(1) once the table is warm.
#[derive(Debug, Default)]
pub(crate) struct SlotMap {
    entries: Vec<Entry>,
    mask: usize,
    epoch: u32,
    len: u32,
}

impl SlotMap {
    /// Starts a fresh grouping expecting at most `expect` insertions.
    pub fn begin(&mut self, expect: usize) {
        let want = (expect.max(4) * 2).next_power_of_two();
        if self.entries.len() < want {
            self.entries = vec![
                Entry {
                    key: 0,
                    slot: 0,
                    epoch: 0,
                };
                want
            ];
            self.mask = want - 1;
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            for e in &mut self.entries {
                e.epoch = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
        self.len = 0;
    }

    /// Inserts `key` (or finds it), returning `(slot, inserted)`. Slots are
    /// dense and assigned in first-seen order.
    #[inline]
    pub fn insert(&mut self, key: u64) -> (u32, bool) {
        let mut i = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & self.mask;
        loop {
            let e = &mut self.entries[i];
            if e.epoch != self.epoch {
                *e = Entry {
                    key,
                    slot: self.len,
                    epoch: self.epoch,
                };
                self.len += 1;
                return (e.slot, true);
            }
            if e.key == key {
                return (e.slot, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Number of distinct keys inserted since the last [`SlotMap::begin`].
    pub fn len(&self) -> u32 {
        self.len
    }
}

/// Pool of reusable `Vec<u32>` buffers (row lists, column lists).
#[derive(Debug, Default)]
pub(crate) struct BufPool {
    bufs: Vec<Vec<u32>>,
}

impl BufPool {
    /// Takes a cleared buffer from the pool (or allocates one).
    pub fn take(&mut self) -> Vec<u32> {
        let mut b = self.bufs.pop().unwrap_or_default();
        b.clear();
        b
    }

    /// Returns a buffer to the pool.
    pub fn put(&mut self, b: Vec<u32>) {
        self.bufs.push(b);
    }
}

/// Per-solve scratch threaded through solver recursion.
///
/// [`Scratch::for_table`] builds the *per-column value→group index* once:
/// every column's values are remapped to dense per-column ids
/// (`dense_of`), with per-id value/squared-length lookup tables. After that
/// one O(n·m) pass, grouping any view by any column is pure array indexing —
/// an epoch-stamped counting pass with no hashing — and stays O(view) via
/// the `touched` list of ids actually present in the view.
///
/// After [`Scratch::group_dense`], the grouping state reads as: `touched`
/// holds the distinct dense ids in first-seen order, `counts[d]` the member
/// count of id `d`, `row_dense[i]` the id of the view's `i`-th row, and
/// `acc`/`tot` are caller-managed per-id accumulators.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// `dense[c][r]`: dense per-column id of the value of cell `(r, c)`.
    dense: Vec<Vec<u32>>,
    /// `dense_values[c][d]`: the [`ValueId`] behind dense id `d` of column `c`.
    dense_values: Vec<Vec<ValueId>>,
    /// Epoch stamps over dense ids (sized to the largest column cardinality).
    stamp: Vec<u32>,
    epoch: u32,
    /// Per-dense-id member count of the current grouping (stamp-guarded).
    pub counts: Vec<u32>,
    /// Per-dense-id squared length of the group's **view-first** member —
    /// the same representative the frozen references read, so equivalence
    /// holds even on tables where one [`ValueId`] recurs with different
    /// lengths (well-formed encodings never do, but the public API allows
    /// it and the differential contract must not depend on it).
    pub first_sq: Vec<u64>,
    /// Distinct dense ids of the current grouping, in first-seen order.
    pub touched: Vec<u32>,
    /// Dense id of each view row, in view order.
    pub row_dense: Vec<u32>,
    /// Per-dense-id floating-point accumulator (FD squared-length sums).
    pub acc: Vec<f64>,
    /// Per-dense-id running `HITCOUNT` total.
    pub tot: Vec<f64>,
    /// Column membership mask, `ncols` long.
    pub col_mask: Vec<bool>,
    /// Slot map for pair-keyed groupings ([`greedy_prefix_order`][o]).
    ///
    /// [o]: crate::order::greedy_prefix_order
    pub map: SlotMap,
    /// Reusable row/column index buffers.
    pub pool: BufPool,
    /// Raw-value stamps for the direct remap path (stamped by column id,
    /// fully reset on every rebuild).
    vstamp: Vec<u32>,
    /// Raw-value → dense-slot table for the direct remap path.
    vslot: Vec<u32>,
}

impl Drop for Scratch {
    /// Returns the arena's allocations to the thread-local pool so the next
    /// solve on this thread starts warm. No-op for never-built scratches,
    /// when the pool is full, or during thread teardown.
    fn drop(&mut self) {
        if self.dense.capacity() == 0 && self.stamp.capacity() == 0 {
            return;
        }
        let _ = SCRATCH_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() >= SCRATCH_POOL_CAP {
                // Nothing constructed ⇒ no re-entrant drop of a recycled
                // scratch: the allocations are simply freed.
                return;
            }
            pool.push(Scratch {
                dense: std::mem::take(&mut self.dense),
                dense_values: std::mem::take(&mut self.dense_values),
                stamp: std::mem::take(&mut self.stamp),
                epoch: self.epoch,
                counts: std::mem::take(&mut self.counts),
                first_sq: std::mem::take(&mut self.first_sq),
                touched: std::mem::take(&mut self.touched),
                row_dense: std::mem::take(&mut self.row_dense),
                acc: std::mem::take(&mut self.acc),
                tot: std::mem::take(&mut self.tot),
                col_mask: std::mem::take(&mut self.col_mask),
                map: std::mem::take(&mut self.map),
                pool: std::mem::take(&mut self.pool),
                vstamp: std::mem::take(&mut self.vstamp),
                vslot: std::mem::take(&mut self.vslot),
            });
        });
    }
}

impl Scratch {
    /// Builds the per-column group indexes for all of `table` — the one
    /// value-remap pass of a solve; everything after is array indexing.
    pub fn for_table(table: &crate::table::ReorderTable) -> Self {
        let rows: Vec<u32> = (0..table.nrows() as u32).collect();
        let cols: Vec<u32> = (0..table.ncols() as u32).collect();
        Self::for_view(table, &rows, &cols)
    }

    /// Builds the group indexes for one (rows × cols) view of `table`: the
    /// *remap work* is O(|rows|·|cols|), though each view column still
    /// allocates a zeroed `nrows`-sized id array (entries are addressed by
    /// original row index), so small views of huge tables pay an O(n)
    /// memset per view column — cheap, but not free. Dense-id numbering
    /// follows the view's row order; nothing downstream depends on the
    /// numbering, only on the first-seen order of the `touched` list, which
    /// is view-relative either way.
    ///
    /// When the raw [`ValueId`] space is dense (the encode path interns
    /// fragments densely, so raw ids are bounded by the distinct-cell count),
    /// the remap is a direct stamp-array lookup; tables with sparse synthetic
    /// ids fall back to the slot map. Both assign ids in first-seen order, so
    /// the result is identical.
    pub fn for_view(table: &crate::table::ReorderTable, rows: &[u32], cols: &[u32]) -> Self {
        let mut s = SCRATCH_POOL
            .try_with(|pool| pool.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_default();
        s.rebuild(table, rows, cols);
        s
    }

    /// Re-initializes this arena for a new (rows × cols) view, reusing the
    /// backing allocations. Every value a solver can observe is reset to
    /// exactly the fresh-construction state, so a recycled scratch is
    /// indistinguishable from a new one.
    fn rebuild(&mut self, table: &crate::table::ReorderTable, rows: &[u32], cols: &[u32]) {
        let n = table.nrows();
        let m = table.ncols();
        self.col_mask.clear();
        self.col_mask.resize(m, false);
        self.dense.truncate(m);
        self.dense.resize_with(m, Vec::new);
        self.dense_values.truncate(m);
        self.dense_values.resize_with(m, Vec::new);
        // Columns outside `cols` must look freshly built (empty), not carry
        // a previous solve's data — a stale full-length array would turn a
        // would-be out-of-bounds panic into silently wrong group ids.
        for ids in &mut self.dense {
            ids.clear();
        }
        for vals in &mut self.dense_values {
            vals.clear();
        }
        self.epoch = 0;
        self.touched.clear();
        self.row_dense.clear();
        let max_raw = cols
            .iter()
            .flat_map(|&c| {
                let values = table.col_values(c as usize);
                rows.iter().map(move |&r| values[r as usize].as_u32())
            })
            .max()
            .unwrap_or(0) as usize;
        let direct = max_raw < (4 * n * m + 65_536);
        if direct {
            // vstamp is stamped by column id, which recurs across solves —
            // reset it wholesale (clear + resize refills every entry).
            self.vstamp.clear();
            self.vstamp.resize(max_raw + 1, u32::MAX);
            self.vslot.clear();
            self.vslot.resize(max_raw + 1, 0);
        }
        let mut max_card = 0usize;
        for &c in cols {
            let values = table.col_values(c as usize);
            let mut ids = std::mem::take(&mut self.dense[c as usize]);
            ids.clear();
            ids.resize(n, 0);
            let mut vals = std::mem::take(&mut self.dense_values[c as usize]);
            vals.clear();
            if direct {
                for &r in rows {
                    let raw = values[r as usize].as_u32() as usize;
                    if self.vstamp[raw] != c {
                        self.vstamp[raw] = c;
                        self.vslot[raw] = vals.len() as u32;
                        vals.push(values[r as usize]);
                    }
                    ids[r as usize] = self.vslot[raw];
                }
            } else {
                self.map.begin(rows.len());
                for &r in rows {
                    let (slot, new) = self.map.insert(u64::from(values[r as usize].as_u32()));
                    if new {
                        vals.push(values[r as usize]);
                    }
                    ids[r as usize] = slot;
                }
            }
            max_card = max_card.max(vals.len());
            self.dense[c as usize] = ids;
            self.dense_values[c as usize] = vals;
        }
        self.stamp.clear();
        self.stamp.resize(max_card, 0);
        self.counts.clear();
        self.counts.resize(max_card, 0);
        self.first_sq.clear();
        self.first_sq.resize(max_card, 0);
        self.acc.clear();
        self.acc.resize(max_card, 0.0);
        self.tot.clear();
        self.tot.resize(max_card, 0.0);
    }

    /// The [`ValueId`] behind dense id `d` of column `c`.
    #[inline]
    pub fn value_of(&self, c: usize, d: u32) -> ValueId {
        self.dense_values[c][d as usize]
    }

    fn bump_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Groups the view rows by their value in column `c`, filling `touched`,
    /// `counts`, `first_sq` (from `sq_lens`, that column's per-row squared
    /// lengths), and `row_dense`. Returns the number of distinct values.
    ///
    /// Members of a group are the view rows holding its value, in view
    /// order, and `first_sq` carries the squared length of each group's
    /// first view member — exactly the representative a
    /// `HashMap<ValueId, Vec<u32>>` transcription reads via `members[0]`.
    pub fn group_dense(&mut self, c: usize, sq_lens: &[u64], rows: &[u32]) -> usize {
        let epoch = self.bump_epoch();
        self.touched.clear();
        self.row_dense.clear();
        let dense = &self.dense[c];
        for &r in rows {
            let d = dense[r as usize];
            if self.stamp[d as usize] != epoch {
                self.stamp[d as usize] = epoch;
                self.counts[d as usize] = 0;
                self.first_sq[d as usize] = sq_lens[r as usize];
                self.touched.push(d);
            }
            self.counts[d as usize] += 1;
            self.row_dense.push(d);
        }
        self.touched.len()
    }

    /// [`Scratch::group_dense`] without the per-row `row_dense` fill, for
    /// callers that only need group counts (`best_group` on columns with no
    /// applicable functional dependencies).
    pub fn group_dense_counts(&mut self, c: usize, sq_lens: &[u64], rows: &[u32]) -> usize {
        let epoch = self.bump_epoch();
        self.touched.clear();
        let dense = &self.dense[c];
        for &r in rows {
            let d = dense[r as usize];
            if self.stamp[d as usize] != epoch {
                self.stamp[d as usize] = epoch;
                self.counts[d as usize] = 0;
                self.first_sq[d as usize] = sq_lens[r as usize];
                self.touched.push(d);
            }
            self.counts[d as usize] += 1;
        }
        self.touched.len()
    }

    /// One fused view pass: distinct count of column `c` plus the view's
    /// squared-length sum over `sq_lens`, that column's per-row array. The
    /// sum accumulates per **row** in view order — the exact additions the
    /// reference implementations perform — so gains stay bit-identical even
    /// on tables where a value recurs with different lengths.
    pub fn distinct_and_sum_sq(&mut self, c: usize, sq_lens: &[u64], rows: &[u32]) -> (usize, f64) {
        let epoch = self.bump_epoch();
        let dense = &self.dense[c];
        let stamp = &mut self.stamp;
        let mut distinct = 0usize;
        let mut sum_sq = 0f64;
        for &r in rows {
            let d = dense[r as usize] as usize;
            if stamp[d] != epoch {
                stamp[d] = epoch;
                distinct += 1;
            }
            sum_sq += sq_lens[r as usize] as f64;
        }
        (distinct, sum_sq)
    }
}

/// Path-local pruning mask over the first 64 columns.
///
/// A column with no duplicated value in a view has none in any sub-view
/// (views only shrink along recursion), so it can never again source a
/// group: solvers kill it and skip it in descendant scans. The pruning is
/// invisible in solver output — a group-free column contributes no split
/// candidates and a gain of zero, so it could never be chosen anyway — it
/// only removes wasted O(view) scans. Columns ≥ 64 are simply never pruned.
///
/// The mask is passed **by value** down the recursion, so sibling branches
/// cannot see each other's kills (a column dead in one subtree may still
/// have groups in a cousin view).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DeadCols(u64);

impl DeadCols {
    /// Whether column `c` is known group-free on this path.
    #[inline]
    pub fn is_dead(self, c: u32) -> bool {
        c < 64 && self.0 & (1 << c) != 0
    }

    /// Marks column `c` group-free for this path and its descendants.
    #[inline]
    pub fn kill(&mut self, c: u32) {
        if c < 64 {
            self.0 |= 1 << c;
        }
    }
}

/// Splits view `rows` into those holding `value` in a column (`group`) and
/// the rest, preserving view order. This is the shared O(n) replacement for
/// the `group.rows.contains(r)` rest-filters both GGR and OPHR used to run.
pub(crate) fn partition_rows_by_value(
    values: &[ValueId],
    rows: &[u32],
    value: ValueId,
    group: &mut Vec<u32>,
    rest: &mut Vec<u32>,
) {
    for &r in rows {
        if values[r as usize] == value {
            group.push(r);
        } else {
            rest.push(r);
        }
    }
}

/// Canonical `u32` ids for index subsets, keyed by their bitset.
///
/// OPHR memoizes on (row-set, column-set); interning each distinct set once
/// turns the memo key into a `(u32, u32)` pair and eliminates the per-call
/// boxed-bitset construction of the reference implementation.
#[derive(Debug)]
pub(crate) struct SetInterner {
    map: HashMap<Box<[u64]>, u32, FxBuild>,
    scratch: Vec<u64>,
    words: usize,
}

impl SetInterner {
    /// An interner for subsets of `0..domain`.
    pub fn new(domain: usize) -> Self {
        SetInterner {
            map: HashMap::default(),
            scratch: Vec::new(),
            words: domain.div_ceil(64).max(1),
        }
    }

    /// Returns the canonical id of the set holding exactly `indices`.
    pub fn intern(&mut self, indices: &[u32]) -> u32 {
        self.scratch.clear();
        self.scratch.resize(self.words, 0);
        for &i in indices {
            self.scratch[(i / 64) as usize] |= 1 << (i % 64);
        }
        if let Some(&id) = self.map.get(self.scratch.as_slice()) {
            return id;
        }
        let id = u32::try_from(self.map.len()).expect("fewer than 2^32 interned sets");
        self.map.insert(self.scratch.clone().into_boxed_slice(), id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_map_assigns_first_seen_slots() {
        let mut m = SlotMap::default();
        m.begin(8);
        assert_eq!(m.insert(42), (0, true));
        assert_eq!(m.insert(7), (1, true));
        assert_eq!(m.insert(42), (0, false));
        assert_eq!(m.len(), 2);
        m.begin(8);
        assert_eq!(m.len(), 0);
        assert_eq!(m.insert(7), (0, true));
    }

    #[test]
    fn slot_map_survives_growth() {
        let mut m = SlotMap::default();
        m.begin(4);
        for k in 0..4u64 {
            m.insert(k * 1000);
        }
        m.begin(4096);
        for k in 0..4096u64 {
            let (slot, new) = m.insert(k.wrapping_mul(0x5851_f42d_4c95_7f2d));
            assert_eq!(slot as u64, k);
            assert!(new);
        }
        assert_eq!(m.len(), 4096);
    }

    #[test]
    fn group_dense_matches_hashmap_grouping() {
        use crate::table::{Cell, ReorderTable};
        let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
        for (v, len) in [(5u32, 5u32), (9, 9), (5, 5), (5, 5), (2, 2), (9, 9)] {
            t.push_row(vec![Cell::new(ValueId::from_raw(v), len)])
                .unwrap();
        }
        let mut s = Scratch::for_table(&t);
        let sq: Vec<u64> = t.col_sq_lens(0).to_vec();
        let rows: Vec<u32> = (0..6).collect();
        let n = s.group_dense(0, &sq, &rows);
        assert_eq!(n, 3);
        // Dense ids are first-seen: 5 → 0, 9 → 1, 2 → 2.
        assert_eq!(s.touched, vec![0, 1, 2]);
        assert_eq!(&s.counts[..3], &[3, 2, 1]);
        assert_eq!(s.row_dense, vec![0, 1, 0, 0, 2, 1]);
        assert_eq!(s.value_of(0, 2), ValueId::from_raw(2));
        assert_eq!(&s.first_sq[..3], &[25, 81, 4]);
        // A subset view regroups correctly after the epoch bump.
        let n = s.group_dense(0, &sq, &[1, 4]);
        assert_eq!(n, 2);
        assert_eq!(s.touched, vec![1, 2]);
        assert_eq!(&s.counts[1..3], &[1, 1]);
        let (distinct, sum_sq) = s.distinct_and_sum_sq(0, &sq, &rows);
        assert_eq!(distinct, 3);
        // 3×25 + 2×81 + 4, accumulated in view order.
        assert_eq!(sum_sq, (3 * 25 + 2 * 81 + 4) as f64);
        assert_eq!(s.distinct_and_sum_sq(0, &sq, &[0, 2, 3]).0, 1);
    }

    #[test]
    fn recycled_scratch_is_indistinguishable_from_fresh() {
        use crate::table::{Cell, ReorderTable};
        let table = |vals: &[(u32, u32)]| {
            let mut t = ReorderTable::new(vec!["a".into()]).unwrap();
            for &(v, len) in vals {
                t.push_row(vec![Cell::new(ValueId::from_raw(v), len)])
                    .unwrap();
            }
            t
        };
        // First solve grows the arena and (on drop) parks it in this
        // thread's pool.
        let big = table(&[(1, 1), (2, 2), (3, 3), (1, 1), (2, 2), (4, 4), (5, 5)]);
        {
            let mut s = Scratch::for_table(&big);
            let sq: Vec<u64> = big.col_sq_lens(0).to_vec();
            let rows: Vec<u32> = (0..7).collect();
            assert_eq!(s.group_dense(0, &sq, &rows), 5);
        }
        // The second (smaller, different-valued) solve reuses the pooled
        // arena; every observable result must match a fresh build.
        let small = table(&[(9, 9), (8, 8), (9, 9)]);
        let mut s = Scratch::for_table(&small);
        let sq: Vec<u64> = small.col_sq_lens(0).to_vec();
        let rows: Vec<u32> = (0..3).collect();
        assert_eq!(s.group_dense(0, &sq, &rows), 2);
        assert_eq!(s.touched, vec![0, 1]);
        assert_eq!(&s.counts[..2], &[2, 1]);
        assert_eq!(s.row_dense, vec![0, 1, 0]);
        assert_eq!(s.value_of(0, 0), ValueId::from_raw(9));
        assert_eq!(&s.first_sq[..2], &[81, 64]);
        let (distinct, sum_sq) = s.distinct_and_sum_sq(0, &sq, &rows);
        assert_eq!(distinct, 2);
        assert_eq!(sum_sq, (81 + 64 + 81) as f64);
    }

    #[test]
    fn partition_preserves_view_order() {
        let values: Vec<ValueId> = [1u32, 2, 1, 3]
            .iter()
            .map(|&v| ValueId::from_raw(v))
            .collect();
        let rows = vec![3u32, 2, 1, 0];
        let (mut g, mut r) = (Vec::new(), Vec::new());
        partition_rows_by_value(&values, &rows, ValueId::from_raw(1), &mut g, &mut r);
        assert_eq!(g, vec![2, 0]);
        assert_eq!(r, vec![3, 1]);
    }

    #[test]
    fn interner_canonicalizes_order() {
        let mut i = SetInterner::new(130);
        let a = i.intern(&[1, 64, 129]);
        let b = i.intern(&[129, 1, 64]);
        let c = i.intern(&[1, 64]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pool_round_trips() {
        let mut p = BufPool::default();
        let mut b = p.take();
        b.push(9);
        p.put(b);
        assert!(p.take().is_empty());
    }

    #[test]
    fn fx_hasher_mixes_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
